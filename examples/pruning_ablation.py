"""Cost-accuracy trade-off of the four pruning strategies (Fig 11).

Runs NH / NCR / NCS / C2 on the same corpus and reports accuracy, start/end
duration error, and computational overhead — reproducing the paper's
finding that mined correlations+constraints (C2) keep nearly all of the
full coupled model's (NCS) accuracy at a fraction of its cost.

Run:  python examples/pruning_ablation.py
"""

from repro.eval.experiments import fig11_pruning_strategies


def main() -> None:
    print("Running all four strategies (this builds four models; ~minutes)...\n")
    result = fig11_pruning_strategies(
        n_homes=2, sessions_per_home=4, duration_s=2100.0, seed=5
    )
    print(result.render())
    print("\nReading the table:")
    print("  - NH ignores hierarchy and coupling: cheap but inaccurate.")
    print("  - NCR prunes per user only: rules misfire without partner context.")
    print("  - NCS is the full coupled HDBN: most accurate, most expensive.")
    print("  - C2 prunes NCS's joint space with mined rules: nearly NCS's")
    print("    accuracy at a fraction of the decode cost.")


if __name__ == "__main__":
    main()
