"""The model-layer contract every CACE recogniser implements.

The four model families (:class:`~repro.core.chdbn.CoupledHdbn`,
:class:`~repro.core.hdbn.SingleUserHdbn`,
:class:`~repro.core.loosely_coupled.NChainHdbn`,
:class:`~repro.models.hmm.MacroHmm`) expose one shared surface —
:class:`Recognizer` — so the engine, the serving layer, and the CLI can
treat them interchangeably instead of dispatching on concrete types:

* ``decode`` / ``posterior_marginals`` — offline inference;
* ``trellis_sessions`` — the incremental-forward adapter the generic
  fixed-lag :class:`~repro.core.smoother.OnlineSmoother` runs on;
* ``step_filter`` — a ready-to-stream smoother bound to the model;
* ``last_stats`` — the :class:`DecodeStats` work accounting of the most
  recent inference call;
* ``describe`` — a one-line human-readable summary for logs and CLIs.

A recogniser's trellis decomposes into one or more *sessions* (independent
chains): the coupled pair and N-chain models expose a single joint
session, the per-user models one session per resident.  Each session
yields per-step :class:`TrellisPiece` objects and the transition blocks
between consecutive pieces; the smoother's forward/backward recursions are
written once against that interface.

This module sits below the rest of :mod:`repro.core` (it imports none of
it), so every model family can depend on it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.datasets.trace import Dataset, LabeledSequence


@dataclass
class DecodeStats:
    """Work accounting for one decoded sequence (overhead metrics).

    Field semantics (the paper's Fig 11 overhead metric is derived from
    these, so they count *actual* work, never hypothetical work):

    ``steps``
        Time steps whose candidate trellis was built — incremented once
        per step in both the offline (e.g.
        :meth:`~repro.core.chdbn.CoupledHdbn._prepare`) and streaming
        (:meth:`~repro.core.smoother.OnlineSmoother.push`) paths.
    ``joint_states``
        Total surviving joint candidates summed over steps and chains
        (after rule pruning *and* the score cap) — what the trellis
        actually holds.
    ``transition_entries``
        Total entries of the evaluated transition blocks — one
        ``(prev x cur)`` block per step per chain in the forward pass.
    ``pruned_joint_states``
        Joint candidates actually *removed* by correlation pruning.  When
        every pair fails the rules the pruner keeps them all (never empty
        the trellis), and that step contributes zero here.
    ``capped_joint_states``
        Joint candidates dropped by the best-K emission-score cap
        (``max_joint_states`` / ``max_joint_states_pruned``), accounted
        separately from rule pruning.
    """

    steps: int = 0
    joint_states: int = 0
    transition_entries: int = 0
    pruned_joint_states: int = 0
    capped_joint_states: int = 0

    @property
    def mean_joint_states(self) -> float:
        """Average joint-candidate count per step."""
        return self.joint_states / max(self.steps, 1)

    def merge(self, other: "DecodeStats") -> "DecodeStats":
        """Accumulate *other* into this instance (batched decoding)."""
        self.steps += other.steps
        self.joint_states += other.joint_states
        self.transition_entries += other.transition_entries
        self.pruned_joint_states += other.pruned_joint_states
        self.capped_joint_states += other.capped_joint_states
        return self


@dataclass
class TrellisPiece:
    """One step of one trellis session.

    ``scores`` are the per-candidate log evidence terms added after the
    transition in the forward recursion; ``enc`` is the session's own
    dense encoding of the candidates (opaque to the smoother, consumed by
    :meth:`TrellisSession.transition` / :meth:`TrellisSession.labels`);
    ``extra`` carries whatever else the session needs (candidate sets).
    """

    scores: np.ndarray
    enc: object = None
    extra: object = None

    def __len__(self) -> int:
        return int(self.scores.shape[0])


class TrellisSession(Protocol):
    """One independent chain of a recogniser's trellis.

    The generic :class:`~repro.core.smoother.OnlineSmoother` drives its
    forward recursion and lag-window backward sweeps entirely through this
    interface; implementations own the model-specific candidate building,
    encodings, and transition blocks.
    """

    #: Residents this session labels (a commit dict merges all sessions).
    rids: Tuple[str, ...]

    def piece(self, t: int) -> TrellisPiece:
        """Build step *t*'s candidates and evidence scores."""
        ...

    def initial_alpha(self, piece: TrellisPiece) -> np.ndarray:
        """``log prior + scores`` over the first piece's candidates."""
        ...

    def transition(self, prev: TrellisPiece, cur: TrellisPiece) -> Optional[np.ndarray]:
        """``(|prev|, |cur|)`` log transition block, or ``None`` when the
        chain has no temporal coupling (frame-wise models)."""
        ...

    def labels(self, piece: TrellisPiece, gamma: np.ndarray) -> Dict[str, str]:
        """Per-resident argmax macro labels under posterior *gamma*."""
        ...


@runtime_checkable
class StepFilter(Protocol):
    """Incremental forward interface (what ``step_filter`` returns)."""

    stats: DecodeStats

    def start(self, seq: LabeledSequence) -> None:
        """Begin a session; steps are then consumed with :meth:`push`."""
        ...

    def push(self, t: int) -> Optional[Dict[str, str]]:
        """Consume step *t*; return labels committed for ``t - lag``."""
        ...

    def flush(self) -> List[Dict[str, str]]:
        """Commit every step still inside the lag window."""
        ...

    def run(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Stream a whole session, returning per-resident labels."""
        ...


@runtime_checkable
class Recognizer(Protocol):
    """What every CACE model family exposes to the engine and servers."""

    last_stats: Optional[DecodeStats]

    def fit(self, train: Dataset) -> "Recognizer":
        """Estimate parameters from a labelled training set."""
        ...

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """MAP macro labels per resident."""
        ...

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Per-resident posterior macro marginals ``(T, M)``."""
        ...

    def trellis_sessions(self, seq: LabeledSequence) -> List[TrellisSession]:
        """Independent-chain adapters for incremental decoding."""
        ...

    def step_filter(self, lag: int = 0) -> StepFilter:
        """A fixed-lag smoother bound to this model."""
        ...

    def describe(self) -> str:
        """One-line summary (family, coupling, pruning configuration)."""
        ...


def make_step_filter(model: Recognizer, lag: int = 0) -> StepFilter:
    """Shared ``step_filter`` body (lazy import keeps this module leaf)."""
    from repro.core.smoother import OnlineSmoother

    return OnlineSmoother(model, lag=lag)
