"""Synthetic 9-axis IMU (accelerometer + gyroscope + magnetometer).

The paper's micro-activity recognition runs on 50 Hz streams from a
neck-mounted Simplelink SensorTag (oral gestures) and a pocket smartphone
(postures).  We do not have that hardware, so each micro-activity class is
given a *motion signature*: a parametric body-frame acceleration pattern
(periodic components + transient bursts + noise) and an orientation posture.
The simulator renders the signature through gravity, sensor bias, and white
noise to produce realistic, class-separable-but-overlapping IMU streams that
exercise the identical downstream pipeline (fusion, features, classifiers,
Gaussian emission fitting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.sensors.quaternion import Quaternion
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive

GRAVITY = 9.81
#: Earth magnetic field in the world frame (uT), pointing north with a dip.
MAG_FIELD_WORLD = np.array([22.0, 0.0, -42.0])


@dataclass(frozen=True)
class ImuSample:
    """One 9-axis reading: body-frame accel (m/s^2), gyro (rad/s), mag (uT)."""

    t: float
    accel: np.ndarray
    gyro: np.ndarray
    mag: np.ndarray


@dataclass(frozen=True)
class MotionSignature:
    """Parametric body-frame motion for one micro-activity class.

    Attributes
    ----------
    name:
        Micro-activity label (e.g. ``"walking"`` or ``"talking"``).
    base_freq_hz:
        Dominant periodic frequency of the movement (0 for static postures).
    amplitude:
        Per-axis amplitude (m/s^2) of the periodic component.
    harmonics:
        Relative amplitudes of higher harmonics (adds waveform texture).
    burst_rate_hz:
        Expected rate of random transient bursts (e.g. yawning ~ one-off jolts).
    burst_amplitude:
        Peak amplitude of transient bursts.
    noise_std:
        White accelerometer noise (m/s^2).
    posture_pitch / posture_roll:
        Mean device orientation (radians) relative to upright, which controls
        how gravity projects onto the body axes (lying vs standing etc.).
    sway_std:
        Orientation jitter (radians) around the mean posture.
    """

    name: str
    base_freq_hz: float = 0.0
    amplitude: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    harmonics: Tuple[float, ...] = ()
    burst_rate_hz: float = 0.0
    burst_amplitude: float = 0.0
    noise_std: float = 0.05
    posture_pitch: float = 0.0
    posture_roll: float = 0.0
    sway_std: float = 0.01


# -- signature registries ----------------------------------------------------
#
# Postural signatures model the pocket smartphone; gestural signatures model
# the neck-mounted tag.  Values were tuned so a random forest on the paper's
# 32 statistical features reaches accuracies in the high-90s (matching the
# reported 98.6% postural / 95.3% gestural), with honest confusions (e.g.
# standing vs sitting, silent vs yawning).

POSTURAL_SIGNATURES: Dict[str, MotionSignature] = {
    "walking": MotionSignature(
        "walking",
        base_freq_hz=2.0,
        amplitude=(1.8, 2.6, 1.2),
        harmonics=(0.5, 0.2),
        noise_std=0.25,
        sway_std=0.06,
    ),
    "standing": MotionSignature(
        "standing",
        base_freq_hz=0.4,
        amplitude=(0.05, 0.06, 0.04),
        noise_std=0.06,
        sway_std=0.015,
    ),
    "sitting": MotionSignature(
        "sitting",
        base_freq_hz=0.25,
        amplitude=(0.03, 0.03, 0.03),
        noise_std=0.05,
        posture_pitch=0.5,
        sway_std=0.01,
    ),
    "cycling": MotionSignature(
        "cycling",
        base_freq_hz=1.4,
        amplitude=(1.1, 0.8, 2.2),
        harmonics=(0.35,),
        noise_std=0.2,
        posture_pitch=0.35,
        sway_std=0.04,
    ),
    "lying": MotionSignature(
        "lying",
        base_freq_hz=0.1,
        amplitude=(0.02, 0.02, 0.02),
        noise_std=0.04,
        posture_pitch=np.pi / 2,
        sway_std=0.008,
    ),
}

GESTURAL_SIGNATURES: Dict[str, MotionSignature] = {
    "silent": MotionSignature(
        "silent",
        base_freq_hz=0.2,
        amplitude=(0.02, 0.02, 0.02),
        noise_std=0.03,
        sway_std=0.008,
    ),
    "talking": MotionSignature(
        "talking",
        base_freq_hz=3.5,
        amplitude=(0.22, 0.18, 0.15),
        harmonics=(0.4, 0.15),
        noise_std=0.09,
        sway_std=0.02,
    ),
    "eating": MotionSignature(
        "eating",
        base_freq_hz=0.7,
        amplitude=(0.34, 0.25, 0.3),
        harmonics=(0.3,),
        burst_rate_hz=0.5,
        burst_amplitude=0.55,
        noise_std=0.1,
        sway_std=0.03,
    ),
    "yawning": MotionSignature(
        "yawning",
        base_freq_hz=0.15,
        amplitude=(0.04, 0.04, 0.04),
        burst_rate_hz=0.12,
        burst_amplitude=0.7,
        noise_std=0.05,
        sway_std=0.015,
    ),
    "laughing": MotionSignature(
        "laughing",
        base_freq_hz=3.9,
        amplitude=(0.28, 0.2, 0.24),
        harmonics=(0.45,),
        burst_rate_hz=0.3,
        burst_amplitude=0.4,
        noise_std=0.12,
        sway_std=0.03,
    ),
}


def signature_for(kind: str, name: str) -> MotionSignature:
    """Look up the signature for a ``"postural"`` or ``"gestural"`` class."""
    if kind == "postural":
        registry = POSTURAL_SIGNATURES
    elif kind == "gestural":
        registry = GESTURAL_SIGNATURES
    else:
        raise ValueError(f"kind must be 'postural' or 'gestural', got {kind!r}")
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown {kind} micro-activity {name!r}; known: {sorted(registry)}"
        ) from None


@dataclass
class ImuSimulator:
    """Renders :class:`MotionSignature` streams into 9-axis samples.

    Parameters
    ----------
    sample_rate_hz:
        Sampling frequency; the paper uses 50 Hz throughout.
    accel_bias_std / gyro_bias_std:
        Per-device constant bias, drawn once per simulator (models unit-to-
        unit variation across the five homes' devices).
    """

    sample_rate_hz: float = 50.0
    accel_bias_std: float = 0.03
    gyro_bias_std: float = 0.005
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _accel_bias: np.ndarray = field(init=False, repr=False)
    _gyro_bias: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        self._rng = ensure_rng(self.seed)
        self._accel_bias = self._rng.normal(0.0, self.accel_bias_std, 3)
        self._gyro_bias = self._rng.normal(0.0, self.gyro_bias_std, 3)

    # -- rendering ----------------------------------------------------------

    def render(self, signature: MotionSignature, duration_s: float, t0: float = 0.0) -> List[ImuSample]:
        """Render *duration_s* seconds of 9-axis samples for *signature*."""
        check_positive("duration_s", duration_s)
        n = max(1, int(round(duration_s * self.sample_rate_hz)))
        dt = 1.0 / self.sample_rate_hz
        t = t0 + np.arange(n) * dt
        rng = self._rng

        # Periodic linear acceleration in the body frame.
        phase = rng.uniform(0, 2 * np.pi, 3)
        lin = np.zeros((n, 3))
        if signature.base_freq_hz > 0:
            for axis in range(3):
                comp = np.sin(2 * np.pi * signature.base_freq_hz * t + phase[axis])
                for h, rel in enumerate(signature.harmonics, start=2):
                    comp = comp + rel * np.sin(2 * np.pi * signature.base_freq_hz * h * t + phase[axis] * h)
                lin[:, axis] = signature.amplitude[axis] * comp

        # Transient bursts (Poisson arrivals, half-sine envelope ~0.4 s).
        if signature.burst_rate_hz > 0:
            expected = signature.burst_rate_hz * duration_s
            n_bursts = rng.poisson(expected)
            width = max(1, int(0.4 * self.sample_rate_hz))
            envelope = np.sin(np.linspace(0, np.pi, width))
            for _ in range(n_bursts):
                start = rng.integers(0, max(1, n - width))
                direction = rng.normal(size=3)
                direction /= max(np.linalg.norm(direction), 1e-9)
                seg = slice(start, start + width)
                lin[seg] += signature.burst_amplitude * envelope[: n - start][:, None] * direction

        # Orientation: mean posture plus slow sway.
        base_q = Quaternion.from_euler(signature.posture_roll, signature.posture_pitch, 0.0)
        sway = rng.normal(0.0, signature.sway_std, (n, 3))
        # Smooth the sway so the gyro sees realistic low-frequency motion.
        kernel = np.ones(5) / 5.0
        for axis in range(3):
            sway[:, axis] = np.convolve(sway[:, axis], kernel, mode="same")

        samples: List[ImuSample] = []
        prev_angles = sway[0]
        for i in range(n):
            angles = sway[i]
            q = base_q * Quaternion.from_euler(angles[0], angles[1], angles[2])
            rot = q.to_rotation_matrix()
            # Gravity and magnetic field expressed in the body frame.
            gravity_body = rot.T @ np.array([0.0, 0.0, -GRAVITY])
            mag_body = rot.T @ MAG_FIELD_WORLD
            accel = (
                -gravity_body
                + lin[i]
                + self._accel_bias
                + rng.normal(0.0, signature.noise_std, 3)
            )
            gyro = (angles - prev_angles) / dt + self._gyro_bias + rng.normal(0.0, 0.01, 3)
            mag = mag_body + rng.normal(0.0, 0.8, 3)
            samples.append(ImuSample(t=float(t[i]), accel=accel, gyro=gyro, mag=mag))
            prev_angles = angles
        return samples

    def render_labelled(
        self,
        kind: str,
        labels: List[Tuple[str, float]],
        t0: float = 0.0,
    ) -> Tuple[List[ImuSample], List[Tuple[str, float, float]]]:
        """Render a sequence of (label, duration) segments back-to-back.

        Returns the concatenated samples and ``(label, start, end)`` spans,
        which downstream code uses as micro-level ground truth.
        """
        samples: List[ImuSample] = []
        spans: List[Tuple[str, float, float]] = []
        t = t0
        for label, duration in labels:
            seg = self.render(signature_for(kind, label), duration, t0=t)
            samples.extend(seg)
            spans.append((label, t, t + duration))
            t += duration
        return samples, spans


def samples_to_array(samples: List[ImuSample]) -> np.ndarray:
    """Stack samples into an ``(n, 10)`` array ``[t, ax, ay, az, gx, gy, gz, mx, my, mz]``."""
    return np.array(
        [[s.t, *s.accel, *s.gyro, *s.mag] for s in samples],
        dtype=float,
    )
