"""Shared per-state emission scoring for the HDBN family.

All three recognisers (single-user HDBN, coupled pair HDBN, N-chain HDBN)
score a hypothesised ``(macro, subloc)`` state against one resident's
step evidence in exactly the same way:

* observed postural / oral-gestural micro context via per-macro occupancy
  CPTs (the tier-1 wearable classifiers' outputs);
* the continuous feature vector via per-macro Gaussian mixtures whose
  components come from deterministic annealing (Augmentation 4);
* unattributed object-sensor evidence via per-macro Bernoulli CPTs;
* soft location evidence from the fused iBeacon / ambient candidate set,
  a per-step ``log P(subloc | macro)`` occupancy coupling, and a penalty
  for hypothesising a room whose PIR is silent while others fire.

Missing-modality robustness: any individual channel may be absent at a
given step (``posture=None``, ``gesture=None``, NaNs in the feature
vector) — the corresponding term is simply dropped, which is exact
marginalisation under the model's factorised emission.

Hot path: the object channel is scored from a precomputed per-macro
"all sensors off" baseline (:class:`ObjectEvidenceTable`) corrected for
the objects that actually fired, and the per-state loop is replaced by
fancy-indexing over the candidate list's dense ``(m, l)`` encodings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

import numpy as np

from repro.core.state_space import UserState, _ROOM_OF
from repro.datasets.trace import LabeledSequence
from repro.models.chmm import soft_location_log_evidence


class EmissionScorer(Protocol):
    """What a recogniser must expose for :func:`user_state_emissions`.

    ``CoupledHdbn``, ``SingleUserHdbn`` and ``NChainHdbn`` all satisfy this
    protocol structurally; the attributes are filled during construction /
    ``fit``.
    """

    constraint_model: object
    use_feature_gmm: bool
    pir_miss_penalty: float
    gmms_: Dict[int, object]


def object_log_evidence(
    object_index: Dict[str, int],
    log_table: np.ndarray,
    macro_idx: int,
    objects_fired,
) -> float:
    """Sum of per-object Bernoulli log likelihoods for one macro.

    Reference implementation (O(#objects) Python loop per call); the hot
    path uses :class:`ObjectEvidenceTable` instead.
    """
    if not object_index:
        return 0.0
    total = 0.0
    for obj, o in object_index.items():
        total += log_table[macro_idx, o, 1 if obj in objects_fired else 0]
    return float(total)


class ObjectEvidenceTable:
    """Precomputed per-macro object evidence.

    ``log P(step's object readings | macro)`` decomposes into a per-macro
    baseline (every instrumented object silent) plus, for each object that
    fired, the log-odds correction ``log P(fired) - log P(silent)``.  Both
    pieces are precomputed at fit time so a step costs one (M,)-vector add
    per distinct fired set; vectors are memoised per fired set because real
    traces re-fire the same few combinations (bounded like the other
    hot-path memos, against pathological streams).
    """

    _MEMO_LIMIT = 8192

    def __init__(self, object_index: Dict[str, int], log_table: np.ndarray) -> None:
        self.object_index = dict(object_index)
        self.log_table = log_table
        n_m = log_table.shape[0]
        if self.object_index:
            self.baseline = log_table[:, :, 0].sum(axis=1)
            self.delta = log_table[:, :, 1] - log_table[:, :, 0]
        else:
            # No instrumented objects seen in training: the channel is flat.
            self.baseline = np.zeros(n_m)
            self.delta = np.zeros((n_m, 0))
        self._memo: Dict[frozenset, np.ndarray] = {}

    def macro_vector(self, objects_fired: frozenset) -> np.ndarray:
        """(M,) log evidence of the fired-object set under every macro."""
        cached = self._memo.get(objects_fired)
        if cached is not None:
            return cached
        fired = [self.object_index[o] for o in objects_fired if o in self.object_index]
        if fired:
            out = self.baseline + self.delta[:, fired].sum(axis=1)
        else:
            out = self.baseline
        if len(self._memo) >= self._MEMO_LIMIT:
            self._memo.clear()
        self._memo[objects_fired] = out
        return out


def user_state_emissions(
    model: EmissionScorer,
    seq: LabeledSequence,
    rid: str,
    t: int,
    states: List[UserState],
    m: Optional[np.ndarray] = None,
    l: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Log emission score of each candidate state for one resident/step.

    ``m`` / ``l`` are the candidates' dense macro / sub-location indices;
    when omitted they are resolved from *states* (compatibility path).
    """
    cm = model.constraint_model
    step = seq.steps[t]
    obs = step.observations[rid]
    if m is None:
        m = np.array([cm.macro_index.index(s.macro) for s in states], dtype=int)
    if l is None:
        l = np.array([cm.subloc_index.index(s.subloc) for s in states], dtype=int)
    x = np.asarray(obs.features, dtype=float)
    features_ok = model.use_feature_gmm and x.size > 0 and not np.isnan(x).any()
    p_idx = (
        cm.posture_index.index(obs.posture)
        if (obs.posture is not None and obs.posture in cm.posture_index)
        else None
    )
    g_idx = (
        cm.gesture_index.index(obs.gesture)
        if (
            cm.gesture_index is not None
            and obs.gesture is not None
            and obs.gesture in cm.gesture_index
        )
        else None
    )
    loc_weight = soft_location_log_evidence(
        cm.subloc_index, obs.position_estimate, obs.subloc_candidates
    )

    obj_table: Optional[ObjectEvidenceTable] = getattr(model, "_obj_evidence", None)
    obj_vec = obj_table.macro_vector(step.objects_fired) if obj_table is not None else None
    gmm_bank = getattr(model, "_gmm_bank", None) if features_ok else None
    gmm_lp = gmm_bank.log_pdfs(x) if gmm_bank is not None else None

    # Per-macro score (posture / gesture / features / objects), computed
    # once per distinct macro in the candidate list.
    macro_score = np.zeros(cm.n_macro)
    for mi in np.unique(m):
        score = 0.0
        if p_idx is not None:
            score += model._log_posture[mi, p_idx]
        if g_idx is not None and model._log_gesture is not None:
            score += model._log_gesture[mi, g_idx]
        if features_ok:
            if gmm_lp is not None:
                lp = gmm_lp.get(int(mi))
                if lp is not None:
                    score += lp
            else:
                gmm = model.gmms_.get(int(mi))
                if gmm is not None:
                    score += gmm.log_pdf(x)
        if obj_vec is not None:
            score += obj_vec[mi]
        else:
            score += object_log_evidence(
                getattr(model, "_object_index", {}),
                getattr(model, "_log_obj", np.zeros((0, 0, 2))),
                int(mi),
                step.objects_fired,
            )
        macro_score[mi] = score

    # log P(subloc | macro) occupancy couples the hypothesised location
    # to the macro at every step (product-of-experts strengthening of
    # the boundary-only reset coupling; without it, macro-location
    # agreement enters once per segment and is drowned by accumulated
    # per-step feature noise).
    out = macro_score[m] + loc_weight[l] + model._log_subloc_occ[m, l]
    if step.rooms_fired:
        # PIRs miss stationary residents: penalise states whose enclosing
        # room is silent while other rooms fire.
        room_of_l = getattr(getattr(model, "builder", None), "room_of_l", None)
        if room_of_l is None:
            room_of_l = np.array(
                [_ROOM_OF.get(lbl, "unknown") for lbl in cm.subloc_index.labels],
                dtype=object,
            )
        fired_by_l = np.array([r in step.rooms_fired for r in room_of_l], dtype=bool)
        out[~fired_by_l[l]] += model.pir_miss_penalty
    return out
