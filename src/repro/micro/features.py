"""Frame-level statistical features for micro-activity classification.

Implements the paper's feature stage: "a total of 32 statistical features
(e.g., mean, variance, standard deviation, maximum and minimum, magnitudes,
Goertzel coefficients of 1-5 Hz etc.) are computed over each 1.5 seconds
long frame" with 50% overlap at 50 Hz.

Feature layout (32 total) over a 3-axis acceleration trajectory:

====================  =====  ==========================================
group                 count  contents
====================  =====  ==========================================
per-axis moments       12    mean, std, min, max for x, y, z
per-axis energy         3    mean squared value per axis
axis correlations       3    Pearson r for (x,y), (x,z), (y,z)
magnitude moments       7    mean, std, min, max, median, IQR, RMS
zero crossings          1    rate on the mean-removed magnitude
Goertzel 1-5 Hz         5    power at 1, 2, 3, 4, 5 Hz of magnitude
spectral summary        1    dominant-bin frequency (argmax of the five)
====================  =====  ==========================================
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.micro.goertzel import goertzel_spectrum
from repro.util.validation import check_positive

#: Number of features produced by :func:`extract_features`.
FEATURE_COUNT = 32

#: Goertzel target frequencies from the paper.
GOERTZEL_BANDS_HZ = np.array([1.0, 2.0, 3.0, 4.0, 5.0])


def frame_signal(
    trajectory: np.ndarray,
    sample_rate_hz: float = 50.0,
    frame_s: float = 1.5,
    overlap: float = 0.5,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(start_index, frame)`` windows over an ``(n, 3)`` trajectory.

    1.5 s frames with 50% overlap are the paper's "best segment achieved
    from trial and error".
    """
    check_positive("sample_rate_hz", sample_rate_hz)
    check_positive("frame_s", frame_s)
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    data = np.asarray(trajectory, dtype=float)
    if data.ndim != 2 or data.shape[1] != 3:
        raise ValueError(f"trajectory must be (n, 3), got {data.shape}")
    frame_len = max(2, int(round(frame_s * sample_rate_hz)))
    hop = max(1, int(round(frame_len * (1.0 - overlap))))
    for start in range(0, data.shape[0] - frame_len + 1, hop):
        yield start, data[start : start + frame_len]


def extract_features(frame: np.ndarray, sample_rate_hz: float = 50.0) -> np.ndarray:
    """32-dimensional feature vector for one ``(m, 3)`` frame."""
    data = np.asarray(frame, dtype=float)
    if data.ndim != 2 or data.shape[1] != 3:
        raise ValueError(f"frame must be (m, 3), got {data.shape}")
    if data.shape[0] < 2:
        raise ValueError("frame must contain at least 2 samples")

    feats: List[float] = []

    # Per-axis moments (12).
    for axis in range(3):
        col = data[:, axis]
        feats.extend([col.mean(), col.std(), col.min(), col.max()])

    # Per-axis energy (3).
    for axis in range(3):
        feats.append(float(np.mean(data[:, axis] ** 2)))

    # Axis correlations (3); constant axes get correlation 0.
    for i, j in ((0, 1), (0, 2), (1, 2)):
        si, sj = data[:, i].std(), data[:, j].std()
        if si < 1e-12 or sj < 1e-12:
            feats.append(0.0)
        else:
            feats.append(float(np.corrcoef(data[:, i], data[:, j])[0, 1]))

    # Magnitude channel (7 + 1).
    mag = np.linalg.norm(data, axis=1)
    q75, q25 = np.percentile(mag, [75, 25])
    feats.extend(
        [
            mag.mean(),
            mag.std(),
            mag.min(),
            mag.max(),
            float(np.median(mag)),
            float(q75 - q25),
            float(np.sqrt(np.mean(mag**2))),
        ]
    )
    centered = mag - mag.mean()
    crossings = np.count_nonzero(np.diff(np.signbit(centered)))
    feats.append(crossings / len(mag))

    # Goertzel bands (5) + dominant frequency (1).
    spectrum = goertzel_spectrum(centered, sample_rate_hz, GOERTZEL_BANDS_HZ)
    feats.extend(float(p) for p in spectrum)
    feats.append(float(GOERTZEL_BANDS_HZ[int(np.argmax(spectrum))]))

    out = np.array(feats, dtype=float)
    if out.shape[0] != FEATURE_COUNT:
        raise AssertionError(f"feature count drifted: {out.shape[0]} != {FEATURE_COUNT}")
    return out


def features_for_trajectory(
    trajectory: np.ndarray,
    sample_rate_hz: float = 50.0,
    frame_s: float = 1.5,
    overlap: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Feature matrix and frame-start indices for a whole trajectory."""
    rows: List[np.ndarray] = []
    starts: List[int] = []
    for start, frame in frame_signal(trajectory, sample_rate_hz, frame_s, overlap):
        rows.append(extract_features(frame, sample_rate_hz))
        starts.append(start)
    if not rows:
        return np.empty((0, FEATURE_COUNT)), np.empty((0,), dtype=int)
    return np.vstack(rows), np.array(starts, dtype=int)
