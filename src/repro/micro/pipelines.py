"""End-to-end micro-activity classification pipelines (§VII-E).

Ties the whole micro tier together: render labelled 9-axis IMU streams for
each postural / oral-gestural class, fuse them into absolute acceleration
trajectories, extract the 32 statistical features per 1.5 s frame, train the
from-scratch random forest, and report accuracy / false-positive rate — the
quantities the paper gives as 98.6% / 0.6% (postural) and 95.3% / 1.8%
(gestural).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.micro.changepoint import majority_smooth, segment_stream
from repro.micro.features import features_for_trajectory
from repro.micro.random_forest import RandomForestClassifier
from repro.sensors.imu import (
    GESTURAL_SIGNATURES,
    POSTURAL_SIGNATURES,
    ImuSimulator,
)
from repro.sensors.trajectory import absolute_acceleration
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive


@dataclass
class MicroClassificationReport:
    """Test-set quality of a micro classifier."""

    kind: str
    accuracy: float
    false_positive_rate: float
    per_class_accuracy: Dict[str, float]
    n_train: int
    n_test: int

    def __str__(self) -> str:
        lines = [
            f"{self.kind} micro classification: "
            f"accuracy {self.accuracy:.1%}, FP rate {self.false_positive_rate:.1%} "
            f"(train n={self.n_train}, test n={self.n_test})"
        ]
        for label, acc in sorted(self.per_class_accuracy.items()):
            lines.append(f"  {label:>10s}: {acc:.1%}")
        return "\n".join(lines)


@dataclass
class MicroPipeline:
    """IMU -> trajectory -> features -> random forest, for one micro kind.

    Parameters
    ----------
    kind:
        ``"postural"`` (pocket phone) or ``"gestural"`` (neck tag).
    sample_rate_hz / frame_s / overlap:
        Signal-processing parameters; defaults match the paper (50 Hz,
        1.5 s frames, 50% overlap).
    """

    kind: str = "postural"
    sample_rate_hz: float = 50.0
    frame_s: float = 1.5
    overlap: float = 0.5
    n_trees: int = 20
    seed: RandomState = None
    classifier: Optional[RandomForestClassifier] = field(default=None, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in ("postural", "gestural"):
            raise ValueError(f"kind must be 'postural' or 'gestural', got {self.kind!r}")
        self._rng = ensure_rng(self.seed)

    @property
    def class_names(self) -> List[str]:
        """Micro-activity classes for this kind."""
        registry = POSTURAL_SIGNATURES if self.kind == "postural" else GESTURAL_SIGNATURES
        return sorted(registry)

    # -- data generation -----------------------------------------------------

    def generate_dataset(
        self, seconds_per_class: float = 45.0, sessions_per_class: int = 3
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Render labelled IMU data and extract frame features.

        Returns ``(features, labels)``; each class contributes
        *sessions_per_class* independent renders (separate device bias
        draws) of ``seconds_per_class / sessions_per_class`` seconds each.
        """
        check_positive("seconds_per_class", seconds_per_class)
        check_positive("sessions_per_class", sessions_per_class)
        registry = POSTURAL_SIGNATURES if self.kind == "postural" else GESTURAL_SIGNATURES
        session_s = seconds_per_class / sessions_per_class

        all_feats: List[np.ndarray] = []
        all_labels: List[str] = []
        for name in self.class_names:
            for _ in range(sessions_per_class):
                imu = ImuSimulator(
                    sample_rate_hz=self.sample_rate_hz, seed=self._rng.integers(0, 2**31)
                )
                samples = imu.render(registry[name], session_s)
                trajectory = absolute_acceleration(samples, self.sample_rate_hz)
                feats, _ = features_for_trajectory(
                    trajectory, self.sample_rate_hz, self.frame_s, self.overlap
                )
                all_feats.append(feats)
                all_labels.extend([name] * feats.shape[0])
        return np.vstack(all_feats), np.array(all_labels, dtype=object)

    # -- training / evaluation --------------------------------------------------

    def train(self, features: np.ndarray, labels: np.ndarray) -> "MicroPipeline":
        """Fit the random forest on extracted features."""
        self.classifier = RandomForestClassifier(
            n_trees=self.n_trees, seed=self._rng.integers(0, 2**31)
        )
        self.classifier.fit(features, labels)
        return self

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> MicroClassificationReport:
        """Score held-out frames; FP rate is macro-averaged one-vs-rest."""
        if self.classifier is None:
            raise RuntimeError("pipeline is not trained")
        predicted = self.classifier.predict(features)
        labels = np.asarray(labels)
        accuracy = float(np.mean(predicted == labels))

        per_class: Dict[str, float] = {}
        fp_rates: List[float] = []
        for cls in self.class_names:
            mask = labels == cls
            if mask.any():
                per_class[cls] = float(np.mean(predicted[mask] == cls))
            negatives = ~mask
            if negatives.any():
                fp_rates.append(float(np.mean(predicted[negatives] == cls)))
        return MicroClassificationReport(
            kind=self.kind,
            accuracy=accuracy,
            false_positive_rate=float(np.mean(fp_rates)) if fp_rates else 0.0,
            per_class_accuracy=per_class,
            n_train=0,
            n_test=len(labels),
        )

    def train_and_evaluate(
        self,
        seconds_per_class: float = 45.0,
        test_fraction: float = 0.3,
    ) -> MicroClassificationReport:
        """Convenience: generate, split frame-wise, train, score."""
        feats, labels = self.generate_dataset(seconds_per_class)
        n = feats.shape[0]
        order = self._rng.permutation(n)
        cut = int(round((1.0 - test_fraction) * n))
        train_idx, test_idx = order[:cut], order[cut:]
        self.train(feats[train_idx], labels[train_idx])
        report = self.evaluate(feats[test_idx], labels[test_idx])
        report.n_train = len(train_idx)
        return report

    # -- streaming classification --------------------------------------------------

    def classify_stream(self, trajectory: np.ndarray, smooth: bool = True) -> List[str]:
        """Frame labels for a continuous trajectory, change-point smoothed."""
        if self.classifier is None:
            raise RuntimeError("pipeline is not trained")
        feats, _ = features_for_trajectory(
            trajectory, self.sample_rate_hz, self.frame_s, self.overlap
        )
        if feats.shape[0] == 0:
            return []
        labels = [str(v) for v in self.classifier.predict(feats)]
        if smooth and len(labels) > 4:
            segments = segment_stream(feats)
            labels = majority_smooth(labels, segments)
        return labels
