"""Unit + property tests for quaternion algebra (Eqn 16 substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors import Quaternion

angles = st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False)
components = st.floats(min_value=-10, max_value=10, allow_nan=False)


def unit_quaternions():
    return st.builds(
        lambda w, x, y, z: Quaternion(w, x, y, z),
        components, components, components, components,
    ).filter(lambda q: q.norm() > 1e-3).map(lambda q: q.normalized())


def vectors():
    return st.tuples(components, components, components).filter(
        lambda v: np.linalg.norm(v) > 1e-6
    )


class TestBasics:
    def test_identity_rotation(self):
        v = Quaternion.identity().rotate([1.0, 2.0, 3.0])
        assert np.allclose(v, [1, 2, 3])

    def test_90deg_z_rotation(self):
        q = Quaternion.from_axis_angle([0, 0, 1], np.pi / 2)
        assert np.allclose(q.rotate([1, 0, 0]), [0, 1, 0], atol=1e-12)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            Quaternion.from_axis_angle([0, 0, 0], 1.0)

    def test_zero_quaternion_has_no_inverse(self):
        with pytest.raises(ValueError):
            Quaternion(0, 0, 0, 0).inverse()

    def test_rotate_requires_3_vector(self):
        with pytest.raises(ValueError):
            Quaternion.identity().rotate([1.0, 2.0])

    def test_euler_roundtrip_yaw(self):
        q = Quaternion.from_euler(0.0, 0.0, np.pi / 3)
        axis, angle = q.axis_angle()
        assert np.allclose(axis, [0, 0, 1], atol=1e-9)
        assert angle == pytest.approx(np.pi / 3)

    def test_axis_angle_identity(self):
        _, angle = Quaternion.identity().axis_angle()
        assert angle == pytest.approx(0.0)


class TestProperties:
    @given(unit_quaternions(), vectors())
    @settings(max_examples=60, deadline=None)
    def test_rotation_preserves_norm(self, q, v):
        rotated = q.rotate(list(v))
        assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(v), rel=1e-6)

    @given(unit_quaternions(), unit_quaternions(), vectors())
    @settings(max_examples=60, deadline=None)
    def test_composition_matches_sequential_rotation(self, q1, q2, v):
        combined = (q1 * q2).rotate(list(v))
        sequential = q1.rotate(q2.rotate(list(v)))
        assert np.allclose(combined, sequential, atol=1e-8)

    @given(unit_quaternions())
    @settings(max_examples=60, deadline=None)
    def test_inverse_composes_to_identity(self, q):
        prod = q * q.inverse()
        assert prod.w == pytest.approx(1.0, abs=1e-9)
        assert abs(prod.x) < 1e-9 and abs(prod.y) < 1e-9 and abs(prod.z) < 1e-9

    @given(unit_quaternions(), vectors())
    @settings(max_examples=60, deadline=None)
    def test_rotation_matrix_agrees_with_sandwich(self, q, v):
        via_matrix = q.to_rotation_matrix() @ np.asarray(v)
        via_sandwich = q.rotate(list(v))
        assert np.allclose(via_matrix, via_sandwich, atol=1e-8)

    @given(unit_quaternions())
    @settings(max_examples=60, deadline=None)
    def test_rotation_matrix_is_orthogonal(self, q):
        r = q.to_rotation_matrix()
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-8)
        assert np.linalg.det(r) == pytest.approx(1.0, abs=1e-8)

    @given(unit_quaternions(), unit_quaternions())
    @settings(max_examples=40, deadline=None)
    def test_slerp_endpoints(self, q1, q2):
        start = q1.slerp(q2, 0.0)
        end = q1.slerp(q2, 1.0)
        assert q1.angular_distance(start) == pytest.approx(0.0, abs=1e-6)
        assert min(q2.angular_distance(end), 2 * np.pi - q2.angular_distance(end)) == pytest.approx(
            0.0, abs=1e-6
        )

    @given(unit_quaternions())
    @settings(max_examples=40, deadline=None)
    def test_angular_distance_to_self_is_zero(self, q):
        assert q.angular_distance(q) == pytest.approx(0.0, abs=1e-9)


class TestEqn16:
    def test_relative_position_unit_norm(self):
        from repro.sensors.trajectory import relative_trajectory

        qs = [
            Quaternion.from_axis_angle([0, 0, 1], a)
            for a in np.linspace(0, np.pi, 20)
        ]
        traj = relative_trajectory(qs)
        assert traj.shape == (20, 3)
        assert np.allclose(np.linalg.norm(traj, axis=1), 1.0, atol=1e-9)
