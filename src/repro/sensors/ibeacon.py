"""iBeacon distance estimation and trilateration.

The testbed scatters 9 iBeacons whose RSSI gives each smartphone a noisy
distance estimate; trilateration over three or more beacons recovers the
phone's position, which (a) maps to one of the 14 sub-regions and (b) serves
as the multiple-occupancy detector (is this phone inside the home at all?).
We model the standard log-distance path-loss channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Beacon:
    """A fixed iBeacon at a known 2-D position."""

    beacon_id: str
    position: Tuple[float, float]
    tx_power_dbm: float = -59.0  # RSSI at 1 m, typical iBeacon calibration
    path_loss_exponent: float = 2.2


@dataclass
class BeaconReceiver:
    """Smartphone-side iBeacon ranging.

    ``rssi_noise_db`` controls per-advertisement ranging quality; 2-4 dB is
    typical indoors.  ``rssi_samples`` advertisements are averaged per fix
    (the Estimote SDK the testbed uses smooths RSSI the same way), and only
    the ``max_anchors`` strongest beacons enter trilateration — distant
    ranges carry multiplicatively inflated error under log-distance path
    loss and would otherwise dominate the least-squares residual.
    """

    beacons: Sequence[Beacon]
    rssi_noise_db: float = 2.6
    max_range_m: float = 25.0
    rssi_samples: int = 5
    max_anchors: int = 5
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("rssi_noise_db", self.rssi_noise_db)
        check_positive("max_range_m", self.max_range_m)
        if len(self.beacons) == 0:
            raise ValueError("BeaconReceiver needs at least one beacon")
        self._rng = ensure_rng(self.seed)

    # -- channel model -------------------------------------------------------

    def rssi(self, beacon: Beacon, position: Tuple[float, float]) -> Optional[float]:
        """Observed RSSI (dBm) from *beacon* at *position*, None if out of range.

        Averages ``rssi_samples`` independent advertisements, which shrinks
        the effective noise by ``sqrt(rssi_samples)``.
        """
        d = float(np.hypot(position[0] - beacon.position[0], position[1] - beacon.position[1]))
        d = max(d, 0.1)
        if d > self.max_range_m:
            return None
        loss = 10.0 * beacon.path_loss_exponent * np.log10(d)
        noise = float(np.mean(self._rng.normal(0.0, self.rssi_noise_db, size=self.rssi_samples)))
        return float(beacon.tx_power_dbm - loss + noise)

    @staticmethod
    def distance_from_rssi(beacon: Beacon, rssi_dbm: float) -> float:
        """Invert the path-loss model to a distance estimate in metres."""
        exponent = (beacon.tx_power_dbm - rssi_dbm) / (10.0 * beacon.path_loss_exponent)
        return float(10.0**exponent)

    # -- ranging + localisation -----------------------------------------------

    def range_all(self, position: Tuple[float, float]) -> List[Tuple[Beacon, float]]:
        """Distance estimates to every in-range beacon."""
        out: List[Tuple[Beacon, float]] = []
        for beacon in self.beacons:
            r = self.rssi(beacon, position)
            if r is not None:
                out.append((beacon, self.distance_from_rssi(beacon, r)))
        return out

    def localize(self, position: Tuple[float, float]) -> Optional[np.ndarray]:
        """Estimate the phone's 2-D position by trilateration, or None.

        Ranges every in-range beacon, keeps the ``max_anchors`` nearest
        estimates (strongest RSSI), and refines the linearised solution with
        distance-weighted Gauss-Newton iterations.
        """
        ranges = self.range_all(position)
        if len(ranges) < 3:
            return None
        ranges.sort(key=lambda pair: pair[1])
        ranges = ranges[: self.max_anchors]
        anchors = np.array([b.position for b, _ in ranges], dtype=float)
        dists = np.array([d for _, d in ranges], dtype=float)
        return trilaterate(anchors, dists)

    def inside(self, position: Tuple[float, float], bounds: Tuple[float, float, float, float]) -> bool:
        """Multiple-occupancy detection: is the phone inside *bounds*?

        *bounds* is ``(xmin, ymin, xmax, ymax)``; a phone with no beacon
        fixes, or a fix outside the rectangle, is considered away from home.
        """
        est = self.localize(position)
        if est is None:
            return False
        xmin, ymin, xmax, ymax = bounds
        # Half-metre slack absorbs ranging noise at the walls.
        return bool(xmin - 0.5 <= est[0] <= xmax + 0.5 and ymin - 0.5 <= est[1] <= ymax + 0.5)


def trilaterate(
    anchors: np.ndarray, distances: np.ndarray, gauss_newton_iters: int = 12
) -> np.ndarray:
    """Weighted trilateration from >= 3 anchor/distance pairs.

    A linearised least-squares solve (circle equations differenced against
    the first anchor) provides the initial estimate, then distance-weighted
    Gauss-Newton iterations minimise ``sum_i w_i (|x - a_i| - d_i)^2`` with
    ``w_i = 1 / (d_i + 0.5)^2``: under log-distance path loss the ranging
    error grows proportionally to the distance itself, so near anchors are
    far more trustworthy.
    """
    anchors = np.asarray(anchors, dtype=float)
    distances = np.asarray(distances, dtype=float)
    if anchors.ndim != 2 or anchors.shape[1] != 2:
        raise ValueError(f"anchors must be (n, 2), got {anchors.shape}")
    if anchors.shape[0] < 3:
        raise ValueError("trilateration needs at least 3 anchors")
    if anchors.shape[0] != distances.shape[0]:
        raise ValueError("anchors and distances must align")

    x0, y0 = anchors[0]
    d0 = distances[0]
    a_rows = []
    b_rows = []
    for (xi, yi), di in zip(anchors[1:], distances[1:]):
        a_rows.append([2 * (xi - x0), 2 * (yi - y0)])
        b_rows.append(d0**2 - di**2 + xi**2 - x0**2 + yi**2 - y0**2)
    a = np.array(a_rows, dtype=float)
    b = np.array(b_rows, dtype=float)
    estimate, *_ = np.linalg.lstsq(a, b, rcond=None)

    weights = 1.0 / (distances + 0.5) ** 2
    for _ in range(gauss_newton_iters):
        deltas = estimate[None, :] - anchors  # (n, 2)
        ranges = np.linalg.norm(deltas, axis=1)
        residuals = ranges - distances
        # Clamp only the Jacobian denominator: an estimate sitting on an
        # anchor has no usable direction (row -> 0), but its residual must
        # stay exact or the clamp itself drags the optimum off target.
        jacobian = deltas / np.maximum(ranges, 1e-9)[:, None]  # d|x-a|/dx
        jw = jacobian * weights[:, None]
        hessian = jw.T @ jacobian + 1e-9 * np.eye(2)
        gradient = jw.T @ residuals
        step = np.linalg.solve(hessian, gradient)
        estimate = estimate - step
        if float(np.linalg.norm(step)) < 1e-9:
            break
    return estimate
