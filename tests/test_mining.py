"""Unit + property tests for Apriori, rules, and the context miners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import (
    Apriori,
    AssociationRule,
    ConstraintMiner,
    CorrelationMiner,
    ExclusionRule,
    Item,
    encode_sequence,
    initial_rule_set,
    merge_redundant,
    table_iv_rules,
)
from repro.mining.context_rules import encode_dataset, format_item


def _item(slot, attr, value, time="t"):
    return Item(slot, time, attr, value)


def _transactions():
    """Hand-built transactions with a planted rule and exclusion.

    Planted: {A, B} => C with confidence 1.0; X and Y never co-occur.
    """
    a, b, c = _item("u1", "posture", "A"), _item("u1", "subloc", "B"), _item("u1", "macro", "C")
    d = _item("u1", "macro", "D")
    x, y = _item("u1", "subloc", "X"), _item("u2", "subloc", "X")
    base = []
    for i in range(40):
        t = {a, b, c}
        if i % 2 == 0:
            t.add(x)
        else:
            t.add(y)
        base.append(frozenset(t))
    for i in range(40):
        t = {a, d} if i % 2 else {b, d}
        if i % 2 == 0:
            t.add(x)
        else:
            t.add(y)
        base.append(frozenset(t))
    return base


class TestApriori:
    def test_single_item_supports_exact(self):
        transactions = _transactions()
        apriori = Apriori(min_support=0.1, max_itemset_size=2)
        itemsets = apriori.mine_itemsets(transactions)
        a = frozenset([_item("u1", "posture", "A")])
        # A appears in 40 + 20 of 80 transactions.
        assert itemsets.support(a) == pytest.approx(60 / 80)

    def test_pair_support(self):
        itemsets = Apriori(min_support=0.1).mine_itemsets(_transactions())
        ab = frozenset([_item("u1", "posture", "A"), _item("u1", "subloc", "B")])
        assert itemsets.support(ab) == pytest.approx(40 / 80)

    def test_min_support_filters(self):
        itemsets = Apriori(min_support=0.9).mine_itemsets(_transactions())
        assert len(itemsets.supports) == 0

    def test_planted_rule_found_with_full_confidence(self):
        rules = Apriori(min_support=0.1, min_confidence=0.99).mine_rules(
            _transactions(), consequent_attrs=("macro",)
        )
        planted = [
            r
            for r in rules
            if r.consequent.value == "C"
            and {i.value for i in r.antecedent} == {"A", "B"}
        ]
        assert planted and planted[0].confidence == pytest.approx(1.0)

    def test_no_rule_below_confidence(self):
        rules = Apriori(min_support=0.1, min_confidence=0.99).mine_rules(
            _transactions(), consequent_attrs=("macro",)
        )
        # A => D has confidence 20/60 < 0.99; it must not be emitted.
        assert not any(
            r.consequent.value == "D" and {i.value for i in r.antecedent} == {"A"}
            for r in rules
        )

    def test_empty_transactions_rejected(self):
        with pytest.raises(ValueError):
            Apriori().mine_itemsets([])

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_support_antimonotone(self, n_items):
        # Random small transaction DB: support(superset) <= support(subset).
        rng = np.random.default_rng(n_items)
        universe = [_item("u1", "attr", str(i)) for i in range(n_items)]
        transactions = [
            frozenset(it for it in universe if rng.random() < 0.5) for _ in range(60)
        ]
        itemsets = Apriori(min_support=0.01, max_itemset_size=3).mine_itemsets(transactions)
        for itemset, support in itemsets.supports.items():
            for item in itemset:
                subset = frozenset(itemset - {item})
                if subset:
                    assert itemsets.support(subset) >= support - 1e-12


class TestRules:
    def test_satisfied_by_open_world(self):
        rule = AssociationRule(
            antecedent=frozenset([_item("u1", "posture", "cycling")]),
            consequent=_item("u1", "macro", "exercising"),
            support=0.1,
            confidence=1.0,
        )
        # Antecedent absent: trivially satisfied.
        assert rule.satisfied_by(frozenset([_item("u1", "posture", "sitting")]))
        # Fires, consequent matches.
        assert rule.satisfied_by(
            frozenset([_item("u1", "posture", "cycling"), _item("u1", "macro", "exercising")])
        )
        # Fires, conflicting macro value present: violated.
        assert not rule.satisfied_by(
            frozenset([_item("u1", "posture", "cycling"), _item("u1", "macro", "dining")])
        )
        # Fires, macro attribute absent entirely: not a violation.
        assert rule.satisfied_by(frozenset([_item("u1", "posture", "cycling")]))

    def test_exclusion_violated_by(self):
        excl = ExclusionRule(
            a=_item("u1", "subloc", "SR9"), b=_item("u2", "subloc", "SR9"),
            support_a=0.1, support_b=0.1,
        )
        both = frozenset([excl.a, excl.b])
        assert excl.violated_by(both)
        assert not excl.violated_by(frozenset([excl.a]))

    def test_merge_redundant_drops_dominated(self):
        general = AssociationRule(
            antecedent=frozenset([_item("u1", "subloc", "SR1")]),
            consequent=_item("u1", "macro", "exercising"),
            support=0.1, confidence=1.0,
        )
        specific = AssociationRule(
            antecedent=frozenset(
                [_item("u1", "subloc", "SR1"), _item("u1", "posture", "cycling")]
            ),
            consequent=_item("u1", "macro", "exercising"),
            support=0.08, confidence=1.0,
        )
        kept = merge_redundant([general, specific])
        assert kept == [general]

    def test_merge_keeps_more_confident_specific(self):
        general = AssociationRule(
            antecedent=frozenset([_item("u1", "subloc", "SR1")]),
            consequent=_item("u1", "macro", "exercising"),
            support=0.1, confidence=0.99,
        )
        specific = AssociationRule(
            antecedent=frozenset(
                [_item("u1", "subloc", "SR1"), _item("u1", "posture", "cycling")]
            ),
            consequent=_item("u1", "macro", "exercising"),
            support=0.08, confidence=1.0,
        )
        kept = merge_redundant([general, specific])
        assert len(kept) == 2

    def test_format_item(self):
        assert format_item(_item("u1", "subloc", "SR4")) == "U1(t):subloc=SR4"


class TestEncoding:
    def test_transaction_counts(self, cace_dataset):
        seq = cace_dataset.sequences[0]
        plain = encode_sequence(seq, symmetrize=False)
        symmetric = encode_sequence(seq, symmetrize=True)
        assert len(plain) == len(seq)
        assert len(symmetric) == 2 * len(seq)

    def test_two_time_slices_present(self, cace_dataset):
        seq = cace_dataset.sequences[0]
        transactions = encode_sequence(seq, symmetrize=False)
        later = transactions[5]
        times = {item.time for item in later}
        assert times == {"t", "t-1"}

    def test_slots_are_canonical(self, cace_dataset):
        transactions = encode_dataset(cace_dataset.sequences[:1])
        slots = {item.slot for t in transactions for item in t}
        assert slots <= {"u1", "u2", "amb"}


class TestCorrelationMiner:
    def test_mines_forcing_and_exclusions(self, rule_set):
        assert len(rule_set.forcing_rules) > 0
        # Rules must force hidden attributes at time t only.
        for rule in rule_set.forcing_rules:
            assert rule.consequent.attr in ("macro", "subloc")
            assert rule.consequent.time == "t"
            assert all(item.time == "t" for item in rule.antecedent)
            assert rule.confidence >= 0.99

    def test_is_consistent_accepts_truth(self, cace_split, rule_set):
        from repro.mining.context_rules import encode_step

        train, _ = cace_split
        seq = train.sequences[0]
        slot_of = {rid: f"u{i+1}" for i, rid in enumerate(seq.resident_ids)}
        ok = 0
        for step, truth in zip(seq.steps[:50], seq.truths[:50]):
            items = encode_step(truth, None, step.rooms_fired, step.objects_fired, slot_of)
            ok += rule_set.is_consistent(items)
        assert ok >= 48  # ground truth is (almost) always rule-consistent

    def test_single_and_cross_split(self, rule_set):
        single = rule_set.single_user()
        cross = rule_set.cross_user()
        assert not single.exclusions
        assert cross.exclusions == rule_set.exclusions
        for rule in single.forcing_rules:
            slots = {i.slot for i in rule.antecedent} | {rule.consequent.slot}
            assert slots <= {"u1", "amb"}
        for rule in cross.forcing_rules:
            slots = {i.slot for i in rule.antecedent if i.slot != "amb"}
            slots.add(rule.consequent.slot)
            assert len(slots) > 1
        # Every rule lands in exactly one bucket (mirrors deduplicated).
        assert len(cross.forcing_rules) <= len(rule_set.forcing_rules)

    def test_merge_with_initial_rules(self, rule_set):
        merged = rule_set.merge(initial_rule_set())
        assert merged.n_rules >= rule_set.n_rules


class TestInitialRules:
    def test_table_iv_rules_shape(self):
        rules = table_iv_rules()
        assert len(rules) == 10  # 5 per user slot
        assert all(r.confidence == 1.0 for r in rules)

    def test_initial_rule_set_consistency_checks(self):
        rs = initial_rule_set()
        bad = frozenset(
            [_item("u1", "subloc", "SR9"), _item("u2", "subloc", "SR9")]
        )
        assert not rs.is_consistent(bad)
        good = frozenset([_item("u1", "subloc", "SR9")])
        assert rs.is_consistent(good)

    def test_cycling_in_sr1_forces_exercising(self):
        rs = initial_rule_set()
        violating = frozenset(
            [
                _item("u1", "posture", "cycling"),
                _item("u1", "subloc", "SR1"),
                _item("u1", "macro", "dining"),
            ]
        )
        assert not rs.is_consistent(violating)


class TestConstraintMiner:
    def test_tables_are_distributions(self, constraint_model):
        cm = constraint_model
        assert np.allclose(cm.macro_prior.sum(), 1.0)
        assert np.allclose(cm.macro_trans.sum(axis=1), 1.0)
        assert np.allclose(cm.macro_trans_coupled.sum(axis=2), 1.0)
        assert np.allclose(cm.posture_trans.sum(axis=2), 1.0)
        assert np.allclose(cm.subloc_prior.sum(axis=1), 1.0)

    def test_end_probabilities_bounded(self, constraint_model):
        cm = constraint_model
        assert np.all(cm.macro_end_prob > 0) and np.all(cm.macro_end_prob < 1)
        assert np.all(cm.micro_end_prob > 0) and np.all(cm.micro_end_prob < 1)

    def test_blocking_semantics_in_counts(self, constraint_model):
        # Macro self-transitions dominate (segments span many steps) for
        # every macro the small fixture corpus actually visited; unvisited
        # rows smooth to uniform (1/M) and are excluded.
        cm = constraint_model
        diag = np.diag(cm.macro_trans)
        visited = diag > 1.5 / cm.n_macro
        assert visited.any()
        assert np.mean(diag[visited]) > 0.7

    def test_micro_states_for(self, constraint_model):
        states = constraint_model.micro_states_for("sleeping", min_prob=0.05)
        assert states
        postures = {p for p, _, _ in states}
        assert "lying" in postures
        sublocs = {s for _, _, s in states}
        assert "SR5" in sublocs

    def test_exercising_location_prior_peaks_at_sr1(self, constraint_model):
        cm = constraint_model
        m = cm.macro_index.index("exercising")
        top = cm.subloc_index.label(int(np.argmax(cm.subloc_prior[m])))
        assert top == "SR1"
