"""N-chain loosely-coupled HDBN (beyond the paper's two-resident testbed).

The paper's conclusion conjectures that "our generic CACE framework can
handle 3-4 occupants as well"; this module makes the conjecture concrete.
:class:`NChainHdbn` generalises the pair-wise :class:`~repro.core.chdbn.
CoupledHdbn` to any number of resident chains:

* per-user candidate states and emissions are identical to the pair model
  (shared via :mod:`repro.core.emissions`);
* deterministic cross-user correlations prune every *pair* of chains —
  rules are mined on symmetrised two-user slots, so a rule that forbids
  ``(u1, u2)`` joint states applies to every ordered chain pair;
* the joint coverage term explains fired areas against *all* hypothesised
  residents;
* each chain's macro transition is conditioned on one partner chain
  (chain ``i`` on chain ``(i+1) mod N``), which keeps the transition
  tensor pairwise — exactly the "loose" coupling that makes N chains
  tractable — while every pairing still appears somewhere in the ring.

The joint trellis width is capped by emission score, so decoding remains
polynomial even though the raw product space grows exponentially in N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import DecodeStats, TrellisPiece, make_step_filter
from repro.core.chdbn import (
    build_candidate_set,
    build_transition_tables,
    chain_block,
    fit_emission_tables,
)
from repro.core.kernels import (
    SequenceKernel,
    _lse,
    backward_betas,
    forward_alphas,
    viterbi_path,
)
from repro.core.rule_kernel import (
    CompiledRules,
    CrossRulePruner,
    SingleRulePruner,
    StepItems,
    soft_exclusion_matrix,
)
from repro.core.state_space import CandidateSet, StateSpaceBuilder
from repro.datasets.trace import Dataset, LabeledSequence
from repro.obs import runtime as obs
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.util.rng import RandomState, ensure_rng

_TINY = 1e-12


@dataclass
class NChainHdbn:
    """Loosely-coupled HDBN over N resident chains.

    Parameters mirror :class:`~repro.core.chdbn.CoupledHdbn`; the joint
    caps apply to the full N-way product space.
    """

    constraint_model: ConstraintModel
    rule_set: Optional[CorrelationRuleSet] = None
    prune_cross: bool = True
    gmm_components: int = 4
    max_states_per_user: int = 24
    max_joint_states: int = 1200
    max_joint_states_pruned: int = 300
    min_change_prob: float = 1e-4
    use_feature_gmm: bool = True
    pir_miss_penalty: float = -1.5
    unexplained_subloc_penalty: float = -4.5
    unexplained_room_penalty: float = -2.5
    soft_exclusion_penalty: float = 0.0
    #: Decode through the per-sequence batched evidence tables
    #: (:class:`repro.core.kernels.SequenceKernel`); bit-identical.
    use_sequence_kernels: bool = True
    seed: RandomState = None
    builder: StateSpaceBuilder = field(default=None, init=False, repr=False)
    gmms_: Dict[int, object] = field(default_factory=dict, init=False, repr=False)
    last_stats: DecodeStats = field(default_factory=DecodeStats, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        self.builder = StateSpaceBuilder(
            constraint_model=self.constraint_model,
            max_states_per_user=4 * self.max_states_per_user,
        )
        self._single_rules = self.rule_set.single_user() if self.rule_set else None
        self._cross_rules = self.rule_set.cross_user() if self.rule_set else None
        cm = self.constraint_model
        self._single_pruner = (
            SingleRulePruner(CompiledRules(self._single_rules), cm, self.builder.room_of_l)
            if self._single_rules is not None
            else None
        )
        self._compiled_cross = (
            CompiledRules(self._cross_rules) if self._cross_rules is not None else None
        )
        self._cross_pruner = (
            CrossRulePruner(self._compiled_cross, cm, self.builder.room_of_l)
            if self._compiled_cross is not None
            else None
        )
        self._p_change = np.clip(cm.macro_end_prob, self.min_change_prob, 0.5)
        coupled = cm.macro_trans_coupled.copy()
        n_m = cm.n_macro
        coupled[np.arange(n_m), :, np.arange(n_m)] = 0.0
        row = coupled.sum(axis=2, keepdims=True)
        self._change_trans = coupled / np.maximum(row, _TINY)
        self._log_posture = np.log(cm.posture_occupancy + _TINY)
        self._log_gesture = (
            np.log(cm.gesture_occupancy + _TINY)
            if cm.gesture_occupancy is not None
            else None
        )
        self._log_subloc_prior = np.log(cm.subloc_prior + _TINY)
        self._log_subloc_occ = np.log(cm.subloc_occupancy + _TINY)
        self._subloc_trans = cm.subloc_trans
        self._micro_end = cm.micro_end_prob
        self._macro_block_table, self._loc_block_table = build_transition_tables(
            self._p_change, self._change_trans, self._micro_end, self._subloc_trans
        )

    # -- training -----------------------------------------------------------------

    def fit(self, train: Dataset) -> "NChainHdbn":
        """Fit emissions: DA Gaussian mixtures + object-evidence CPT."""
        fit_emission_tables(self, train)
        return self

    # -- per-step machinery ----------------------------------------------------------

    def _make_kernel(
        self, seq: LabeledSequence, rids: Tuple[str, ...]
    ) -> Optional[SequenceKernel]:
        """Per-sequence batched evidence tables (None when disabled)."""
        if not self.use_sequence_kernels:
            return None
        return SequenceKernel(self, seq, rids)

    def _user_candidates(
        self,
        seq: LabeledSequence,
        rid: str,
        t: int,
        kern: Optional[SequenceKernel] = None,
    ) -> CandidateSet:
        return build_candidate_set(self, seq, rid, t, kern=kern)

    def _joint_candidates(
        self,
        seq: LabeledSequence,
        t: int,
        per_user: List[CandidateSet],
        rids: Sequence[str],
        kern: Optional[SequenceKernel] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(J, N) index tuples into the per-user candidate lists + scores."""
        step = seq.steps[t]
        n = len(per_user)
        sizes = [len(c) for c in per_user]
        grids = np.indices(sizes).reshape(n, -1).T  # (prod, N)

        prune_active = self._cross_pruner is not None and self.prune_cross
        if prune_active:
            # The pairwise rule matrices are cached per candidate list, so
            # every ordered chain pair reuses the same per-rule rows.
            amb = kern.step_items(t) if kern is not None else StepItems(step)
            mask = np.ones(grids.shape[0], dtype=bool)
            for a in range(n):
                for b in range(a + 1, n):
                    gates = (
                        kern.cross_gates(rids[a], rids[b], t)
                        if kern is not None
                        else None
                    )
                    pair_keep = self._cross_pruner.keep(
                        amb, per_user[a], per_user[b], gates
                    )
                    mask &= pair_keep[grids[:, a], grids[:, b]]
            if mask.any():
                # Count only joint states actually removed (the all-pruned
                # fallback keeps every pair and must report zero).
                self.last_stats.pruned_joint_states += int((~mask).sum())
                grids = grids[mask]

        scores = np.zeros(grids.shape[0])
        for u, c in enumerate(per_user):
            scores += c.emissions[grids[:, u]]

        if prune_active:
            cm_ = self.constraint_model
            room_of_l = self.builder.room_of_l
            for a in range(n):
                for b in range(a + 1, n):
                    pen = soft_exclusion_matrix(
                        self._compiled_cross,
                        cm_,
                        room_of_l,
                        per_user[a],
                        per_user[b],
                        self.soft_exclusion_penalty,
                    )
                    if pen is not None:
                        scores += pen[grids[:, a], grids[:, b]]

        # Joint explaining-away over all chains.
        cm = self.constraint_model
        for fired in step.sublocs_fired:
            covered = np.zeros(grids.shape[0], dtype=bool)
            if fired in cm.subloc_index:
                f = cm.subloc_index.index(fired)
                for u, c in enumerate(per_user):
                    covered |= c.l[grids[:, u]] == f
            scores += np.where(covered, 0.0, self.unexplained_subloc_penalty)
        if not step.sublocs_fired and step.rooms_fired:
            room_of_l = self.builder.room_of_l
            rooms = [room_of_l[c.l] for c in per_user]
            for fired in step.rooms_fired:
                covered = np.zeros(grids.shape[0], dtype=bool)
                for u in range(n):
                    covered |= rooms[u][grids[:, u]] == fired
                scores += np.where(covered, 0.0, self.unexplained_room_penalty)

        cap = self.max_joint_states
        if self.rule_set is not None and self.prune_cross:
            cap = min(cap, self.max_joint_states_pruned)
        if grids.shape[0] > cap:
            self.last_stats.capped_joint_states += grids.shape[0] - cap
            top = np.argsort(scores)[::-1][:cap]
            grids = grids[top]
            scores = scores[top]
        return grids, scores

    def _encode(
        self, per_user: List[CandidateSet], grids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Macro and subloc index arrays of shape (J, N)."""
        n = len(per_user)
        m = np.empty((grids.shape[0], n), dtype=int)
        l = np.empty((grids.shape[0], n), dtype=int)
        for u, c in enumerate(per_user):
            m[:, u] = c.m[grids[:, u]]
            l[:, u] = c.l[grids[:, u]]
        return m, l

    def _chain_block(
        self,
        m_prev: np.ndarray,
        l_prev: np.ndarray,
        partner_prev: np.ndarray,
        m_cur: np.ndarray,
        l_cur: np.ndarray,
    ) -> np.ndarray:
        return chain_block(
            self._macro_block_table, self._loc_block_table, self._log_subloc_prior,
            m_prev, l_prev, partner_prev, m_cur, l_cur,
        )

    def _transition_block(
        self,
        prev: Tuple[np.ndarray, np.ndarray],
        cur: Tuple[np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """(P, C) joint log transition; chain i conditions on chain i+1."""
        m_prev, l_prev = prev
        m_cur, l_cur = cur
        n = m_prev.shape[1]
        total = np.zeros((m_prev.shape[0], m_cur.shape[0]))
        for u in range(n):
            partner = (u + 1) % n if n > 1 else u
            total += self._chain_block(
                m_prev[:, u], l_prev[:, u], m_prev[:, partner], m_cur[:, u], l_cur[:, u]
            )
        return total

    # -- Recognizer surface --------------------------------------------------------

    def trellis_sessions(self, seq: LabeledSequence) -> List["_NChainTrellis"]:
        """One joint session over all resident chains."""
        rids = tuple(seq.resident_ids)
        if len(rids) < 2:
            raise ValueError("NChainHdbn expects >= 2 residents (use SingleUserHdbn)")
        return [_NChainTrellis(self, seq, rids)]

    def step_filter(self, lag: int = 0):
        """Fixed-lag smoother bound to this model."""
        return make_step_filter(self, lag)

    def describe(self) -> str:
        """One-line summary for logs and CLIs."""
        pruning = "rule-pruned" if self.rule_set is not None else "unpruned"
        return (
            f"loosely-coupled N-chain HDBN ({pruning}, "
            f"<= {self.max_states_per_user} states/user)"
        )

    # -- decoding -----------------------------------------------------------------------

    def _prepare(self, seq: LabeledSequence):
        rids = tuple(seq.resident_ids)
        if len(rids) < 2:
            raise ValueError("NChainHdbn expects >= 2 residents (use SingleUserHdbn)")
        self.last_stats = DecodeStats()
        stats = self.last_stats
        kern = self._make_kernel(seq, rids)
        if kern is not None:
            kern.ensure(0, len(seq))
        per_step = []
        for t in range(len(seq)):
            per_user = [self._user_candidates(seq, rid, t, kern) for rid in rids]
            grids, scores = self._joint_candidates(seq, t, per_user, rids, kern)
            enc = self._encode(per_user, grids)
            per_step.append((per_user, grids, scores, enc))
            stats.steps += 1
            stats.joint_states += grids.shape[0]
        return rids, per_step

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Joint Viterbi macro labels for every resident."""
        with obs.timed_span(
            "decode",
            metric="decode.nchain.seconds",
            counts={"decode.nchain.steps": len(seq)},
            family="nchain",
        ):
            return self._decode(seq)

    def _decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model

        per_user, grids, scores, (m_enc, l_enc) = per_step[0]
        initial = scores + np.sum(
            np.log(cm.macro_prior[m_enc] + _TINY)
            + self._log_subloc_prior[m_enc, l_enc],
            axis=1,
        )
        per_scores = [p[2] for p in per_step]

        def transition(t: int) -> np.ndarray:
            return self._transition_block(per_step[t - 1][3], per_step[t][3])

        with obs.timed_span(
            "trellis_sweep", metric="decode.nchain.sweep_seconds", family="nchain"
        ):
            path = viterbi_path(initial, per_scores, transition, self.last_stats)

        out: Dict[str, List[str]] = {rid: [] for rid in rids}
        for t, j in enumerate(path):
            per_user, grids, _, _ = per_step[t]
            for u, rid in enumerate(rids):
                out[rid].append(per_user[u].states[grids[j, u]].macro)
        return out

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Per-resident posterior macro marginals ``(T, M)``."""
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model
        n_m = cm.n_macro

        _, _, scores, (m_enc, l_enc) = per_step[0]
        initial = scores + np.sum(
            np.log(cm.macro_prior[m_enc] + _TINY)
            + self._log_subloc_prior[m_enc, l_enc],
            axis=1,
        )
        per_scores = [p[2] for p in per_step]

        def transition(t: int) -> np.ndarray:
            return self._transition_block(per_step[t - 1][3], per_step[t][3])

        alphas = forward_alphas(initial, per_scores, transition)
        betas = backward_betas(per_scores, transition)

        out = {rid: np.zeros((len(per_step), n_m)) for rid in rids}
        for t in range(len(per_step)):
            log_gamma = alphas[t] + betas[t]
            log_gamma -= _lse(log_gamma, axis=0)
            gamma = np.exp(log_gamma)
            m_enc, _ = per_step[t][3]
            for u, rid in enumerate(rids):
                np.add.at(out[rid][t], m_enc[:, u], gamma)
        return out


class _NChainTrellis:
    """Incremental-forward adapter over the joint N-chain trellis."""

    def __init__(self, model: NChainHdbn, seq: LabeledSequence, rids: Tuple[str, ...]):
        self.model = model
        self.seq = seq
        self.rids = rids
        self._kern = model._make_kernel(seq, rids)

    def prepare(self, t0: int, t1: int) -> None:
        """Batch-build the per-sequence evidence tables for ``[t0, t1)``
        ahead of the per-step ``piece`` calls (used by bulk pushes)."""
        if self._kern is not None:
            self._kern.ensure(t0, t1)

    def piece(self, t: int) -> TrellisPiece:
        model, seq, rids = self.model, self.seq, self.rids
        kern = self._kern
        if kern is not None:
            kern.ensure(0, t + 1)
        per_user = [model._user_candidates(seq, rid, t, kern) for rid in rids]
        grids, scores = model._joint_candidates(seq, t, per_user, rids, kern)
        enc = model._encode(per_user, grids)
        return TrellisPiece(scores=scores, enc=enc, extra=(per_user, grids))

    def initial_alpha(self, piece: TrellisPiece) -> np.ndarray:
        model = self.model
        cm = model.constraint_model
        m_enc, l_enc = piece.enc
        return piece.scores + np.sum(
            np.log(cm.macro_prior[m_enc] + _TINY)
            + model._log_subloc_prior[m_enc, l_enc],
            axis=1,
        )

    def transition(self, prev: TrellisPiece, cur: TrellisPiece) -> np.ndarray:
        return self.model._transition_block(prev.enc, cur.enc)

    def labels(self, piece: TrellisPiece, gamma: np.ndarray) -> Dict[str, str]:
        cm = self.model.constraint_model
        m_enc, _ = piece.enc
        out: Dict[str, str] = {}
        for u, rid in enumerate(self.rids):
            marg = np.zeros(cm.n_macro)
            np.add.at(marg, m_enc[:, u], gamma)
            out[rid] = cm.macro_index.label(int(np.argmax(marg)))
        return out
