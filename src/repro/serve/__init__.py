"""Serving facade: one loaded model artifact, many live sessions.

:class:`~repro.serve.router.SessionRouter` is the deployment-shaped entry
point the paper's cloud architecture (Fig 1) implies: fit once, save a
versioned artifact, then route interleaved context streams from multiple
homes/sessions through per-session fixed-lag smoothers.
"""

from repro.serve.router import SessionRouter, SessionState

__all__ = ["SessionRouter", "SessionState"]
