"""Chaos suite: fault-tolerant decode, degraded serving, injection harness.

Every fault here is injected deterministically (seeded plans, no live
RNG), so the assertions are exact: which sessions fail, how many
retries happen, and that every *untouched* session returns bit-identical
labels to a fault-free run.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.engine import CaceEngine
from repro.datasets import generate_cace_dataset, train_test_split
from repro.models.hmm import MacroHmm
from repro.obs import runtime as obs
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    DecodeFailure,
    DegradedLabels,
    DegradedStepFilter,
    FailureReport,
    Fault,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    SessionFailure,
    StepValidationError,
    corrupt_step,
    injected,
    prior_macro_label,
    stable_unit,
    validate_step,
)
from repro.resilience import faultinject
from repro.serve.router import SessionRouter


@pytest.fixture(autouse=True)
def _hermetic_faults(monkeypatch):
    """Scrub ambient fault plans (the CI chaos job exports a seed for the
    smoke scripts; these tests activate their own plans explicitly)."""
    monkeypatch.delenv(faultinject.ENV_PLAN, raising=False)
    monkeypatch.delenv(faultinject.ENV_SEED, raising=False)
    faultinject.deactivate()
    yield
    faultinject.deactivate()


@pytest.fixture(scope="module")
def corpus():
    dataset = generate_cace_dataset(
        n_homes=2, sessions_per_home=4, duration_s=900.0, seed=7
    )
    return train_test_split(dataset, 0.5, seed=9)


@pytest.fixture(scope="module")
def engine(corpus):
    train, _ = corpus
    return CaceEngine(strategy="c2", seed=11).fit(train)


@pytest.fixture(scope="module")
def fallback(corpus):
    train, _ = corpus
    return MacroHmm().fit(train)


@pytest.fixture(scope="module")
def reference(engine, corpus):
    """Fault-free batch decode everything else is compared against."""
    _, test = corpus
    return engine.predict_dataset(test)


def _keys(test):
    return [f"{seq.home_id}:{i}" for i, seq in enumerate(test.sequences)]


# -- retry policy ---------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.5)

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert DEFAULT_RETRY_POLICY.max_attempts == 3

    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().delay_s(1, "k") == 0.0

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(
            max_retries=6, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_max_s=0.5, jitter=0.0,
        )
        delays = [p.delay_s(a, "k") for a in range(2, 8)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert max(delays) <= 0.5

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(jitter=0.25, seed=3)
        base = RetryPolicy(jitter=0.0, seed=3)
        for key in ("a", "b", "c"):
            d1 = p.delay_s(2, key)
            assert d1 == p.delay_s(2, key)  # same key -> same jitter
            b = base.delay_s(2, key)
            assert b <= d1 <= b * 1.25 + 1e-12
        # different keys spread out
        assert len({p.delay_s(2, k) for k in "abcdef"}) > 1

    def test_stable_unit_range_and_determinism(self):
        values = [stable_unit(1, "x", i) for i in range(50)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [stable_unit(1, "x", i) for i in range(50)]
        assert stable_unit(1, "x") != stable_unit(2, "x")


# -- fault plans ----------------------------------------------------------------


class TestFaultPlan:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("meteor")
        with pytest.raises(ValueError):
            Fault("crash", times=0)

    def test_from_seed_is_deterministic_and_disjoint(self):
        keys = [f"s{i}" for i in range(10)]
        p1 = FaultPlan.from_seed(5, keys, n_crash=2, n_delay=3, n_error=2)
        p2 = FaultPlan.from_seed(5, keys, n_crash=2, n_delay=3, n_error=2)
        assert p1.to_json() == p2.to_json()
        assert len(p1.faults) == 7
        assert len(p1.keys_with("crash")) == 2
        assert len(p1.keys_with("delay")) == 3
        # a different seed shuffles the assignment
        p3 = FaultPlan.from_seed(6, keys, n_crash=2, n_delay=3, n_error=2)
        assert p1.to_json() != p3.to_json()

    def test_from_seed_rejects_overcommitment(self):
        with pytest.raises(ValueError):
            FaultPlan.from_seed(1, ["a", "b"], n_crash=3)

    def test_json_round_trip(self):
        plan = FaultPlan({"a": Fault("error", times=2), "b": Fault("delay")}, seed=4)
        back = FaultPlan.from_json(plan.to_json())
        assert back.to_json() == plan.to_json()
        assert back.fault_for("a") == Fault("error", times=2)
        assert back.fault_for("missing") is None

    def test_expected_failures_excludes_delays_and_recovered(self):
        plan = FaultPlan({
            "dead": Fault("error", times=3),
            "slow": Fault("delay", times=9),
            "flaky": Fault("crash", times=1),
        })
        assert plan.expected_failures(max_attempts=3) == ["dead"]

    def test_hashed_plan_is_deterministic_and_single_shot(self):
        plan = FaultPlan.hashed(86)
        kinds = {k: plan.fault_for(f"home:{k}") for k in range(200)}
        again = FaultPlan.hashed(86)
        assert kinds == {k: again.fault_for(f"home:{k}") for k in range(200)}
        hit = [f for f in kinds.values() if f is not None]
        assert hit, "a 200-key sample should draw some faults"
        assert all(f.times == 1 for f in hit)  # default retries always recover

    def test_current_plan_prefers_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv(faultinject.ENV_SEED, "86")
        env_plan = faultinject.current_plan()
        assert env_plan is not None
        explicit = FaultPlan({"a": Fault("error")})
        with injected(explicit):
            assert faultinject.current_plan() is explicit
        assert faultinject.current_plan() is not explicit

    def test_parent_process_crash_is_downgraded_to_exception(self):
        with injected(FaultPlan({"k": Fault("crash", times=5)})):
            with pytest.raises(InjectedFault) as exc:
                faultinject.maybe_inject("k", attempt=1)
            assert exc.value.kind == "crash"
            # past the fault's window: no-op
            faultinject.maybe_inject("k", attempt=6)


# -- corrupted steps ------------------------------------------------------------


class TestCorruptStep:
    def test_modes(self, corpus):
        _, test = corpus
        step = test.sequences[0].steps[0]
        nan = corrupt_step(step, mode="nan", seed=1)
        assert any(
            math.isnan(v)
            for o in nan.observations.values()
            for v in o.features
        )
        assert not corrupt_step(step, mode="empty").observations
        alien = corrupt_step(step, mode="alien", seed=2)
        assert set(alien.observations) != set(step.observations)

        def victims(s):
            return {
                r for r, o in s.observations.items()
                if any(math.isnan(v) for v in o.features)
            }

        # deterministic: the same seed always poisons the same resident
        assert victims(corrupt_step(step, mode="nan", seed=1)) == victims(nan)
        with pytest.raises(ValueError):
            corrupt_step(step, mode="werewolf")

    def test_validate_step_catches_each_mode(self, corpus):
        _, test = corpus
        seq = test.sequences[0]
        step = seq.steps[0]
        validate_step(step, seq.resident_ids)  # healthy step passes
        for mode in ("nan", "empty", "alien"):
            with pytest.raises(StepValidationError):
                validate_step(corrupt_step(step, mode=mode), seq.resident_ids)
        with pytest.raises(StepValidationError):
            validate_step("not a step")


# -- batch decode: serial -------------------------------------------------------


class TestSerialResilience:
    def test_clean_run_has_empty_report(self, engine, corpus, reference):
        assert engine.failure_report_ is not None
        assert engine.failure_report_.ok()
        assert engine.failure_report_.sessions_ok == len(reference)

    def test_partial_skips_exhausted_session_bit_identically(
        self, engine, corpus, reference
    ):
        _, test = corpus
        keys = _keys(test)
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.0, jitter=0.0)
        plan = FaultPlan({keys[0]: Fault("error", times=policy.max_attempts)})
        with injected(plan):
            out = engine.predict_dataset(test, retry=policy, partial=True)
        report = engine.failure_report_
        assert report.failed_keys() == [keys[0]]
        assert report.failures[0].kind == "error"
        assert report.failures[0].attempts == policy.max_attempts
        assert report.retries == policy.max_attempts - 1
        assert keys[0] not in out
        for key in keys[1:]:
            assert out[key] == reference[key]

    def test_exhausted_session_raises_without_partial(self, engine, corpus):
        _, test = corpus
        keys = _keys(test)
        plan = FaultPlan({keys[1]: Fault("error", times=99)})
        with injected(plan):
            with pytest.raises(DecodeFailure) as exc:
                engine.predict_dataset(test, retry=RetryPolicy(
                    max_retries=1, backoff_base_s=0.0))
        assert exc.value.report.failed_keys() == [keys[1]]

    def test_transient_error_recovers(self, engine, corpus, reference):
        _, test = corpus
        keys = _keys(test)
        plan = FaultPlan({keys[2]: Fault("error", times=1)})
        with injected(plan):
            out = engine.predict_dataset(
                test, retry=RetryPolicy(backoff_base_s=0.0, jitter=0.0))
        assert engine.failure_report_.ok()
        assert engine.failure_report_.retries == 1
        assert out == reference

    def test_serial_crash_is_survivable(self, engine, corpus, reference):
        _, test = corpus
        keys = _keys(test)
        plan = FaultPlan({keys[0]: Fault("crash", times=1)})
        with injected(plan):
            out = engine.predict_dataset(
                test, retry=RetryPolicy(backoff_base_s=0.0, jitter=0.0))
        assert engine.failure_report_.crashes == 1
        assert out == reference

    def test_timeout_accounting(self, engine, corpus):
        _, test = corpus
        keys = _keys(test)
        # The injected delay dwarfs a natural decode (a few ms for these
        # tiny sessions), so only the delayed session can overrun.
        plan = FaultPlan({keys[3]: Fault("delay", times=99, delay_s=0.6)})
        with injected(plan):
            out = engine.predict_dataset(
                test,
                timeout_s=0.3,
                retry=RetryPolicy(max_retries=1, backoff_base_s=0.0),
                partial=True,
            )
        report = engine.failure_report_
        assert report.failed_keys() == [keys[3]]
        assert report.failures[0].kind == "timeout"
        assert report.timeouts == 2  # both attempts overran
        assert keys[3] not in out

    def test_timeout_validation(self, engine, corpus):
        _, test = corpus
        with pytest.raises(ValueError):
            engine.predict_dataset(test, timeout_s=0.0)


# -- batch decode: worker pool --------------------------------------------------


class TestPooledResilience:
    def test_worker_crash_recovers_with_one_pool_replacement(
        self, engine, corpus, reference
    ):
        _, test = corpus
        keys = _keys(test)
        plan = FaultPlan({keys[1]: Fault("crash", times=1)})
        before_ships = engine.model_ship_count_
        with injected(plan):
            out = engine.predict_dataset(
                test,
                workers=2,
                retry=RetryPolicy(backoff_base_s=0.0, jitter=0.0),
            )
        engine.close()
        assert out == reference
        report = engine.failure_report_
        assert report.ok()
        assert report.crashes >= 1
        assert report.pool_replacements == 1
        assert engine.pool_replacements_ >= 1
        # the replacement pool re-shipped the model to its workers
        assert engine.model_ship_count_ == before_ships + 2

    def test_pooled_partial_reports_exhausted_sessions(
        self, engine, corpus, reference
    ):
        _, test = corpus
        keys = _keys(test)
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.0, jitter=0.0)
        plan = FaultPlan({keys[2]: Fault("error", times=policy.max_attempts)})
        with injected(plan):
            out = engine.predict_dataset(
                test, workers=2, retry=policy, partial=True)
        engine.close()
        assert engine.failure_report_.failed_keys() == [keys[2]]
        for key in keys:
            if key == keys[2]:
                assert key not in out
            else:
                assert out[key] == reference[key]

    def test_close_zeroes_pool_workers_gauge(self, engine, corpus):
        _, test = corpus
        obs.enable(metrics=True)
        obs.reset()
        try:
            engine.predict_dataset(test, workers=2)
            reg = obs.get_registry()
            assert reg.gauge("engine.pool_workers").value == 2
            engine.close()
            assert reg.gauge("engine.pool_workers").value == 0
        finally:
            engine.close()
            obs.disable()

    def test_obs_counters_match_report(self, engine, corpus):
        _, test = corpus
        keys = _keys(test)
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.0, jitter=0.0)
        plan = FaultPlan({
            keys[0]: Fault("error", times=policy.max_attempts),
            keys[3]: Fault("error", times=1),
        })
        obs.enable(metrics=True)
        obs.reset()
        try:
            with injected(plan):
                engine.predict_dataset(test, retry=policy, partial=True)
            report = engine.failure_report_
            reg = obs.get_registry()
            assert reg.counter("engine.retries").value == report.retries
            assert (
                reg.counter("engine.session_failures").value
                == len(report.failures)
            )
            assert reg.counter("engine.sessions_decoded").value == report.sessions_ok
        finally:
            obs.disable()


# -- failure report surface -----------------------------------------------------


class TestFailureReport:
    def test_round_trip_and_describe(self, tmp_path):
        report = FailureReport(
            failures=[SessionFailure("s1", "crash", 3, "boom")],
            retries=4, timeouts=1, crashes=2, pool_replacements=1, sessions_ok=7,
        )
        assert not report.ok()
        assert report.sessions_failed == 1
        d = report.to_dict()
        assert d["failures"][0]["key"] == "s1"
        path = tmp_path / "report.json"
        report.save(path)
        assert json.loads(path.read_text())["retries"] == 4
        assert "1 failed" in report.describe()


# -- streaming: degraded serving ------------------------------------------------


class TestDegradedServing:
    def test_prior_macro_label_for_both_families(self, engine, fallback, corpus):
        train, _ = corpus
        assert prior_macro_label(engine.model_) in train.macro_vocab
        assert prior_macro_label(fallback) in train.macro_vocab

    def test_degraded_filter_never_raises(self, engine, fallback, corpus):
        _, test = corpus
        seq = test.sequences[0]
        filt = DegradedStepFilter(
            engine.model_, seq.resident_ids, fallback=fallback)
        good = filt.push_step(seq.steps[0])
        assert isinstance(good, DegradedLabels)
        assert set(good) == set(seq.resident_ids)
        bad = filt.push_step(corrupt_step(seq.steps[1], mode="nan"))
        assert isinstance(bad, DegradedLabels)  # fell back to the prior
        assert filt.stats.steps == 2

    def test_degraded_labels_tag(self):
        labels = DegradedLabels({"r1": "cooking"})
        assert labels == {"r1": "cooking"}
        assert getattr(labels, "degraded", False)
        assert not getattr({"r1": "cooking"}, "degraded", False)


class TestRouterResilience:
    def _steps(self, corpus, n=16):
        _, test = corpus
        seq = test.sequences[0]
        return seq, list(seq.steps)[:n]

    def _healthy_replay(self, engine, steps):
        router = SessionRouter(engine, lag=3)
        base = [router.push("s", st) for st in steps]
        return base, router.close_session("s")

    def test_quarantine_on_corrupt_step(self, engine, fallback, corpus):
        seq, steps = self._steps(corpus)
        base, _ = self._healthy_replay(engine, steps)
        router = SessionRouter(engine, lag=3, fallback=fallback)
        out = []
        for i, st in enumerate(steps):
            out.append(router.push(
                "s", corrupt_step(st, mode="nan") if i == 8 else st))
        assert router.session("s").degraded
        assert router.quarantined == 1
        assert out[:8] == base[:8]  # healthy prefix untouched
        assert all(getattr(o, "degraded", False) for o in out[8:])
        final = router.close_session("s")
        for rid in seq.resident_ids:
            assert len(final[rid]) == len(steps)  # no step lost a label
        snap = router.metrics_snapshot()
        assert snap["router"]["quarantined"] == 1
        assert snap["metrics"]["router.degraded_steps"]["value"] == len(steps) - 8
        assert snap["metrics"]["router.steps_rejected"]["value"] == 1

    def test_smoother_exception_quarantines(self, engine, fallback, corpus):
        seq, steps = self._steps(corpus, n=8)
        router = SessionRouter(engine, lag=3, fallback=fallback)
        for st in steps[:5]:
            router.push("s", st)

        def boom(t):
            raise RuntimeError("kaboom")

        router.session("s").smoother.push = boom
        out = router.push("s", steps[5])
        assert getattr(out, "degraded", False)
        assert router.session("s").degraded
        final = router.close_session("s")
        for rid in seq.resident_ids:
            assert len(final[rid]) == 6

    def test_reset_policy_rebuilds_session(self, engine, corpus):
        _, steps = self._steps(corpus)
        router = SessionRouter(engine, lag=3, on_error="reset")
        for i, st in enumerate(steps):
            if i == 8:
                assert router.push(
                    "s", corrupt_step(st, mode="alien")) is None
            else:
                router.push("s", st)
        state = router.session("s")
        assert not state.degraded
        assert router.resets == 1
        assert state.pushed == len(steps) - 9  # buffer restarted after step 8
        router.close_session("s")

    def test_raise_policy_propagates(self, engine, corpus):
        _, steps = self._steps(corpus, n=4)
        router = SessionRouter(engine, lag=3, on_error="raise")
        router.push("s", steps[0])
        with pytest.raises(StepValidationError):
            router.push("s", corrupt_step(steps[1], mode="empty"))

    def test_invalid_on_error_rejected(self, engine):
        with pytest.raises(ValueError):
            SessionRouter(engine, on_error="panic")

    def test_invalid_opening_step_is_dropped(self, engine, corpus):
        _, steps = self._steps(corpus, n=2)
        router = SessionRouter(engine, lag=3)
        assert router.push("zz", corrupt_step(steps[0], mode="empty")) is None
        assert "zz" not in router

    def test_push_many_mid_batch_corruption(self, engine, fallback, corpus):
        _, steps = self._steps(corpus, n=12)
        base, _ = self._healthy_replay(engine, steps)
        router = SessionRouter(engine, lag=3, fallback=fallback)
        batch = list(steps)
        batch[6] = corrupt_step(batch[6], mode="nan")
        out = router.push_many("s", batch)
        assert len(out) == len(batch)
        assert out[:6] == base[:6]
        assert all(getattr(o, "degraded", False) for o in out[6:])
        assert router.session("s").pushed == len(batch)

    def test_push_many_healthy_matches_per_step(self, engine, corpus):
        _, steps = self._steps(corpus)
        base, base_final = self._healthy_replay(engine, steps)
        router = SessionRouter(engine, lag=3)
        assert router.push_many("s", steps) == base
        assert router.close_session("s") == base_final

    def test_degraded_without_fallback_uses_prior(self, engine, corpus):
        _, steps = self._steps(corpus, n=4)
        router = SessionRouter(engine, lag=3)
        router.push("s", steps[0])
        router.push("s", corrupt_step(steps[1], mode="nan"))
        out = router.push("s", steps[2])
        assert getattr(out, "degraded", False)
        prior = prior_macro_label(engine.model_)
        assert set(out.values()) == {prior}

    def test_describe_marks_degraded_sessions(self, engine, corpus):
        _, steps = self._steps(corpus, n=4)
        router = SessionRouter(engine, lag=3)
        router.push("a", steps[0])
        router.push("b", steps[0])
        router.push("b", corrupt_step(steps[1], mode="nan"))
        d = router.describe_dict()
        assert "degraded" not in d["sessions"]["a"]
        assert d["sessions"]["b"]["degraded"] is True
        assert d["degraded_sessions"] == 1


# -- acceptance: seeded chaos leaves untouched sessions bit-identical -----------


class TestChaosAcceptance:
    def test_env_seeded_plan_is_transparent_with_default_retries(
        self, engine, corpus, reference, monkeypatch
    ):
        """The CI chaos mode: REPRO_FAULT_SEED injects single-shot faults
        everywhere, default retries absorb them, results stay
        bit-identical and the report stays clean."""
        _, test = corpus
        monkeypatch.setenv(faultinject.ENV_SEED, "86")
        out = engine.predict_dataset(test)
        assert out == reference
        assert engine.failure_report_.ok()

    def test_planned_chaos_accounting_is_exact(self, engine, corpus, reference):
        _, test = corpus
        keys = _keys(test)
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.0, jitter=0.0)
        plan = FaultPlan.from_seed(
            86, keys, n_crash=1, n_delay=1, n_error=1, times=1, delay_s=0.01
        )
        doomed = next(k for k in keys if k not in plan.faults)
        plan.faults[doomed] = Fault("error", times=policy.max_attempts)
        assert plan.expected_failures(policy.max_attempts) == [doomed]
        with injected(plan):
            out = engine.predict_dataset(test, retry=policy, partial=True)
        report = engine.failure_report_
        assert report.failed_keys() == [doomed]
        for key in keys:
            if key == doomed:
                assert key not in out
            else:
                assert out[key] == reference[key]
