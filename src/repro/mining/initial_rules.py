"""User-supplied initial rules (the "Base application" of §VII-B).

The testbed ships a smartphone UI through which residents seed the system
with semantic correlation rules *before any data is collected* — e.g. "the
exercise-bike area hosts exercising".  Fig 12 shows these initial rules
lifting accuracy and cutting overhead in the low-data regime.  This module
provides that seed set, expressed in the same rule language the miners
emit, so the engine can merge them with mined rules.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.mining.context_rules import Item
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.mining.rules import AssociationRule, ExclusionRule


def _force(
    slot: str, antecedent: Sequence[Tuple[str, str]], macro: str
) -> AssociationRule:
    """Shorthand: same-slot antecedent elements => macro at time t."""
    items = frozenset(Item(slot, "t", attr, value) for attr, value in antecedent)
    return AssociationRule(
        antecedent=items,
        consequent=Item(slot, "t", "macro", macro),
        support=1.0,
        confidence=1.0,
    )


def table_iv_rules() -> List[AssociationRule]:
    """The forcing rules of Table IV, as a user would seed them.

    * ``U1(t): (cycling or sitting) & SR1 => exercising``
    * ``U1(t): (sitting or lying) & SR5 => sleeping``
    * ``U1(t): SR4 & U2(t): SR4 => dining (both)``
    """
    rules: List[AssociationRule] = []
    for slot in ("u1", "u2"):
        other = "u2" if slot == "u1" else "u1"
        for posture in ("cycling", "sitting"):
            rules.append(_force(slot, [("posture", posture), ("subloc", "SR1")], "exercising"))
        for posture in ("sitting", "lying"):
            rules.append(_force(slot, [("posture", posture), ("subloc", "SR5")], "sleeping"))
        # Joint dining: both at the dining table implies both dining.
        rules.append(
            AssociationRule(
                antecedent=frozenset(
                    [Item(slot, "t", "subloc", "SR4"), Item(other, "t", "subloc", "SR4")]
                ),
                consequent=Item(slot, "t", "macro", "dining"),
                support=1.0,
                confidence=1.0,
            )
        )
    return rules


def bathroom_exclusions() -> List[ExclusionRule]:
    """``U1(t): SR9 => U2(t): not SR9`` — single-occupancy bathroom."""
    return [
        ExclusionRule(
            a=Item("u1", "t", "subloc", "SR9"),
            b=Item("u2", "t", "subloc", "SR9"),
            support_a=1.0,
            support_b=1.0,
        )
    ]


def initial_rule_set() -> CorrelationRuleSet:
    """The full seed rule set a household would enter through the app."""
    return CorrelationRuleSet(
        forcing_rules=table_iv_rules(),
        exclusions=bathroom_exclusions(),
    )
