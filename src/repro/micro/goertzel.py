"""Goertzel algorithm: single-bin DFT power estimation.

The paper's 32-feature set includes "Goertzel coefficients of 1-5 Hz"; the
Goertzel algorithm evaluates the DFT at one target frequency in O(n) without
a full FFT, which is why it is popular on microcontroller-class wearables.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


def goertzel_power(signal: np.ndarray, sample_rate_hz: float, target_hz: float) -> float:
    """Normalised signal power at *target_hz*.

    Runs the classic second-order Goertzel recurrence and returns
    ``|X(f)|^2 / n^2`` so values are comparable across frame lengths.
    """
    check_positive("sample_rate_hz", sample_rate_hz)
    if target_hz < 0 or target_hz > sample_rate_hz / 2:
        raise ValueError(
            f"target_hz must be in [0, {sample_rate_hz / 2}] (Nyquist), got {target_hz}"
        )
    x = np.asarray(signal, dtype=float).ravel()
    n = x.size
    if n == 0:
        raise ValueError("signal must be non-empty")

    # Nearest DFT bin to the target frequency.
    k = int(round(n * target_hz / sample_rate_hz))
    omega = 2.0 * np.pi * k / n
    coeff = 2.0 * np.cos(omega)

    s_prev = 0.0
    s_prev2 = 0.0
    for sample in x:
        s = sample + coeff * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    power = s_prev2**2 + s_prev**2 - coeff * s_prev * s_prev2
    return float(power / (n * n))


def goertzel_spectrum(
    signal: np.ndarray, sample_rate_hz: float, frequencies_hz: np.ndarray
) -> np.ndarray:
    """Goertzel power at each frequency in *frequencies_hz*."""
    return np.array(
        [goertzel_power(signal, sample_rate_hz, float(f)) for f in np.asarray(frequencies_hz)]
    )
