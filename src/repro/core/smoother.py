"""Online fixed-lag smoothing over the coupled HDBN.

The paper's conclusion argues "CACE model can be used as a smoother of any
online complex activity recognition framework": instead of decoding a full
recorded session offline (Viterbi), contexts arrive one step at a time and
each label must be committed within a bounded latency.

:class:`OnlineSmoother` runs the coupled model's forward recursion
incrementally and commits the label for step ``t - lag`` when step ``t``
arrives, using a backward sweep restricted to the lag window (fixed-lag
smoothing).  With ``lag >= len(seq)`` the committed labels equal the full
forward-backward marginals' argmax; small lags trade a little accuracy for
bounded latency and O(lag) memory.

``push`` performs the same :class:`~repro.core.chdbn.DecodeStats`
accounting as offline decoding (steps, surviving joint states, evaluated
transition entries, pruned/capped counts), so streaming overhead reports
match the Fig 11 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.chdbn import CoupledHdbn, _lse
from repro.datasets.trace import LabeledSequence

_TINY = 1e-12


@dataclass
class OnlineSmoother:
    """Fixed-lag smoother over a fitted :class:`CoupledHdbn`.

    Parameters
    ----------
    model:
        A fitted coupled model (its miners/emissions are reused unchanged).
    lag:
        Commit latency in steps; 0 gives pure filtering (commit on arrival).
    """

    model: CoupledHdbn
    lag: int = 4
    _seq: Optional[LabeledSequence] = field(default=None, init=False, repr=False)
    _rids: Tuple[str, ...] = field(default=(), init=False)
    _pieces: List[tuple] = field(default_factory=list, init=False, repr=False)
    _alphas: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    _committed: int = field(default=0, init=False)

    def start(self, seq: LabeledSequence) -> None:
        """Begin a session; steps are then consumed with :meth:`push`."""
        if self.lag < 0:
            raise ValueError(f"lag must be >= 0, got {self.lag}")
        rids = tuple(seq.resident_ids[:2])
        if len(rids) < 2:
            raise ValueError("OnlineSmoother expects a resident pair")
        self._seq = seq
        self._rids = rids
        self._pieces = []
        self._alphas = []
        self._committed = 0
        self.model.last_stats = type(self.model.last_stats)()

    # -- incremental consumption -------------------------------------------------

    def push(self, t: int) -> Optional[Dict[str, str]]:
        """Consume step *t*; returns the labels committed for step
        ``t - lag`` (None while the window is still filling)."""
        if self._seq is None:
            raise RuntimeError("call start() before push()")
        if t != len(self._pieces):
            raise ValueError(f"steps must arrive in order; expected {len(self._pieces)}, got {t}")
        model = self.model
        seq = self._seq
        c1 = model._user_candidates(seq, self._rids[0], t)
        c2 = model._user_candidates(seq, self._rids[1], t)
        i1, i2, scores = model._joint_candidates(seq, t, c1, c2, self._rids)
        enc = model._encode(c1, c2, i1, i2)
        self._pieces.append((c1, c2, i1, i2, scores, enc))
        # Mirror CoupledHdbn._prepare / decode accounting so streaming
        # overhead reports are as meaningful as offline ones (pruned /
        # capped joint states are counted inside _joint_candidates).
        stats = model.last_stats
        stats.steps += 1
        stats.joint_states += len(i1)

        cm = model.constraint_model
        if t == 0:
            alpha = (
                np.log(cm.macro_prior[enc[0]] + _TINY)
                + model._log_subloc_prior[enc[0], enc[1]]
                + np.log(cm.macro_prior[enc[2]] + _TINY)
                + model._log_subloc_prior[enc[2], enc[3]]
                + scores
            )
        else:
            prev_enc = self._pieces[t - 1][5]
            log_t = model._transition_block(prev_enc, enc)
            stats.transition_entries += log_t.size
            alpha = scores + _lse(self._alphas[-1][:, None] + log_t, axis=0)
        self._alphas.append(alpha)

        commit_t = t - self.lag
        if commit_t < 0:
            return None
        labels = self._smooth_at(commit_t, t)
        self._committed = commit_t + 1
        return labels

    def flush(self) -> List[Dict[str, str]]:
        """Commit every step still inside the lag window (session end)."""
        if self._seq is None:
            return []
        last = len(self._pieces) - 1
        out = []
        for t in range(self._committed, len(self._pieces)):
            out.append(self._smooth_at(t, last))
        self._committed = len(self._pieces)
        return out

    def run(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Convenience: stream a whole session, return per-resident labels."""
        self.start(seq)
        per_step: List[Dict[str, str]] = []
        for t in range(len(seq)):
            committed = self.push(t)
            if committed is not None:
                per_step.append(committed)
        per_step.extend(self.flush())
        return {
            rid: [labels[rid] for labels in per_step] for rid in self._rids
        }

    # -- lag-window smoothing ------------------------------------------------------

    def _smooth_at(self, commit_t: int, horizon: int) -> Dict[str, str]:
        """Argmax smoothed macro per resident for *commit_t* given steps
        up to *horizon*."""
        model = self.model
        beta = np.zeros_like(self._alphas[horizon])
        for t in range(horizon - 1, commit_t - 1, -1):
            enc = self._pieces[t][5]
            nxt_scores, nxt_enc = self._pieces[t + 1][4], self._pieces[t + 1][5]
            log_t = model._transition_block(enc, nxt_enc)
            beta = _lse(log_t + (nxt_scores + beta)[None, :], axis=1)

        log_gamma = self._alphas[commit_t] + beta
        log_gamma = log_gamma - _lse(log_gamma, axis=0)
        gamma = np.exp(log_gamma)
        enc = self._pieces[commit_t][5]
        cm = model.constraint_model
        out: Dict[str, str] = {}
        for rid, m_enc in ((self._rids[0], enc[0]), (self._rids[1], enc[2])):
            marg = np.zeros(cm.n_macro)
            np.add.at(marg, m_enc, gamma)
            out[rid] = cm.macro_index.label(int(np.argmax(marg)))
        return out
