"""Lightweight nested-span tracing for the decode hot path.

A :class:`Tracer` records wall-clock spans (decode, kernel ``prepare``,
trellis sweep, smoother backward pass) as a tree per thread; finished
root spans land in a bounded ring buffer for inspection or JSON export.

Tracing is off by default and the disabled path is engineered to cost
~nothing: :data:`NULL_SPAN` is one shared context manager whose
``__enter__``/``__exit__`` do no work, so an instrumented call site pays
a flag check and nothing else (the <3% instrumentation-overhead
invariant is asserted by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional


class Span:
    """One timed region; children are spans opened while it was active."""

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, attrs: Optional[Dict] = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start = 0.0
        self.duration = 0.0
        self.children: List["Span"] = []

    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name, "duration_s": self.duration}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, {len(self.children)} children)"


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: The single no-op instance every disabled call site shares.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager pushing/popping one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Collects nested spans per thread; finished roots in a ring buffer.

    Parameters
    ----------
    max_roots:
        Bound on retained finished root spans (oldest evicted first), so
        a long-running server can leave tracing on without growing
        memory unboundedly.
    """

    def __init__(self, max_roots: int = 256) -> None:
        self._roots: Deque[Span] = deque(maxlen=max_roots)
        self._local = threading.local()
        self._lock = threading.Lock()

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; nests under the thread's active span, if any."""
        return _ActiveSpan(self, Span(name, attrs or None))

    # -- stack maintenance ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        span.start = time.perf_counter()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        stack = self._stack()
        # Tolerate exotic unwind orders: pop through to our own span.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- inspection ----------------------------------------------------------------

    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def to_dict(self) -> List[Dict]:
        """JSON-ready list of finished root span trees."""
        return [span.to_dict() for span in self.roots()]

    def reset(self) -> None:
        """Drop all finished roots (active stacks are left alone)."""
        with self._lock:
            self._roots.clear()
