"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment``
    Regenerate one of the paper's tables/figures and print its rows
    (``table4``, ``table5``, ``fig8a``, ``fig8b``, ``fig9``, ``fig10``,
    ``fig11``, ``fig12``, ``micro``), or run the decode-throughput
    comparison (``hotpath``: optimised vs seed hot path, steps/sec).
``generate``
    Produce a synthetic corpus (``cace`` or ``casas``) and write it as
    JSON for later runs.
``mine``
    Mine correlation rules from a stored corpus and save/print them.
``fit``
    Train an engine on a stored corpus and save it as a versioned model
    artifact (``repro.model/1`` JSON).
``recognize``
    Train on one stored corpus, decode another (or a held-out split), and
    report accuracy metrics.  With ``--model ART`` a saved artifact is
    served instead of training, and ``--stream`` decodes through the
    serving facade's per-session fixed-lag smoothers (``--lag``).

Every command accepts ``--seed`` for reproducibility; workloads default to
small sizes so a laptop run finishes in seconds to minutes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.util.rng import ensure_rng

#: experiment name -> (callable path, default kwargs)
_EXPERIMENTS = {
    "micro": ("micro_level_results", {}),
    "table4": ("table4_rules", {}),
    "table5": ("table5_duration_error", {}),
    "fig8a": ("fig8a_context_ablation", {}),
    "fig8b": ("fig8b_cost_curves", {}),
    "fig9": ("fig9_casas_per_class", {}),
    "fig10": ("fig10_model_comparison", {}),
    "fig11": ("fig11_pruning_strategies", {}),
    "fig12": ("fig12_incremental", {}),
    "hotpath": ("decode_hotpath_benchmark", {}),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CACE (ICDCS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--seed", type=int, default=7)
    exp.add_argument("--homes", type=int, default=None, help="CACE homes / CASAS pairs")
    exp.add_argument("--sessions", type=int, default=None)
    exp.add_argument("--duration", type=float, default=None, help="session seconds")

    gen = sub.add_parser("generate", help="generate a synthetic corpus as JSON")
    gen.add_argument("corpus", choices=["cace", "casas"])
    gen.add_argument("output", help="output JSON path")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--homes", type=int, default=3, help="CACE homes / CASAS pairs")
    gen.add_argument("--sessions", type=int, default=4)
    gen.add_argument("--duration", type=float, default=3600.0)
    gen.add_argument("--residents", type=int, default=2, help="residents per CACE home")

    mine = sub.add_parser("mine", help="mine correlation rules from a stored corpus")
    mine.add_argument("corpus", help="corpus JSON path")
    mine.add_argument("--output", help="rule-set JSON path (prints rules otherwise)")
    mine.add_argument("--min-support", type=float, default=0.04)
    mine.add_argument("--min-confidence", type=float, default=0.99)

    fit = sub.add_parser("fit", help="train an engine, save a model artifact")
    fit.add_argument("corpus", help="training corpus JSON path")
    fit.add_argument("output", help="model artifact JSON path")
    fit.add_argument("--strategy", choices=["nh", "ncr", "ncs", "c2"], default="c2")
    fit.add_argument("--min-support", type=float, default=0.04)
    fit.add_argument("--min-confidence", type=float, default=0.99)
    fit.add_argument("--seed", type=int, default=7)

    rec = sub.add_parser("recognize", help="train + evaluate on a stored corpus")
    rec.add_argument("corpus", help="corpus JSON path")
    rec.add_argument("--strategy", choices=["nh", "ncr", "ncs", "c2"], default="c2")
    rec.add_argument("--train-fraction", type=float, default=0.7)
    rec.add_argument("--seed", type=int, default=7)
    rec.add_argument(
        "--model",
        help="saved model artifact; serves it on the whole corpus instead of training",
    )
    rec.add_argument(
        "--stream",
        action="store_true",
        help="decode via the serving facade's fixed-lag smoothers (needs --model)",
    )
    rec.add_argument(
        "--lag", type=int, default=4, help="smoothing lag in steps for --stream"
    )
    rec.add_argument(
        "--metrics-out",
        help="enable observability and write a metrics snapshot JSON "
        "(decode latency histograms, smoother cache hit rate, session "
        "gauges, run provenance) to this path",
    )
    rec.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the offline --model batch decode",
    )
    rec.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-session decode timeout in seconds (--model)",
    )
    rec.add_argument(
        "--retries",
        type=int,
        default=None,
        help="max retries per failed session (--model; default 2)",
    )
    rec.add_argument(
        "--partial",
        action="store_true",
        help="serve what succeeded: evaluate completed sessions and report "
        "the failures instead of erroring out (--model)",
    )
    rec.add_argument(
        "--failures-out",
        help="write the batch FailureReport JSON to this path (--model)",
    )

    return parser


def _run_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments as exp_mod

    func_name, defaults = _EXPERIMENTS[args.name]
    func = getattr(exp_mod, func_name)
    kwargs = dict(defaults)
    kwargs["seed"] = args.seed
    if args.name == "fig9":
        if args.homes is not None:
            kwargs["n_pairs"] = args.homes
        if args.sessions is not None:
            kwargs["sessions_per_pair"] = args.sessions
    elif args.name != "micro":
        if args.homes is not None:
            kwargs["n_homes"] = args.homes
        if args.sessions is not None:
            kwargs["sessions_per_home"] = args.sessions
        if args.duration is not None:
            kwargs["duration_s"] = args.duration
    result = func(**kwargs)
    print(result.render())
    return 0


def _run_generate(args: argparse.Namespace) -> int:
    from repro.util.serialization import save_dataset

    if args.corpus == "cace":
        from repro.datasets.cace import generate_cace_dataset

        dataset = generate_cace_dataset(
            n_homes=args.homes,
            sessions_per_home=args.sessions,
            duration_s=args.duration,
            residents_per_home=args.residents,
            seed=args.seed,
        )
    else:
        from repro.datasets.casas import generate_casas_dataset

        dataset = generate_casas_dataset(
            n_pairs=args.homes,
            sessions_per_pair=args.sessions,
            seed=args.seed,
        )
    save_dataset(dataset, args.output)
    print(
        f"wrote {dataset.name}: {len(dataset.sequences)} sequences, "
        f"{dataset.total_steps} steps -> {args.output}"
    )
    return 0


def _run_mine(args: argparse.Namespace) -> int:
    from repro.mining.correlation_miner import CorrelationMiner
    from repro.util.serialization import load_dataset, save_rule_set

    dataset = load_dataset(args.corpus)
    miner = CorrelationMiner(
        min_support=args.min_support, min_confidence=args.min_confidence
    )
    rule_set = miner.mine(dataset.sequences)
    if args.output:
        save_rule_set(rule_set, args.output)
        print(f"wrote {rule_set.n_rules} rules -> {args.output}")
    else:
        print(rule_set.describe(limit=40))
        print(f"({rule_set.n_rules} rules total)")
    return 0


def _run_fit(args: argparse.Namespace) -> int:
    from repro.core.engine import CaceEngine
    from repro.util.serialization import load_dataset

    dataset = load_dataset(args.corpus)
    engine = CaceEngine(
        strategy=args.strategy,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        seed=args.seed,
    )
    engine.fit(dataset)
    engine.save(args.output)
    print(
        f"fitted on {len(dataset.sequences)} sequences in "
        f"{engine.build_seconds:.2f}s -> {args.output}"
    )
    print(engine.describe())
    return 0


def _derived_metrics(registry) -> dict:
    """Rates derived from raw counters (matches ``metrics_snapshot``)."""
    computed = registry.counter("smoother.trans_blocks_computed").value
    reused = registry.counter("smoother.trans_blocks_reused").value
    total = computed + reused
    return {"smoother_trans_cache_hit_rate": (reused / total) if total else 0.0}


def _write_metrics_snapshot(path: str, snapshot: dict) -> None:
    """Write an observability snapshot (plus run provenance) as JSON."""
    import json

    from repro.obs import provenance

    payload = dict(snapshot)
    payload["provenance"] = provenance()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote metrics snapshot -> {path}")


def _run_serve_artifact(args: argparse.Namespace) -> int:
    """``recognize --model``: evaluate a saved artifact on a whole corpus."""
    from repro.core.engine import CaceEngine
    from repro.eval.experiments import _flatten_predictions
    from repro.eval.metrics import evaluate_predictions
    from repro.util.serialization import load_dataset

    if args.metrics_out:
        from repro.obs import runtime as obs_runtime

        obs_runtime.enable(metrics=True)
    dataset = load_dataset(args.corpus)
    engine = CaceEngine.load(args.model)
    router = None
    if args.stream:
        from repro.serve import SessionRouter

        router = SessionRouter(engine, lag=args.lag)

        def predict(seq):
            sid = f"{seq.home_id}:{id(seq)}"
            for step in seq.steps:
                router.push(sid, step)
            return router.close_session(sid)

        truth, predicted = _flatten_predictions(dataset, predict)
    else:
        # Offline serving goes through the fault-tolerant batch decode so
        # --workers/--timeout/--retries/--partial all apply.
        from repro.resilience import DecodeFailure, RetryPolicy

        retry = None
        if args.retries is not None:
            retry = RetryPolicy(max_retries=args.retries)
        try:
            results = engine.predict_dataset(
                dataset,
                workers=args.workers,
                timeout_s=args.timeout,
                retry=retry,
                partial=args.partial,
            )
        except DecodeFailure as exc:
            print(exc.report.describe(), file=sys.stderr)
            if args.failures_out:
                exc.report.save(args.failures_out)
                print(f"wrote failure report -> {args.failures_out}")
            return 1
        freport = engine.failure_report_
        truth, predicted = [], []
        for i, seq in enumerate(dataset.sequences):
            pred = results.get(f"{seq.home_id}:{i}")
            if pred is None:  # failed session, skipped under --partial
                continue
            for rid in seq.resident_ids:
                truth.extend(seq.macro_labels(rid))
                predicted.extend(pred[rid])
        if freport is not None and not freport.ok():
            print(freport.describe(), file=sys.stderr)
        if args.failures_out and freport is not None:
            freport.save(args.failures_out)
            print(f"wrote failure report -> {args.failures_out}")
    report = evaluate_predictions(truth, predicted, list(dataset.macro_vocab))
    print(report.render())
    mode = f"streamed (lag={args.lag})" if args.stream else "offline"
    print(f"{mode} with {engine.describe()}")
    if args.metrics_out:
        if router is not None:
            _write_metrics_snapshot(args.metrics_out, router.metrics_snapshot())
        else:
            from repro.obs import runtime as obs_runtime

            registry = obs_runtime.get_registry()
            _write_metrics_snapshot(
                args.metrics_out,
                {
                    "derived": _derived_metrics(registry),
                    "metrics": registry.snapshot(),
                },
            )
    return 0


def _run_recognize(args: argparse.Namespace) -> int:
    from repro.core.engine import CaceEngine
    from repro.datasets.trace import train_test_split
    from repro.eval.experiments import evaluate_engine
    from repro.util.serialization import load_dataset

    if args.stream and not args.model:
        print("--stream requires --model", file=sys.stderr)
        return 2
    if args.model:
        return _run_serve_artifact(args)
    if args.metrics_out:
        from repro.obs import runtime as obs_runtime

        obs_runtime.enable(metrics=True)
    dataset = load_dataset(args.corpus)
    rng = ensure_rng(args.seed)
    train, test = train_test_split(
        dataset, args.train_fraction, seed=rng.integers(0, 2**31)
    )
    engine = CaceEngine(strategy=args.strategy, seed=rng.integers(0, 2**31))
    engine.fit(train)
    report = evaluate_engine(engine, test)
    print(report.render())
    print(
        f"build {engine.build_seconds:.2f}s, decode {engine.decode_seconds:.2f}s "
        f"({args.strategy} on {len(test.sequences)} test sequences)"
    )
    if args.metrics_out:
        from repro.obs import runtime as obs_runtime

        registry = obs_runtime.get_registry()
        _write_metrics_snapshot(
            args.metrics_out,
            {"derived": _derived_metrics(registry), "metrics": registry.snapshot()},
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "experiment": _run_experiment,
        "generate": _run_generate,
        "mine": _run_mine,
        "fit": _run_fit,
        "recognize": _run_recognize,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
