"""Wall-clock timing used for the paper's computational-overhead metrics.

The paper reports "total time required to build entire model" (Fig 11b);
:class:`Stopwatch` accumulates named phases so experiments can report both
per-phase and total overhead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Accumulates elapsed wall-clock time across named phases."""

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; repeated phases accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self.phases.values())

    def report(self) -> str:
        """Human-readable per-phase breakdown."""
        lines = [f"{name}: {secs:.4f}s" for name, secs in sorted(self.phases.items())]
        lines.append(f"total: {self.total:.4f}s")
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[list]:
    """Context manager yielding a single-element list filled with elapsed seconds.

    >>> with timed() as elapsed:
    ...     _ = sum(range(1000))
    >>> elapsed[0] >= 0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
