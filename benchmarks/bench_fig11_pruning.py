"""Bench: Fig 11 — accuracy and computational overhead per strategy.

Paper: accuracy NH 76.2 / NCR 73 / NCS ~98 / C2 ~95; overhead NH 4.95s /
NCR 1.5s / NCS 15.96s / C2 0.96s => ~16x NCS/C2 reduction.  Absolute
timings differ from the 700 MHz PogoPlug; the orderings and the NCS >> C2
overhead gap are the reproduced shape.
"""

from benchmarks.conftest import record, workload
from repro.eval.experiments import fig11_pruning_strategies


def test_fig11_pruning_strategies(benchmark):
    params = workload()
    result = benchmark.pedantic(
        fig11_pruning_strategies,
        kwargs={
            "n_homes": params["n_homes"],
            "sessions_per_home": params["sessions_per_home"],
            "duration_s": params["duration_s"],
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("fig11", result.render())
    r = result.results
    # Accuracy shape: coupled hierarchical models beat the naive ones.
    assert r["c2"].accuracy > r["nh"].accuracy
    assert r["c2"].accuracy > r["ncr"].accuracy
    # Overhead shape: the unpruned coupled trellis is the most expensive,
    # and correlation pruning collapses the joint state space (the paper's
    # 16x mechanism; wall-clock gain depends on how much of the runtime the
    # trellis dominates on this host).
    assert r["ncs"].overhead_seconds > r["c2"].overhead_seconds
    assert result.state_space_ratio_ncs_over_c2 > 3.0
    # Duration-error shape (Table V): constraint models << naive models.
    assert r["c2"].duration_error < r["nh"].duration_error
    assert r["ncs"].duration_error < r["ncr"].duration_error
