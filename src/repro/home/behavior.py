"""Coupled multi-resident behaviour engine.

Generates ground-truth activity timelines for the residents of one home.
The engine is *joint*: residents' schedules influence each other, planting
exactly the behavioural structure the paper's miners must rediscover:

* **Shared activities** (Proposition 4): when one resident dines / watches
  TV / sleeps, the partner is boosted toward joining.
* **Exclusive locations** (Proposition 2): the bathroom admits one resident;
  the other defers ``bathrooming`` while it is occupied.
* **Postural continuity** (Proposition 1's micro correlations): posture
  changes traverse a physical adjacency graph (lying -> sitting -> standing
  -> walking), so "sitting at t, walking at t+1" never occurs without an
  intervening standing slice.
* **Routine ordering** (Proposition 3): cooking/prepare_food boost a
  subsequent dining; dining suppresses immediate exercising.

The engine emits macro segments, each expanded into micro slices
(posture, gesture, sub-location over time).  Transitions between macro
activities pass through short ``random`` walking segments, matching the
paper's labelling convention for interleaved/transition periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.home.activities import (
    ActivityProfile,
    MACRO_ACTIVITIES,
    activity_profile,
)
from repro.home.layout import ApartmentLayout, default_layout
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive

#: Physical adjacency of postures: changes must follow graph edges.
_POSTURE_GRAPH = nx.Graph(
    [
        ("walking", "standing"),
        ("standing", "sitting"),
        ("sitting", "lying"),
        ("standing", "cycling"),
    ]
)

#: Baseline preference weight of each macro activity in a morning session.
_BASE_WEIGHTS: Dict[str, float] = {
    "sleeping": 1.1,
    "bathrooming": 1.3,
    "prepare_clothes": 1.0,
    "prepare_food": 1.2,
    "cooking": 1.2,
    "dining": 1.4,
    # The collection protocol asked every participant to work through the
    # ten activities each morning; morning exercise is a fixture, and its
    # Table IV rule needs >= 4% step support to clear the Apriori floor.
    "exercising": 1.6,
    "watching_tv": 1.3,
    "studying": 1.1,
    "past_times": 1.0,
}

#: Activities that boost a *follow-up* activity for the same resident.
_FOLLOW_UPS: Dict[str, Dict[str, float]] = {
    "cooking": {"dining": 5.0},
    "prepare_food": {"dining": 4.0},
    "sleeping": {"bathrooming": 2.5},
    "dining": {"watching_tv": 1.8, "past_times": 1.5, "exercising": 0.05},
    "exercising": {"bathrooming": 2.0},
}

#: How strongly a partner's ongoing shareable activity attracts a resident.
#: Multiplier on a shareable activity's weight while the partner is doing
#: it.  Calibrated so joint dining covers >= ~5% of morning steps (paper
#: households take breakfast together most days; Table IV's joint-dining
#: rule needs 4% support to clear the Apriori floor).
_JOIN_BOOST = 11.0


@dataclass(frozen=True)
class MicroSlice:
    """A span of constant micro context: posture + gesture + sub-location."""

    start: float
    end: float
    posture: str
    gesture: str
    subloc: str

    @property
    def duration(self) -> float:
        """Slice length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class MacroSegment:
    """One macro-activity episode with its micro expansion."""

    activity: str
    start: float
    end: float
    slices: Tuple[MicroSlice, ...]

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start


@dataclass
class BehaviorEngine:
    """Samples coupled ground-truth timelines for one home's residents.

    Parameters
    ----------
    layout:
        Apartment geometry (for sub-location identities).
    routine_weights:
        Per-resident activity preference multipliers; per-home personality.
        Missing entries default to 1.0.
    slice_range_s:
        Min/max length of a constant micro-context slice.
    join_prob_scale:
        Scales the shareable-activity attraction (1.0 = paper-like homes).
    """

    layout: ApartmentLayout = field(default_factory=default_layout)
    routine_weights: Optional[Dict[str, Dict[str, float]]] = None
    slice_range_s: Tuple[float, float] = (8.0, 25.0)
    join_prob_scale: float = 1.0
    profiles: Optional[Dict[str, ActivityProfile]] = None
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("join_prob_scale", self.join_prob_scale)
        self._rng = ensure_rng(self.seed)

    def profile(self, activity: str) -> ActivityProfile:
        """Profile lookup honouring a custom profile table (CASAS tasks)."""
        if self.profiles is not None and activity in self.profiles:
            return self.profiles[activity]
        return activity_profile(activity)

    # -- public API -----------------------------------------------------------

    def generate_session(
        self, resident_ids: Sequence[str], duration_s: float = 7200.0
    ) -> Dict[str, List[MacroSegment]]:
        """Generate one session (default: the paper's ~2 h morning recording).

        Returns a mapping resident id -> time-ordered macro segments covering
        ``[0, duration_s]`` (the final segment is truncated at the horizon).
        """
        check_positive("duration_s", duration_s)
        if len(resident_ids) < 1:
            raise ValueError("need at least one resident")

        timelines: Dict[str, List[MacroSegment]] = {rid: [] for rid in resident_ids}
        clocks: Dict[str, float] = {rid: 0.0 for rid in resident_ids}
        current: Dict[str, Optional[str]] = {rid: None for rid in resident_ids}
        history: Dict[str, List[str]] = {rid: [] for rid in resident_ids}
        postures: Dict[str, str] = {rid: "lying" for rid in resident_ids}

        while min(clocks.values()) < duration_s:
            # Advance the resident whose clock is furthest behind.
            rid = min(clocks, key=lambda r: clocks[r])
            t = clocks[rid]
            partner_acts = [current[o] for o in resident_ids if o != rid]
            bathroom_busy = self._bathroom_occupied(rid, t, timelines, resident_ids)

            activity = self._choose_activity(rid, history[rid], partner_acts, bathroom_busy)
            profile = self.profile(activity)
            duration = self._sample_duration(profile)
            duration = min(duration, duration_s - t)
            if duration <= 0:
                clocks[rid] = duration_s
                continue

            # Insert a short transition segment when the location changes.
            prev_segments = timelines[rid]
            if prev_segments and activity != "random":
                prev_loc = prev_segments[-1].slices[-1].subloc
                new_loc = self._primary_subloc(profile)
                if prev_loc != new_loc:
                    trans_len = float(min(self._rng.uniform(20, 60), duration_s - t))
                    if trans_len > 4.0:
                        seg, postures[rid] = self._expand_segment(
                            "random", t, t + trans_len, postures[rid]
                        )
                        timelines[rid].append(seg)
                        t += trans_len
                        duration = min(duration, duration_s - t)
                        if duration <= 0:
                            clocks[rid] = duration_s
                            current[rid] = "random"
                            continue

            segment, postures[rid] = self._expand_segment(activity, t, t + duration, postures[rid])
            timelines[rid].append(segment)
            clocks[rid] = t + duration
            current[rid] = activity
            history[rid].append(activity)

        return timelines

    # -- scheduling internals ---------------------------------------------------

    def _weights_for(self, rid: str) -> Dict[str, float]:
        weights = dict(_BASE_WEIGHTS)
        if self.routine_weights and rid in self.routine_weights:
            for activity, mult in self.routine_weights[rid].items():
                weights[activity] = weights.get(activity, 1.0) * mult
        return weights

    def _choose_activity(
        self,
        rid: str,
        history: List[str],
        partner_acts: List[Optional[str]],
        bathroom_busy: bool,
    ) -> str:
        weights = self._weights_for(rid)
        last = history[-1] if history else None

        scores: Dict[str, float] = {}
        for activity in MACRO_ACTIVITIES:
            if activity == "random":
                continue  # transitions are inserted explicitly
            w = weights.get(activity, 1.0)
            if activity == last:
                w *= 0.05  # rarely repeat immediately
            if activity in history:
                w *= 0.3  # morning routines rarely loop
            if last and last in _FOLLOW_UPS:
                w *= _FOLLOW_UPS[last].get(activity, 1.0)
            profile = self.profile(activity)
            if profile.exclusive and bathroom_busy:
                w = 0.0
            # Shareable attraction toward the partner's current activity.
            for partner in partner_acts:
                if partner == activity and profile.shareable:
                    w *= _JOIN_BOOST * self.join_prob_scale
                if partner == "sleeping" and activity == "exercising":
                    w *= 0.2  # don't wake the partner (constraint flavour)
            scores[activity] = w

        labels = list(scores)
        probs = np.array([scores[a] for a in labels], dtype=float)
        if probs.sum() <= 0:
            return "past_times"
        probs /= probs.sum()
        return str(self._rng.choice(labels, p=probs))

    def _sample_duration(self, profile: ActivityProfile) -> float:
        lo, hi = profile.duration_range_s
        return float(np.exp(self._rng.uniform(np.log(lo), np.log(hi))))

    def _bathroom_occupied(
        self,
        rid: str,
        t: float,
        timelines: Dict[str, List[MacroSegment]],
        resident_ids: Sequence[str],
    ) -> bool:
        for other in resident_ids:
            if other == rid:
                continue
            for seg in timelines[other]:
                if seg.activity == "bathrooming" and seg.start <= t < seg.end:
                    return True
        return False

    # -- micro expansion ---------------------------------------------------------

    def _primary_subloc(self, profile: ActivityProfile) -> str:
        return max(profile.sublocations, key=lambda k: profile.sublocations[k])

    def _sample_from(self, dist: Dict[str, float]) -> str:
        labels = list(dist)
        probs = np.array([dist[k] for k in labels], dtype=float)
        probs /= probs.sum()
        return str(self._rng.choice(labels, p=probs))

    def expand_segment(
        self, activity: str, start: float, end: float, entry_posture: str = "standing"
    ) -> Tuple[MacroSegment, str]:
        """Public alias of :meth:`_expand_segment` for scripted schedulers."""
        return self._expand_segment(activity, start, end, entry_posture)

    def _expand_segment(
        self, activity: str, start: float, end: float, entry_posture: str
    ) -> Tuple[MacroSegment, str]:
        """Expand a macro episode into micro slices; returns exit posture."""
        profile = self.profile(activity)
        slices: List[MicroSlice] = []
        t = start
        posture = entry_posture
        subloc = self._sample_from(profile.sublocations)

        while t < end - 1e-9:
            target_posture = self._sample_from(profile.postural)
            # Route through the posture adjacency graph with brief
            # intermediate slices (the paper's intra-user micro correlation).
            path = nx.shortest_path(_POSTURE_GRAPH, posture, target_posture)
            for step_posture in path[1:-1] if len(path) > 2 else []:
                hop = min(self._rng.uniform(2.0, 4.0), end - t)
                if hop <= 0:
                    break
                gesture = self._sample_from(profile.gestural)
                slices.append(MicroSlice(t, t + hop, step_posture, gesture, subloc))
                t += hop
            if t >= end - 1e-9:
                break
            posture = target_posture
            hold = min(self._rng.uniform(*self.slice_range_s), end - t)
            gesture = self._sample_from(profile.gestural)
            # Occasional sub-location excursion inside the activity
            # (e.g. cooking straddling kitchen and living room).
            if self._rng.random() < 0.12:
                subloc = self._sample_from(profile.sublocations)
            slices.append(MicroSlice(t, t + hold, posture, gesture, subloc))
            t += hold

        if not slices:
            gesture = self._sample_from(profile.gestural)
            slices.append(MicroSlice(start, end, posture, gesture, subloc))

        return MacroSegment(activity, start, end, tuple(slices)), posture


def segment_at(timeline: Sequence[MacroSegment], t: float) -> Optional[MacroSegment]:
    """The macro segment covering time *t*, or None outside the session."""
    for seg in timeline:
        if seg.start <= t < seg.end:
            return seg
    return None


def slice_at(timeline: Sequence[MacroSegment], t: float) -> Optional[MicroSlice]:
    """The micro slice covering time *t*, or None."""
    seg = segment_at(timeline, t)
    if seg is None:
        return None
    for sl in seg.slices:
        if sl.start <= t < sl.end:
            return sl
    return seg.slices[-1] if seg.slices else None
