"""State-space creation: per-step candidate hidden states (Fig 2, step 3).

A user's hidden state is ``(macro, subloc)`` — postural and oral-gestural
micro context are *observable* (inferred by the tier-1 classifiers) while
location and macro activity are hidden (paper §IV-A).  For each time step
the builder combines micro-level evidence into a compact candidate list:
sub-locations from the fused iBeacon/PIR candidate set, macro activities
whose mined location prior puts non-trivial mass on those candidates.

The correlation miners then *reduce* this space (step 4); the builder also
exposes the item-set encoding that rule checking consumes.

Hot-path support: candidate lists depend only on the fused sub-location
candidate set, so the builder memoises them per candidate tuple together
with their dense ``(macro, subloc)`` index encodings.  Downstream code
(emissions, pruning, trellis assembly) indexes those arrays instead of
re-resolving labels through ``LabelIndex`` per joint pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.datasets.trace import ContextStep, ResidentObservation
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.context_rules import Item, ambient_items, state_items
from repro.home.layout import SUB_REGIONS

_ROOM_OF = {sr.sr_id: sr.room for sr in SUB_REGIONS}


class UserState(NamedTuple):
    """One hidden-state hypothesis for one resident."""

    macro: str
    subloc: str


@dataclass
class CandidateSet:
    """One resident's per-step candidates with precomputed encodings.

    ``m`` / ``l`` are the dense macro / sub-location indices of ``states``
    in the constraint model's label spaces, resolved once at candidate
    build time so the decode hot path never performs per-pair label
    lookups.  ``emissions`` is the per-state log emission score.

    ``src_key`` / ``src_m`` / ``src_l`` identify the builder's memoised
    *full* candidate list this set was filtered from, and ``src_idx``
    holds the surviving indices into it — the rule pruners cache per-rule
    boolean matrices per source list and slice them with ``src_idx``
    instead of recomputing them per step.
    """

    states: List[UserState]
    m: np.ndarray
    l: np.ndarray
    emissions: np.ndarray
    obs: ResidentObservation
    src_key: Optional[Tuple[str, ...]] = None
    src_idx: Optional[np.ndarray] = None
    src_m: Optional[np.ndarray] = None
    src_l: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.states)

    def take(self, idx: np.ndarray) -> "CandidateSet":
        """Sub-select candidates (keeps all fields aligned)."""
        idx = np.asarray(idx)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        return CandidateSet(
            states=[self.states[i] for i in idx],
            m=self.m[idx],
            l=self.l[idx],
            emissions=self.emissions[idx],
            obs=self.obs,
            src_key=self.src_key,
            src_idx=self.src_idx[idx] if self.src_idx is not None else None,
            src_m=self.src_m,
            src_l=self.src_l,
        )


@dataclass
class StateSpaceBuilder:
    """Builds per-step candidate states from observations.

    Parameters
    ----------
    constraint_model:
        Mined statistics; its per-macro sub-location priors decide which
        macro activities are compatible with a candidate location set.
    macro_mass_threshold:
        Minimum prior mass a macro must put on the candidate sub-locations
        to be hypothesised there (the probabilistic "state space creation"
        filter).
    max_states_per_user:
        Hard cap on per-user candidates (best-scoring kept).
    """

    constraint_model: ConstraintModel
    macro_mass_threshold: float = 0.02
    min_subloc_prior: float = 0.01
    max_states_per_user: int = 60
    #: Memo of encoded candidate lists keyed by the fused sub-location
    #: candidate tuple (the only observation field the builder reads).
    _cand_cache: Dict[Tuple[str, ...], Tuple[List[UserState], np.ndarray, np.ndarray]] = field(
        default_factory=dict, init=False, repr=False
    )
    #: Safety bound on the memo — candidate tuples are drawn from a small
    #: fused vocabulary, but a pathological stream must not grow it forever.
    _cand_cache_limit: int = 8192

    def __post_init__(self) -> None:
        cm = self.constraint_model
        #: Enclosing-room label per dense sub-location index (object dtype so
        #: fancy-indexed slices compare against room strings directly).
        self.room_of_l = np.array(
            [_ROOM_OF.get(lbl, "unknown") for lbl in cm.subloc_index.labels], dtype=object
        )

    def candidate_states_encoded(
        self, obs: ResidentObservation
    ) -> Tuple[List[UserState], np.ndarray, np.ndarray]:
        """Memoised ``(states, macro_idx, subloc_idx)`` for one observation.

        Candidate creation depends only on ``obs.subloc_candidates``, so the
        result — including the dense index encodings the trellis needs — is
        cached per candidate tuple.  Callers must treat the returned list
        and arrays as immutable.
        """
        key = obs.subloc_candidates
        hit = self._cand_cache.get(key)
        if hit is None:
            cm = self.constraint_model
            states = self.candidate_states(obs)
            m = np.array([cm.macro_index.index(s.macro) for s in states], dtype=int)
            l = np.array([cm.subloc_index.index(s.subloc) for s in states], dtype=int)
            if len(self._cand_cache) >= self._cand_cache_limit:
                self._cand_cache.clear()
            hit = (states, m, l)
            self._cand_cache[key] = hit
        return hit

    def candidate_states(self, obs: ResidentObservation) -> List[UserState]:
        """Candidate ``(macro, subloc)`` states for one resident at one step.

        Sub-locations come from the fused candidate set; macro hypotheses
        are scored by their occupancy mass on those candidates.  Every macro
        always contributes at least one state — its best candidate
        sub-location, or its global modal sub-location when the candidate
        set carries no mass (a PIR can miss a stationary resident, and the
        emission's PIR-miss penalty is the right place to adjudicate that,
        not a hard candidate cut that caps attainable accuracy).
        """
        cm = self.constraint_model
        occupancy = cm.subloc_occupancy if cm.subloc_occupancy is not None else cm.subloc_prior
        cand_idx = [
            cm.subloc_index.index(sr) for sr in obs.subloc_candidates if sr in cm.subloc_index
        ]
        if not cand_idx:
            cand_idx = list(range(len(cm.subloc_index)))

        scored: List[Tuple[float, UserState]] = []
        guaranteed: List[UserState] = []
        seen: set = set()
        for m_i, macro in enumerate(cm.macro_index.labels):
            mass = float(occupancy[m_i, cand_idx].sum())
            best_l = cand_idx[int(np.argmax(occupancy[m_i, cand_idx]))]
            if mass < self.macro_mass_threshold:
                # Outside its usual locations: keep one fallback hypothesis
                # at the macro's modal sub-location.
                l_i = int(np.argmax(occupancy[m_i]))
                guaranteed.append(UserState(macro, cm.subloc_index.label(l_i)))
                seen.add((m_i, l_i))
                continue
            guaranteed.append(UserState(macro, cm.subloc_index.label(best_l)))
            seen.add((m_i, best_l))
            for l_i in cand_idx:
                p = float(occupancy[m_i, l_i])
                if p < self.min_subloc_prior or (m_i, l_i) in seen:
                    continue
                scored.append((mass * p, UserState(macro, cm.subloc_index.label(l_i))))
        scored.sort(key=lambda pair: -pair[0])
        budget = max(self.max_states_per_user - len(guaranteed), 0)
        return guaranteed + [state for _, state in scored[:budget]]

    # -- item encoding for rule checks ----------------------------------------

    @staticmethod
    def state_item_set(
        slot: str, state: UserState, obs: ResidentObservation
    ) -> FrozenSet[Item]:
        """Items describing a hypothesised state plus observed micro context."""
        return frozenset(
            state_items(
                slot,
                macro=state.macro,
                posture=obs.posture,
                gesture=obs.gesture,
                subloc=state.subloc,
                room=_ROOM_OF.get(state.subloc, "unknown"),
            )
        )

    @staticmethod
    def ambient_item_set(step: ContextStep) -> FrozenSet[Item]:
        """Items for the step's unattributed ambient evidence."""
        return frozenset(ambient_items(sorted(step.rooms_fired), sorted(step.objects_fired)))
