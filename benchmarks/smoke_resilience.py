"""CI chaos smoke: batch decode under a seeded fault plan.

Builds a small corpus, decodes it fault-free for a reference, then
re-decodes under an explicit :class:`~repro.resilience.FaultPlan`
(worker crashes, decode delays, raised errors — all deterministic by
seed) and asserts the resilience contract:

* every session the plan does not exhaust returns **bit-identical**
  labels to the fault-free run;
* the :class:`~repro.resilience.FailureReport` lists exactly the
  sessions the plan predicts (``expected_failures``), with matching
  retry/crash accounting;
* the observability counters agree with the report.

The report is written to ``benchmarks/out/failure_report.json`` — the
artifact the CI chaos job uploads when this script fails.

Run with ``PYTHONPATH=src python benchmarks/smoke_resilience.py``.
The plan seed defaults to 86 and follows ``REPRO_FAULT_SEED`` when set,
so CI can rotate chaos schedules without a code change.
"""

import json
import os
import sys
from pathlib import Path

from repro.core.engine import CaceEngine
from repro.datasets import generate_cace_dataset, train_test_split
from repro.obs import provenance
from repro.obs import runtime as obs
from repro.resilience import Fault, FaultPlan, RetryPolicy, injected


def main() -> int:
    seed = int(os.environ.get("REPRO_FAULT_SEED", "86"))
    dataset = generate_cace_dataset(
        n_homes=2, sessions_per_home=4, duration_s=900.0, seed=7
    )
    train, test = train_test_split(dataset, 0.5, seed=9)
    engine = CaceEngine(strategy="c2", seed=11).fit(train)
    keys = [f"{seq.home_id}:{i}" for i, seq in enumerate(test.sequences)]

    # Fault-free reference decode (serial: nothing to recover from).
    reference = engine.predict_dataset(test)

    # One recoverable crash + delay + transient error, plus one session
    # whose error outlives every retry — the planned casualty.
    policy = RetryPolicy(max_retries=2, backoff_base_s=0.01, backoff_max_s=0.05)
    plan = FaultPlan.from_seed(
        seed, keys, n_crash=1, n_delay=1, n_error=1, times=1, delay_s=0.01
    )
    doomed = next(k for k in keys if k not in plan.faults)
    plan.faults[doomed] = Fault("error", times=policy.max_attempts)
    expected_failed = plan.expected_failures(policy.max_attempts)

    obs.enable(metrics=True)
    obs.reset()
    failures = []
    with injected(plan):
        results = engine.predict_dataset(
            test, workers=2, timeout_s=120.0, retry=policy, partial=True
        )
    report = engine.failure_report_

    out = Path(__file__).parent / "out" / "failure_report.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = report.to_dict()
    payload["plan"] = json.loads(plan.to_json())
    payload["provenance"] = provenance()
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    print(report.describe())

    if sorted(report.failed_keys()) != expected_failed:
        failures.append(
            f"failed sessions {sorted(report.failed_keys())} != plan {expected_failed}"
        )
    for key in keys:
        if key in expected_failed:
            if key in results:
                failures.append(f"{key} should have failed but returned labels")
            continue
        if key not in results:
            failures.append(f"{key} missing from partial results")
        elif results[key] != reference[key]:
            failures.append(f"{key} labels diverge from the fault-free reference")
    if report.crashes < 1:
        failures.append("the planned worker crash never happened")
    if report.pool_replacements != 1:
        failures.append(
            f"expected exactly 1 pool replacement, saw {report.pool_replacements}"
        )
    reg = obs.get_registry()
    for counter, want in (
        ("engine.retries", report.retries),
        ("engine.session_failures", len(report.failures)),
        ("engine.pool_replacements", report.pool_replacements),
    ):
        got = reg.counter(counter).value
        if got != want:
            failures.append(f"counter {counter}={got} but report says {want}")

    for failure in failures:
        print(f"CHAOS FAILURE: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"chaos OK: {len(results)}/{len(keys)} sessions bit-identical, "
            f"{len(expected_failed)} planned casualty reported"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
