"""Bench: Fig 10 — model comparison on the CACE corpus.

Paper: CHDBN ~95.1% beats CHMM (+5), FCRF (+8) and HMM (+20); per-class
CHDBN metrics in Fig 10(b) with overall FP 1.5 / P 97.3 / R 95.1 / F 96.8.
"""

from benchmarks.conftest import record, workload
from repro.eval.experiments import fig10_model_comparison


def test_fig10_model_comparison(benchmark):
    params = workload()
    result = benchmark.pedantic(
        fig10_model_comparison,
        kwargs={
            "n_homes": max(params["n_homes"], 4),
            "sessions_per_home": max(params["sessions_per_home"], 5),
            "duration_s": max(params["duration_s"], 3600.0),
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("fig10", result.render())
    overall = result.overall
    # The paper's ordering: CACE's CHDBN on top, flat HMM at the bottom.
    assert overall["chdbn"] > overall["chmm"] - 0.02
    assert overall["chdbn"] > overall["fcrf"]
    assert overall["chdbn"] > overall["hmm"]
    assert overall["chmm"] > overall["hmm"]
