"""Benchmark configuration.

Each bench regenerates one of the paper's tables/figures at a scaled-down
workload (so the suite completes in minutes) and prints the paper-style
rows.  Set ``REPRO_BENCH_SCALE=full`` for paper-scale workloads.
"""

import os
from pathlib import Path

import pytest

#: Workload presets: (n_homes, sessions_per_home, duration_s).  Mined
#: "deterministic" rules need enough steps to be stable — below ~3 homes
#: the 4%-support itemsets overfit single sessions — and sessions under
#: ~1 h cover only a fraction of the 11-activity catalogue, which makes
#: per-class recalls degenerate in small test splits.
SMALL = {"n_homes": 3, "sessions_per_home": 4, "duration_s": 3600.0}
FULL = {"n_homes": 5, "sessions_per_home": 6, "duration_s": 5400.0}


def workload() -> dict:
    """The active CACE-corpus preset."""
    return FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" else SMALL


@pytest.fixture(scope="session")
def bench_workload():
    """Fixture view of :func:`workload`."""
    return workload()


def record(name: str, text: str) -> None:
    """Persist a rendered table under ``benchmarks/out/`` for inspection.

    pytest captures stdout, so benches also write their paper-style tables
    to files; EXPERIMENTS.md references these outputs.
    """
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n")
