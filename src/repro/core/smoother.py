"""Online fixed-lag smoothing over any CACE recogniser.

The paper's conclusion argues "CACE model can be used as a smoother of any
online complex activity recognition framework": instead of decoding a full
recorded session offline (Viterbi), contexts arrive one step at a time and
each label must be committed within a bounded latency.

:class:`OnlineSmoother` runs the forward recursion of each of the model's
trellis sessions (:meth:`~repro.core.api.Recognizer.trellis_sessions`)
incrementally and commits the label for step ``t - lag`` when step ``t``
arrives, using a backward sweep restricted to the lag window (fixed-lag
smoothing).  With ``lag >= len(seq)`` the committed labels equal the full
forward-backward marginals' argmax; small lags trade a little accuracy for
bounded latency and O(lag) memory.  The coupled pair and N-chain models
expose one joint session; the per-user models one session per resident
(frame-wise NCR chains have no transition and reduce to filtering).

``push`` performs the same :class:`~repro.core.api.DecodeStats`
accounting as offline decoding (steps, surviving joint states, evaluated
transition entries, pruned/capped counts) into its own ``stats`` object —
one per smoother, so concurrent sessions over a shared model never mix
their counters — and keeps ``model.last_stats`` pointed at it, so
streaming overhead reports match the Fig 11 metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import DecodeStats, Recognizer, TrellisPiece, TrellisSession
from repro.core.kernels import _lse
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry


class _Instruments:
    """Cached obs handles for one smoother (resolved once per session).

    Shared instrument objects aggregate across every smoother wired to the
    same registry (e.g. all of a router's sessions); per-session isolation
    stays in each smoother's own :class:`DecodeStats`.
    """

    __slots__ = (
        "push_seconds",
        "sweep_seconds",
        "steps",
        "commits",
        "trans_computed",
        "trans_reused",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.push_seconds = reg.histogram("smoother.push_seconds")
        self.sweep_seconds = reg.histogram("smoother.sweep_seconds")
        self.steps = reg.counter("smoother.steps")
        self.commits = reg.counter("smoother.commits")
        self.trans_computed = reg.counter("smoother.trans_blocks_computed")
        self.trans_reused = reg.counter("smoother.trans_blocks_reused")


@dataclass
class OnlineSmoother:
    """Fixed-lag smoother over a fitted recogniser.

    Parameters
    ----------
    model:
        Any fitted :class:`~repro.core.api.Recognizer` (its miners and
        emission tables are reused unchanged).
    lag:
        Commit latency in steps; 0 gives pure filtering (commit on arrival).
    """

    model: Recognizer
    lag: int = 4
    #: Metrics destination.  ``None`` uses the process-wide registry when
    #: observability is enabled (else no instrumentation at all); the
    #: serving router passes its own registry explicitly.
    metrics: Optional[MetricsRegistry] = None
    #: Per-session work accounting (the streaming analogue of the model's
    #: ``last_stats`` after an offline decode).
    stats: DecodeStats = field(default_factory=DecodeStats, init=False)
    _ins: Optional[_Instruments] = field(default=None, init=False, repr=False)
    _sessions: Optional[List[TrellisSession]] = field(default=None, init=False, repr=False)
    _rids: Tuple[str, ...] = field(default=(), init=False)
    _pieces: List[List[TrellisPiece]] = field(default_factory=list, init=False, repr=False)
    _alphas: List[List[np.ndarray]] = field(default_factory=list, init=False, repr=False)
    #: Per-session transition blocks computed at push time; ``_trans[k][t]``
    #: is the block between steps t-1 and t (None at t=0 and for
    #: frame-wise chains), reused by the lag-window backward sweeps
    #: instead of being recomputed on every commit.
    _trans: List[List[Optional[np.ndarray]]] = field(
        default_factory=list, init=False, repr=False
    )
    _pushed: int = field(default=0, init=False)
    _committed: int = field(default=0, init=False)

    @property
    def residents(self) -> Tuple[str, ...]:
        """Resident ids covered by the active session (empty before
        :meth:`start`)."""
        return self._rids

    def start(self, seq) -> None:
        """Begin a session; steps are then consumed with :meth:`push`."""
        if self.lag < 0:
            raise ValueError(f"lag must be >= 0, got {self.lag}")
        sessions = self.model.trellis_sessions(seq)
        self._sessions = sessions
        self._rids = tuple(rid for sess in sessions for rid in sess.rids)
        self._pieces = [[] for _ in sessions]
        self._alphas = [[] for _ in sessions]
        self._trans = [[] for _ in sessions]
        self._pushed = 0
        self._committed = 0
        self.stats = DecodeStats()
        self.model.last_stats = self.stats
        reg = self.metrics if self.metrics is not None else obs.registry_if_enabled()
        self._ins = _Instruments(reg) if reg is not None else None

    # -- incremental consumption -------------------------------------------------

    def push(self, t: int) -> Optional[Dict[str, str]]:
        """Consume step *t*; returns the labels committed for step
        ``t - lag`` (None while the window is still filling)."""
        if self._sessions is None:
            raise RuntimeError("call start() before push()")
        if t != self._pushed:
            raise ValueError(
                f"steps must arrive in order; expected {self._pushed}, got {t}"
            )
        # Mirror the offline _prepare / decode accounting so streaming
        # overhead reports are as meaningful as offline ones.  The model's
        # last_stats is re-pinned every push: candidate builders count
        # pruned/capped joint states through it, and interleaved sessions
        # over a shared model must each hit their own counters.
        stats = self.stats
        self.model.last_stats = stats
        ins = self._ins
        t_push = time.perf_counter() if ins is not None else 0.0
        for k, sess in enumerate(self._sessions):
            piece = sess.piece(t)
            self._pieces[k].append(piece)
            stats.joint_states += len(piece)
            log_t = None
            if t > 0:
                log_t = sess.transition(self._pieces[k][-2], piece)
            self._trans[k].append(log_t)
            if log_t is None:
                alpha = sess.initial_alpha(piece)
            else:
                stats.transition_entries += log_t.size
                if ins is not None:
                    ins.trans_computed.inc()
                alpha = piece.scores + _lse(
                    self._alphas[k][-1][:, None] + log_t, axis=0
                )
            self._alphas[k].append(alpha)
        stats.steps += 1
        self._pushed = t + 1

        commit_t = t - self.lag
        if commit_t < 0:
            if ins is not None:
                ins.steps.inc()
                ins.push_seconds.observe(time.perf_counter() - t_push)
            return None
        labels = self._smooth_at(commit_t, t)
        self._committed = commit_t + 1
        if ins is not None:
            ins.steps.inc()
            ins.push_seconds.observe(time.perf_counter() - t_push)
        return labels

    def push_many(self, ts: Sequence[int]) -> List[Optional[Dict[str, str]]]:
        """Bulk-append: batch-build each session's per-sequence evidence
        tables for the whole range, then push the steps in order.

        Returns one entry per pushed step (None while the lag window is
        still filling), exactly as step-by-step :meth:`push` would.
        """
        if self._sessions is None:
            raise RuntimeError("call start() before push_many()")
        ts = list(ts)
        if ts:
            self.prepare_range(ts[0], ts[-1] + 1)
        return [self.push(t) for t in ts]

    def prepare_range(self, t0: int, t1: int) -> None:
        """Batch-build per-sequence evidence tables for steps ``[t0, t1)``.

        Callers that need per-step control (e.g. the serving router's
        fault isolation) use this plus :meth:`push` instead of
        :meth:`push_many`; calling it is an optimisation only — ``push``
        is correct without it.
        """
        if self._sessions is None:
            raise RuntimeError("call start() before prepare_range()")
        for sess in self._sessions:
            prepare = getattr(sess, "prepare", None)
            if prepare is not None:
                prepare(t0, t1)

    def flush(self) -> List[Dict[str, str]]:
        """Commit every step still inside the lag window (session end)."""
        if self._sessions is None:
            return []
        last = self._pushed - 1
        out = []
        for t in range(self._committed, self._pushed):
            out.append(self._smooth_at(t, last))
        self._committed = self._pushed
        return out

    def run(self, seq) -> Dict[str, List[str]]:
        """Convenience: stream a whole session, return per-resident labels."""
        self.start(seq)
        per_step: List[Dict[str, str]] = []
        for t in range(len(seq)):
            committed = self.push(t)
            if committed is not None:
                per_step.append(committed)
        per_step.extend(self.flush())
        return {
            rid: [labels[rid] for labels in per_step] for rid in self._rids
        }

    # -- lag-window smoothing ------------------------------------------------------

    def _smooth_at(self, commit_t: int, horizon: int) -> Dict[str, str]:
        """Argmax smoothed macro per resident for *commit_t* given steps
        up to *horizon*.

        The backward sweep reuses the transition blocks stored at push
        time (``_trans``); every reuse counts as a cache hit against the
        push-time computations (``smoother.trans_blocks_computed``)."""
        ins = self._ins
        t_sweep = time.perf_counter() if ins is not None else 0.0
        reused = 0
        out: Dict[str, str] = {}
        with obs.span("smoother.backward", commit_t=commit_t, horizon=horizon):
            for k, sess in enumerate(self._sessions):
                pieces = self._pieces[k]
                beta = np.zeros_like(self._alphas[k][horizon])
                for t in range(horizon - 1, commit_t - 1, -1):
                    nxt = pieces[t + 1]
                    log_t = self._trans[k][t + 1]
                    if log_t is None:
                        # Frame-wise chain: future evidence is independent of
                        # the committed step.
                        beta = np.zeros(len(pieces[t]))
                        continue
                    reused += 1
                    beta = _lse(log_t + (nxt.scores + beta)[None, :], axis=1)

                log_gamma = self._alphas[k][commit_t] + beta
                log_gamma = log_gamma - _lse(log_gamma, axis=0)
                out.update(sess.labels(pieces[commit_t], np.exp(log_gamma)))
        if ins is not None:
            ins.commits.inc()
            if reused:
                ins.trans_reused.inc(reused)
            ins.sweep_seconds.observe(time.perf_counter() - t_sweep)
        return out
