"""Factorial CRF — the Wang et al. [5] baseline.

"Dealt with wearable sensor data to exploit the temporal constraints across
two users": a two-chain factorial conditional random field whose factors
are per-node observation potentials (indicator features of the observed
wearable micro context), per-chain temporal transition potentials, and
inter-chain co-temporal potentials.  Decoding is exact over the joint
``(m1, m2)`` space.

**Training substitution (documented in DESIGN.md):** full CRF maximum
likelihood needs an optimisation stack this offline environment lacks; we
train the identical factor graph with the *averaged structured perceptron*,
a standard discriminative trainer that preserves the model family's
qualitative behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.trace import Dataset, LabeledSequence
from repro.models.distributions import LabelIndex
from repro.models.viterbi import viterbi_decode
from repro.util.rng import RandomState, ensure_rng


@dataclass
class FactorialCrf:
    """Two-chain factorial CRF trained by averaged structured perceptron."""

    epochs: int = 14
    chunk_len: int = 40
    seed: RandomState = None
    macro_index: Optional[LabelIndex] = field(default=None, init=False)
    posture_index: Optional[LabelIndex] = field(default=None, init=False)
    gesture_index: Optional[LabelIndex] = field(default=None, init=False)
    node_w: Optional[np.ndarray] = field(default=None, init=False)  # (M, D)
    trans_w: Optional[np.ndarray] = field(default=None, init=False)  # (M, M)
    pair_w: Optional[np.ndarray] = field(default=None, init=False)  # (M, M)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)

    # -- feature map -------------------------------------------------------------

    def _phi(self, seq: LabeledSequence, rid: str) -> np.ndarray:
        """(T, D) indicator features of the observed wearable context.

        Includes posture and gesture one-hots, their cross products (a
        richer wearable feature map, matching the baseline's multi-modal
        body-sensor features), and a bias.
        """
        n_p = len(self.posture_index)
        n_g = len(self.gesture_index) if self.gesture_index else 0
        dim = n_p + n_g + n_p * max(n_g, 0) + 1
        out = np.zeros((len(seq), dim))
        for t, step in enumerate(seq.steps):
            obs = step.observations[rid]
            p = self.posture_index.index(obs.posture)
            out[t, p] = 1.0
            if n_g and obs.gesture is not None:
                g = self.gesture_index.index(obs.gesture)
                out[t, n_p + g] = 1.0
                out[t, n_p + n_g + p * n_g + g] = 1.0
            out[t, -1] = 1.0  # bias
        return out

    # -- decoding -----------------------------------------------------------------

    def _decode(self, phi1: np.ndarray, phi2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        n_m = len(self.macro_index)
        t_len = phi1.shape[0]
        node1 = phi1 @ self.node_w.T  # (T, M)
        node2 = phi2 @ self.node_w.T
        emis = (
            node1[:, :, None] + node2[:, None, :] + self.pair_w[None, :, :]
        ).reshape(t_len, n_m * n_m)
        trans = (
            self.trans_w[:, None, :, None] + self.trans_w[None, :, None, :]
        ).reshape(n_m * n_m, n_m * n_m)
        prior = np.zeros(n_m * n_m)
        path, _ = viterbi_decode(prior, trans, emis)
        return path // n_m, path % n_m

    # -- training ------------------------------------------------------------------

    def fit(self, train: Dataset) -> "FactorialCrf":
        """Averaged structured perceptron over resident pairs."""
        self.macro_index = LabelIndex(train.macro_vocab)
        self.posture_index = LabelIndex(train.postural_vocab)
        self.gesture_index = (
            LabelIndex(train.gestural_vocab) if train.has_gestural and train.gestural_vocab else None
        )
        n_m = len(self.macro_index)
        n_p = len(self.posture_index)
        n_g = len(self.gesture_index) if self.gesture_index else 0
        dim = n_p + n_g + n_p * max(n_g, 0) + 1

        self.node_w = np.zeros((n_m, dim))
        self.trans_w = np.zeros((n_m, n_m))
        self.pair_w = np.zeros((n_m, n_m))
        sum_node = np.zeros_like(self.node_w)
        sum_trans = np.zeros_like(self.trans_w)
        sum_pair = np.zeros_like(self.pair_w)
        n_updates = 0

        pairs = []
        for seq in train.sequences:
            if len(seq.resident_ids) < 2 or len(seq) == 0:
                continue
            r1, r2 = seq.resident_ids[:2]
            phi1, phi2 = self._phi(seq, r1), self._phi(seq, r2)
            y1 = self.macro_index.encode(seq.macro_labels(r1))
            y2 = self.macro_index.encode(seq.macro_labels(r2))
            # Chunked training: more perceptron updates per epoch and less
            # error accumulation across very long sessions.
            for start in range(0, len(seq), self.chunk_len):
                end = min(start + self.chunk_len, len(seq))
                if end - start >= 2:
                    pairs.append(
                        (phi1[start:end], phi2[start:end], y1[start:end], y2[start:end])
                    )

        for _ in range(self.epochs):
            order = self._rng.permutation(len(pairs))
            for k in order:
                phi1, phi2, y1, y2 = pairs[k]
                p1, p2 = self._decode(phi1, phi2)
                if np.array_equal(p1, y1) and np.array_equal(p2, y2):
                    n_updates += 1
                    sum_node += self.node_w
                    sum_trans += self.trans_w
                    sum_pair += self.pair_w
                    continue
                for t in range(phi1.shape[0]):
                    for phi, gold, pred in ((phi1, y1, p1), (phi2, y2, p2)):
                        if gold[t] != pred[t]:
                            self.node_w[gold[t]] += phi[t]
                            self.node_w[pred[t]] -= phi[t]
                    if (y1[t], y2[t]) != (p1[t], p2[t]):
                        self.pair_w[y1[t], y2[t]] += 1.0
                        self.pair_w[p1[t], p2[t]] -= 1.0
                    if t > 0:
                        for gold, pred in ((y1, p1), (y2, p2)):
                            if gold[t - 1] != pred[t - 1] or gold[t] != pred[t]:
                                self.trans_w[gold[t - 1], gold[t]] += 1.0
                                self.trans_w[pred[t - 1], pred[t]] -= 1.0
                n_updates += 1
                sum_node += self.node_w
                sum_trans += self.trans_w
                sum_pair += self.pair_w

        if n_updates > 0:
            self.node_w = sum_node / n_updates
            self.trans_w = sum_trans / n_updates
            self.pair_w = sum_pair / n_updates
        return self

    # -- prediction -----------------------------------------------------------------

    def predict(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Exact joint decode of both chains."""
        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        r1, r2 = seq.resident_ids[:2]
        p1, p2 = self._decode(self._phi(seq, r1), self._phi(seq, r2))
        return {
            r1: [self.macro_index.label(i) for i in p1],
            r2: [self.macro_index.label(i) for i in p2],
        }
