"""Bench: Apriori vs FP-Growth on CACE-scale transaction sets.

The paper mines with Apriori; FP-Growth is the standard faster
replacement.  Both must produce identical frequent itemsets — asserted
here on a real mined corpus — and the timing comparison documents when
switching pays off.
"""

import time

from benchmarks.conftest import record, workload
from repro.datasets.cace import generate_cace_dataset
from repro.mining.apriori import Apriori
from repro.mining.context_rules import encode_dataset
from repro.mining.fpgrowth import FpGrowth


def run_comparison(n_homes, sessions_per_home, duration_s, seed=7):
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=seed,
    )
    transactions = encode_dataset(dataset.sequences)

    t0 = time.perf_counter()
    apriori_sets = Apriori(min_support=0.04, max_itemset_size=3).mine_itemsets(
        transactions
    )
    apriori_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fp_sets = FpGrowth(min_support=0.04, max_itemset_size=3).mine_itemsets(
        transactions
    )
    fp_s = time.perf_counter() - t0

    return {
        "n_transactions": len(transactions),
        "n_itemsets": len(apriori_sets.supports),
        "apriori_seconds": apriori_s,
        "fpgrowth_seconds": fp_s,
        "identical": set(apriori_sets.supports) == set(fp_sets.supports),
    }


def test_apriori_vs_fpgrowth(benchmark):
    params = workload()
    result = benchmark.pedantic(
        run_comparison,
        kwargs={
            "n_homes": params["n_homes"],
            "sessions_per_home": params["sessions_per_home"],
            "duration_s": params["duration_s"],
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    text = (
        f"Frequent-itemset mining on {result['n_transactions']} transactions "
        f"({result['n_itemsets']} frequent itemsets)\n"
        f"  Apriori:   {result['apriori_seconds']:.2f}s\n"
        f"  FP-Growth: {result['fpgrowth_seconds']:.2f}s "
        f"({result['apriori_seconds'] / max(result['fpgrowth_seconds'], 1e-9):.1f}x)"
    )
    print("\n" + text)
    record("mining_comparison", text)
    assert result["identical"], "miners disagree on the frequent itemsets"
