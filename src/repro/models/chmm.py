"""Coupled HMM — the Roy et al. [4] baseline.

"Added micro context constraints among all users ... using Coupled Hidden
Markov Model" with *ambient and postural* data (no gestural channel, no
hierarchy).  Hidden state is the joint macro pair ``(m1, m2)``; each chain's
transition is conditioned on both chains' previous states, and per-user
emissions combine a posture CPT, a sub-location-candidate likelihood, and a
Gaussian over the phone-side feature dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.trace import Dataset, LabeledSequence
from repro.home.layout import SUB_REGIONS
from repro.models.distributions import (
    Cpt,
    GaussianEmission,
    LabelIndex,
    shrink_coupled_transitions,
)
from repro.models.inputs import observed_postures, step_features, subloc_candidates
from repro.models.viterbi import forward_backward, viterbi_decode

#: Feature dimensions observable without the neck tag (phone IMU only).
PHONE_FEATURE_DIMS: Tuple[int, ...] = (0, 1, 4)

#: Beacon position-estimate noise scale (metres) for soft location evidence.
#: Calibrated against the receiver's empirical trilateration error (~0.4 m
#: mean) with headroom for within-region wander between fixes.
LOCATION_KERNEL_SIGMA_M = 1.0


def soft_location_log_evidence(
    subloc_index: LabelIndex,
    position_estimate: Optional[Tuple[float, float]],
    candidates: Tuple[str, ...],
) -> np.ndarray:
    """``(L,)`` log weight that the resident is at each sub-location.

    With a beacon fix, weights follow a Gaussian kernel on the distance from
    the estimate to each sub-region centre; without one, the candidate set
    receives uniform mass and everything else a floor.
    """
    centers = {sr.sr_id: sr.center for sr in SUB_REGIONS}
    n_l = len(subloc_index)
    out = np.full(n_l, -12.0)
    if position_estimate is not None:
        ex, ey = position_estimate
        for sr_id, (cx, cy) in centers.items():
            if sr_id in subloc_index:
                d2 = (ex - cx) ** 2 + (ey - cy) ** 2
                out[subloc_index.index(sr_id)] = -d2 / (2 * LOCATION_KERNEL_SIGMA_M**2)
    else:
        for sr_id in candidates:
            if sr_id in subloc_index:
                out[subloc_index.index(sr_id)] = 0.0
    return out


@dataclass
class CoupledHmm:
    """Two-chain coupled HMM over macro activities."""

    alpha: float = 0.1
    macro_index: Optional[LabelIndex] = field(default=None, init=False)
    posture_index: Optional[LabelIndex] = field(default=None, init=False)
    subloc_index: Optional[LabelIndex] = field(default=None, init=False)
    prior_: Optional[np.ndarray] = field(default=None, init=False)
    coupled_trans_: Optional[np.ndarray] = field(default=None, init=False)
    posture_cpt_: Optional[np.ndarray] = field(default=None, init=False)
    subloc_cpt_: Optional[np.ndarray] = field(default=None, init=False)
    emission_: Optional[GaussianEmission] = field(default=None, init=False, repr=False)

    # -- training -------------------------------------------------------------

    def fit(self, train: Dataset) -> "CoupledHmm":
        """Supervised estimation of coupled transitions and emissions."""
        self.macro_index = LabelIndex(train.macro_vocab)
        self.posture_index = LabelIndex(train.postural_vocab)
        self.subloc_index = LabelIndex(train.subloc_vocab)
        n_m = len(self.macro_index)
        prior_c = Cpt((n_m,), alpha=self.alpha)
        coupled_c = Cpt((n_m, n_m, n_m), alpha=self.alpha)
        posture_c = Cpt((n_m, len(self.posture_index)), alpha=self.alpha)
        subloc_c = Cpt((n_m, len(self.subloc_index)), alpha=self.alpha)

        feats: List[np.ndarray] = []
        states: List[int] = []
        for seq in train.sequences:
            for rid in seq.resident_ids:
                partner = next((o for o in seq.resident_ids if o != rid), None)
                labels = [self.macro_index.index(m) for m in seq.macro_labels(rid)]
                if not labels:
                    continue
                prior_c.observe(labels[0])
                partner_labels = (
                    [self.macro_index.index(m) for m in seq.macro_labels(partner)]
                    if partner
                    else labels
                )
                for t in range(1, len(labels)):
                    coupled_c.observe(labels[t - 1], partner_labels[t - 1], labels[t])
                for t, truth in enumerate(seq.truths):
                    posture_c.observe(
                        labels[t],
                        self.posture_index.index(seq.steps[t].observations[rid].posture),
                    )
                    subloc_c.observe(labels[t], self.subloc_index.index(truth[rid].subloc))
                feats.append(step_features(seq, rid)[:, PHONE_FEATURE_DIMS])
                states.extend(labels)

        self.prior_ = prior_c.probabilities()
        self.coupled_trans_ = shrink_coupled_transitions(coupled_c.counts, alpha=self.alpha)
        self.posture_cpt_ = posture_c.probabilities()
        self.subloc_cpt_ = subloc_c.probabilities()
        stacked = np.vstack(feats)
        self.emission_ = GaussianEmission(dim=stacked.shape[1]).fit(stacked, np.array(states))
        return self

    # -- inference ----------------------------------------------------------------

    def _user_log_emissions(self, seq: LabeledSequence, rid: str) -> np.ndarray:
        """(T, M) per-user emission scores."""
        n_m = len(self.macro_index)
        feats = step_features(seq, rid)[:, PHONE_FEATURE_DIMS]
        postures = observed_postures(seq, rid)
        candidates = subloc_candidates(seq, rid)
        log_post = np.log(self.posture_cpt_)
        log_loc = np.log(self.subloc_cpt_)
        out = np.zeros((len(seq), n_m))
        for t in range(len(seq)):
            p_idx = self.posture_index.index(postures[t])
            obs = seq.steps[t].observations[rid]
            loc_weight = soft_location_log_evidence(
                self.subloc_index, obs.position_estimate, candidates[t]
            )
            # Marginalise the true sub-location: sum_l P(l | m) w(l | fix).
            loc_mass = np.log(np.exp(log_loc + loc_weight[None, :]).sum(axis=1) + 1e-300)
            gauss = self.emission_.log_pdf_many(range(n_m), feats[t])
            out[t] = log_post[:, p_idx] + loc_mass + gauss
        return out

    def _joint_pieces(self, seq: LabeledSequence):
        rids = list(seq.resident_ids[:2])
        if len(rids) < 2:
            raise ValueError("CoupledHmm expects two residents")
        n_m = len(self.macro_index)
        e1 = self._user_log_emissions(seq, rids[0])
        e2 = self._user_log_emissions(seq, rids[1])
        log_e = (e1[:, :, None] + e2[:, None, :]).reshape(len(seq), n_m * n_m)

        log_c = np.log(self.coupled_trans_)
        # A[(i,j) -> (i',j')] = log P(i'|i,j) + log P(j'|j,i)
        a = log_c[:, :, :, None] + np.transpose(log_c, (1, 0, 2))[:, :, None, :]
        log_trans = a.reshape(n_m * n_m, n_m * n_m)

        log_prior = (np.log(self.prior_)[:, None] + np.log(self.prior_)[None, :]).reshape(-1)
        return rids, log_prior, log_trans, log_e

    def predict(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Joint Viterbi decode over the coupled macro pair."""
        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        rids, log_prior, log_trans, log_e = self._joint_pieces(seq)
        path, _ = viterbi_decode(log_prior, log_trans, log_e)
        n_m = len(self.macro_index)
        out1 = [self.macro_index.label(s // n_m) for s in path]
        out2 = [self.macro_index.label(s % n_m) for s in path]
        return {rids[0]: out1, rids[1]: out2}

    def predict_proba(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Per-user posterior macro marginals from the joint chain."""
        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        rids, log_prior, log_trans, log_e = self._joint_pieces(seq)
        gamma, _, _ = forward_backward(log_prior, log_trans, log_e)
        n_m = len(self.macro_index)
        joint = gamma.reshape(len(seq), n_m, n_m)
        return {rids[0]: joint.sum(axis=2), rids[1]: joint.sum(axis=1)}
