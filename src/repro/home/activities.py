"""Activity-of-daily-living catalogue (paper Table III).

Defines the 11 macro activities, 5 postural and 5 oral-gestural micro
activities, and — for the generative simulation — an :class:`ActivityProfile`
per macro activity: where it happens (sub-region distribution), how the body
moves while doing it (postural / gestural distributions), which instrumented
objects it touches, how long it lasts, and whether residents tend to do it
together.  These profiles are the generative counterpart of the structures
the CACE miners are supposed to *discover*; none of the profile tables are
visible to the recognition models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: The 11 macro (complex) activities of Table III.
MACRO_ACTIVITIES: Tuple[str, ...] = (
    "exercising",
    "prepare_clothes",
    "dining",
    "watching_tv",
    "prepare_food",
    "studying",
    "sleeping",
    "bathrooming",
    "cooking",
    "past_times",
    "random",
)

#: Postural micro activities (pocket smartphone).
POSTURAL_ACTIVITIES: Tuple[str, ...] = ("walking", "standing", "sitting", "cycling", "lying")

#: Oral-gestural micro activities (neck-mounted tag).
GESTURAL_ACTIVITIES: Tuple[str, ...] = ("silent", "talking", "eating", "yawning", "laughing")

#: Macro activities residents commonly perform together (paper: "shared
#: activities such as sleeping, dining, past-times").
SHAREABLE_ACTIVITIES: Tuple[str, ...] = ("dining", "watching_tv", "sleeping", "past_times")

#: Macro activities requiring sole occupancy of their location.
EXCLUSIVE_ACTIVITIES: Tuple[str, ...] = ("bathrooming",)


@dataclass(frozen=True)
class ActivityProfile:
    """Generative profile of one macro activity.

    All distribution dicts map label -> probability and must sum to 1.
    ``duration_range_s`` bounds a log-uniform duration draw.
    ``objects`` maps instrumented object name -> interaction intensity in
    [0, 1] while the activity runs (0.45+ fires a 55%-sensitivity sensor).
    ``mobility`` is the fraction of time the resident is ambulating inside
    the activity's area (drives PIR firings).
    """

    name: str
    sublocations: Dict[str, float]
    postural: Dict[str, float]
    gestural: Dict[str, float]
    duration_range_s: Tuple[float, float]
    objects: Dict[str, float] = field(default_factory=dict)
    mobility: float = 0.2
    shareable: bool = False
    exclusive: bool = False


_PROFILES: Dict[str, ActivityProfile] = {
    "exercising": ActivityProfile(
        name="exercising",
        sublocations={"SR1": 0.92, "SR12": 0.08},
        postural={"cycling": 0.78, "standing": 0.17, "walking": 0.05},
        gestural={"silent": 0.82, "yawning": 0.08, "talking": 0.10},
        duration_range_s=(480, 1200),
        objects={"exercise_bike": 0.9},
        mobility=0.35,
    ),
    "prepare_clothes": ActivityProfile(
        name="prepare_clothes",
        sublocations={"SR6": 0.55, "SR8": 0.33, "SR14": 0.12},
        postural={"standing": 0.6, "walking": 0.34, "sitting": 0.06},
        gestural={"silent": 0.82, "talking": 0.12, "yawning": 0.06},
        duration_range_s=(180, 480),
        objects={"wardrobe": 0.7},
        mobility=0.45,
    ),
    "dining": ActivityProfile(
        name="dining",
        sublocations={"SR4": 0.96, "SR12": 0.04},
        postural={"sitting": 0.9, "standing": 0.07, "walking": 0.03},
        gestural={"eating": 0.55, "talking": 0.3, "silent": 0.13, "laughing": 0.02},
        duration_range_s=(480, 1200),
        objects={"dining_chair": 0.6},
        mobility=0.08,
        shareable=True,
    ),
    "watching_tv": ActivityProfile(
        name="watching_tv",
        sublocations={"SR2": 0.55, "SR3": 0.4, "SR12": 0.05},
        postural={"sitting": 0.84, "lying": 0.11, "standing": 0.05},
        gestural={"silent": 0.5, "talking": 0.2, "laughing": 0.16, "eating": 0.09, "yawning": 0.05},
        duration_range_s=(600, 1800),
        objects={"tv_remote": 0.5},
        mobility=0.06,
        shareable=True,
    ),
    "prepare_food": ActivityProfile(
        name="prepare_food",
        sublocations={"SR10": 0.97, "SR4": 0.03},
        postural={"standing": 0.64, "walking": 0.32, "sitting": 0.04},
        gestural={"silent": 0.66, "talking": 0.26, "yawning": 0.08},
        duration_range_s=(240, 600),
        objects={"kettle": 0.65},
        mobility=0.5,
    ),
    "studying": ActivityProfile(
        name="studying",
        sublocations={"SR7": 0.94, "SR14": 0.06},
        postural={"sitting": 0.93, "standing": 0.05, "walking": 0.02},
        gestural={"silent": 0.8, "talking": 0.1, "yawning": 0.1},
        duration_range_s=(600, 1500),
        objects={"study_book": 0.55},
        mobility=0.05,
    ),
    "sleeping": ActivityProfile(
        name="sleeping",
        sublocations={"SR5": 1.0},
        postural={"lying": 0.97, "sitting": 0.03},
        gestural={"silent": 0.93, "yawning": 0.07},
        duration_range_s=(600, 1500),
        objects={"bed_frame": 0.5},
        mobility=0.01,
        shareable=True,
    ),
    "bathrooming": ActivityProfile(
        name="bathrooming",
        sublocations={"SR9": 1.0},
        postural={"standing": 0.7, "sitting": 0.25, "walking": 0.05},
        gestural={"silent": 0.96, "yawning": 0.04},
        duration_range_s=(240, 720),
        mobility=0.25,
        exclusive=True,
    ),
    "cooking": ActivityProfile(
        name="cooking",
        sublocations={"SR10": 0.89, "SR4": 0.03, "SR12": 0.08},
        postural={"standing": 0.58, "walking": 0.38, "sitting": 0.04},
        gestural={"silent": 0.6, "talking": 0.3, "yawning": 0.1},
        duration_range_s=(600, 1500),
        objects={"stove": 0.85, "kettle": 0.3},
        mobility=0.55,
    ),
    "past_times": ActivityProfile(
        name="past_times",
        sublocations={"SR11": 0.5, "SR2": 0.3, "SR12": 0.2},
        postural={"sitting": 0.6, "standing": 0.3, "walking": 0.1},
        gestural={"talking": 0.4, "laughing": 0.18, "silent": 0.34, "eating": 0.08},
        duration_range_s=(480, 1200),
        mobility=0.18,
        shareable=True,
    ),
    "random": ActivityProfile(
        name="random",
        sublocations={"SR13": 0.45, "SR12": 0.3, "SR14": 0.25},
        postural={"walking": 0.72, "standing": 0.28},
        gestural={"silent": 0.86, "talking": 0.1, "yawning": 0.04},
        duration_range_s=(30, 180),
        mobility=0.85,
    ),
}


def activity_profile(name: str) -> ActivityProfile:
    """Profile for macro activity *name* (raises KeyError on unknown names)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown macro activity {name!r}; known: {sorted(_PROFILES)}"
        ) from None


def all_profiles() -> Dict[str, ActivityProfile]:
    """A copy of the full profile table."""
    return dict(_PROFILES)
