"""Multi-inhabitant smart-home discrete-event simulator.

Drives resident agents along ground-truth timelines from the
:class:`~repro.home.behavior.BehaviorEngine` and polls the apartment's
ambient sensor fleet, producing (a) an unattributed ambient event stream —
PIR firings say *a* room is occupied, never *who* is there — and (b)
per-resident iBeacon fixes.  Ground truth is kept alongside for labelling,
mirroring the testbed's IP-camera annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.home.behavior import BehaviorEngine, MacroSegment, slice_at
from repro.home.layout import ApartmentLayout, default_layout
from repro.home.resident import Resident
from repro.sensors.events import EventStream, SensorEvent, TagManager
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive


@dataclass
class SimulationResult:
    """Everything one simulated session produced.

    Attributes
    ----------
    timelines:
        Ground truth: resident id -> macro segments (with micro slices).
    events:
        Ambient sensor stream (PIR + object events, after radio losses).
    beacon_fixes:
        resident id -> list of ``(t, position_estimate_or_None)`` sampled at
        ``fix_interval_s``.
    """

    home_id: str
    duration_s: float
    resident_ids: Tuple[str, ...]
    layout: ApartmentLayout
    timelines: Dict[str, List[MacroSegment]]
    events: EventStream
    beacon_fixes: Dict[str, List[Tuple[float, Optional[np.ndarray]]]]

    def truth_at(self, rid: str, t: float) -> Optional[Tuple[str, str, str, str]]:
        """Ground-truth ``(macro, posture, gesture, subloc)`` for *rid* at *t*."""
        seg_slice = slice_at(self.timelines[rid], t)
        if seg_slice is None:
            return None
        for seg in self.timelines[rid]:
            if seg.start <= t < seg.end:
                return (seg.activity, seg_slice.posture, seg_slice.gesture, seg_slice.subloc)
        return None


@dataclass
class HomeSimulator:
    """Runs sessions in one apartment.

    Parameters
    ----------
    sensor_tick_s:
        Ambient sensor polling period (1 s matches the testbed's event rate;
        raise it to trade fidelity for speed in large sweeps).
    fix_interval_s:
        iBeacon trilateration period per resident.
    """

    home_id: str = "home1"
    layout: ApartmentLayout = field(default_factory=default_layout)
    behavior: Optional[BehaviorEngine] = None
    sensor_tick_s: float = 1.0
    fix_interval_s: float = 5.0
    radio_loss_prob: float = 0.01
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("sensor_tick_s", self.sensor_tick_s)
        check_positive("fix_interval_s", self.fix_interval_s)
        self._rng = ensure_rng(self.seed)
        if self.behavior is None:
            self.behavior = BehaviorEngine(layout=self.layout, seed=self._rng.integers(0, 2**31))

    def run_session(
        self,
        resident_ids: Sequence[str] = ("resident_a", "resident_b"),
        duration_s: float = 7200.0,
        with_neck_tag: bool = True,
    ) -> SimulationResult:
        """Simulate one recording session and return its full trace."""
        check_positive("duration_s", duration_s)
        timelines = self.behavior.generate_session(resident_ids, duration_s)
        return self.run_timelines(timelines, duration_s, with_neck_tag=with_neck_tag)

    def run_timelines(
        self,
        timelines: Dict[str, List[MacroSegment]],
        duration_s: float,
        with_neck_tag: bool = True,
    ) -> SimulationResult:
        """Simulate the sensors over externally scripted ground truth.

        Used by the CASAS-style generator, whose task schedules are scripted
        rather than sampled from the behaviour engine.
        """
        check_positive("duration_s", duration_s)
        resident_ids = tuple(timelines)
        residents = {
            rid: Resident(
                resident_id=rid,
                layout=self.layout,
                has_neck_tag=with_neck_tag,
                seed=self._rng.integers(0, 2**31),
            )
            for rid in resident_ids
        }

        manager = TagManager(loss_prob=self.radio_loss_prob, seed=self._rng.integers(0, 2**31))
        beacon_fixes: Dict[str, List[Tuple[float, Optional[np.ndarray]]]] = {
            rid: [] for rid in resident_ids
        }
        for sensor in self.layout.pir_sensors:
            sensor.reset()
        for sensor in self.layout.motion_sensors:
            sensor.reset()

        next_fix = 0.0
        t = 0.0
        while t < duration_s:
            # -- advance residents along ground truth --------------------------
            room_moving: Dict[str, int] = {}
            room_still: Dict[str, int] = {}
            subloc_moving: Dict[str, int] = {}
            subloc_still: Dict[str, int] = {}
            subloc_intensity: Dict[str, Dict[str, float]] = {}
            for rid, resident in residents.items():
                truth = _truth_lookup(timelines[rid], t)
                if truth is None:
                    continue
                activity, posture, _gesture, subloc = truth
                resident.move_to_subloc(subloc)
                resident.jitter()
                room = self.layout.room_of(subloc)
                profile = self.behavior.profile(activity)
                moving = posture == "walking" or self._rng.random() < profile.mobility
                if moving:
                    room_moving[room] = room_moving.get(room, 0) + 1
                    subloc_moving[subloc] = subloc_moving.get(subloc, 0) + 1
                else:
                    room_still[room] = room_still.get(room, 0) + 1
                    subloc_still[subloc] = subloc_still.get(subloc, 0) + 1
                # Object interaction intensities at this resident's location.
                for obj, intensity in profile.objects.items():
                    per_obj = subloc_intensity.setdefault(subloc, {})
                    per_obj[obj] = max(per_obj.get(obj, 0.0), intensity)

            # -- ambient sensors -----------------------------------------------
            for pir in self.layout.pir_sensors:
                fired = pir.poll(
                    t,
                    occupants_moving=room_moving.get(pir.room, 0),
                    occupants_still=room_still.get(pir.room, 0),
                )
                if fired:
                    manager.deliver(SensorEvent(t, "pir", pir.sensor_id, pir.room))
            for motion in self.layout.motion_sensors:
                fired = motion.poll(
                    t,
                    occupants_moving=subloc_moving.get(motion.sub_region, 0),
                    occupants_still=subloc_still.get(motion.sub_region, 0),
                )
                if fired:
                    manager.deliver(
                        SensorEvent(t, "motion", motion.sensor_id, motion.sub_region)
                    )
            for obj_sensor in self.layout.object_sensors:
                intensity = subloc_intensity.get(obj_sensor.sub_region, {}).get(
                    obj_sensor.object_name, 0.0
                )
                if obj_sensor.poll(t, intensity):
                    manager.deliver(
                        SensorEvent(t, "object", obj_sensor.sensor_id, obj_sensor.object_name)
                    )

            # -- iBeacon fixes --------------------------------------------------
            if t >= next_fix:
                for rid, resident in residents.items():
                    beacon_fixes[rid].append((t, resident.localize()))
                next_fix = t + self.fix_interval_s

            t += self.sensor_tick_s

        return SimulationResult(
            home_id=self.home_id,
            duration_s=duration_s,
            resident_ids=tuple(resident_ids),
            layout=self.layout,
            timelines=timelines,
            events=manager.stream,
            beacon_fixes=beacon_fixes,
        )


def _truth_lookup(
    timeline: Sequence[MacroSegment], t: float
) -> Optional[Tuple[str, str, str, str]]:
    """(macro, posture, gesture, subloc) at time *t* from one timeline."""
    for seg in timeline:
        if seg.start <= t < seg.end:
            for sl in seg.slices:
                if sl.start <= t < sl.end:
                    return (seg.activity, sl.posture, sl.gesture, sl.subloc)
            last = seg.slices[-1]
            return (seg.activity, last.posture, last.gesture, last.subloc)
    return None
