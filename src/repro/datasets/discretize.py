"""Discretisation of raw simulation output into labelled context steps.

Implements the "context planar" + "state space creation" front half of the
paper's pipeline (Fig 2, steps 2-3): raw ambient events and beacon fixes are
windowed into fixed-period steps; each resident gets noisy wearable
classifications, a continuous emission vector, and a sub-location candidate
set derived from iBeacon trilateration (CACE mode) or PIR coverage alone
(CASAS mode, no beacons on the public data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.observation import MicroObservationModel
from repro.datasets.trace import (
    ContextStep,
    LabeledSequence,
    ResidentObservation,
    ResidentTruth,
)
from repro.home.simulator import SimulationResult
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive


@dataclass
class Discretizer:
    """Turns a :class:`SimulationResult` into a :class:`LabeledSequence`.

    Parameters
    ----------
    step_s:
        Context step period; 15 s balances label granularity against
        sequence length for the graphical models.
    candidate_radius_m:
        Sub-regions whose centre lies within this distance of the beacon
        position estimate join the candidate set.
    use_beacons:
        CACE mode (True) derives location candidates from trilateration;
        CASAS mode (False) uses PIR room coverage only.
    """

    step_s: float = 15.0
    candidate_radius_m: float = 2.5
    use_beacons: bool = True
    observation_model: Optional[MicroObservationModel] = None
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("step_s", self.step_s)
        check_positive("candidate_radius_m", self.candidate_radius_m)
        self._rng = ensure_rng(self.seed)
        if self.observation_model is None:
            self.observation_model = MicroObservationModel(
                seed=self._rng.integers(0, 2**31)
            )

    def discretize(self, sim: SimulationResult, with_gestural: bool = True) -> LabeledSequence:
        """Convert one simulated session into aligned steps + truths."""
        # Feature drift is per session: the wearable is re-donned each
        # recording, so the AR(1) disturbance restarts per (session, rid).
        self._session_counter = getattr(self, "_session_counter", 0) + 1
        layout = sim.layout
        n_steps = int(sim.duration_s // self.step_s)
        steps: List[ContextStep] = []
        truths: List[Dict[str, ResidentTruth]] = []

        # Pre-index beacon fixes per resident for binary search by time.
        fix_times: Dict[str, np.ndarray] = {}
        fix_positions: Dict[str, List[Optional[np.ndarray]]] = {}
        for rid, fixes in sim.beacon_fixes.items():
            fix_times[rid] = np.array([t for t, _ in fixes], dtype=float)
            fix_positions[rid] = [pos for _, pos in fixes]

        for i in range(n_steps):
            start = i * self.step_s
            end = start + self.step_s
            mid = 0.5 * (start + end)

            rooms = frozenset(sim.events.values_in_window("pir", start, end))
            objects = frozenset(sim.events.values_in_window("object", start, end))
            sublocs = frozenset(sim.events.values_in_window("motion", start, end))

            observations: Dict[str, ResidentObservation] = {}
            step_truth: Dict[str, ResidentTruth] = {}
            for rid in sim.resident_ids:
                truth = sim.truth_at(rid, mid)
                if truth is None:
                    # Past the end of a truncated timeline: hold the last state.
                    truth = sim.truth_at(rid, sim.duration_s - 1e-3) or (
                        "random",
                        "standing",
                        "silent",
                        "SR13",
                    )
                macro, posture, gesture, subloc = truth
                room = layout.room_of(subloc)
                step_truth[rid] = ResidentTruth(macro, posture, gesture, subloc, room)

                obs_posture = self.observation_model.observe_posture(posture)
                obs_gesture = (
                    self.observation_model.observe_gesture(gesture) if with_gestural else None
                )
                features = self.observation_model.sample_features(
                    posture,
                    gesture if with_gestural else None,
                    drift_key=f"{sim.home_id}:{rid}:{self._session_counter}",
                )
                candidates = self._subloc_candidates(
                    sim, layout, rid, mid, rooms, sublocs, fix_times, fix_positions
                )
                estimate = (
                    self._nearest_fix(rid, mid, fix_times, fix_positions)
                    if self.use_beacons
                    else None
                )
                observations[rid] = ResidentObservation(
                    posture=obs_posture,
                    gesture=obs_gesture,
                    features=features,
                    subloc_candidates=candidates,
                    position_estimate=(
                        (float(estimate[0]), float(estimate[1])) if estimate is not None else None
                    ),
                )

            steps.append(
                ContextStep(
                    t=mid,
                    observations=observations,
                    rooms_fired=rooms,
                    objects_fired=objects,
                    sublocs_fired=sublocs,
                )
            )
            truths.append(step_truth)

        return LabeledSequence(
            home_id=sim.home_id,
            resident_ids=sim.resident_ids,
            step_s=self.step_s,
            steps=steps,
            truths=truths,
        )

    # -- candidate derivation ----------------------------------------------------

    def _subloc_candidates(
        self,
        sim: SimulationResult,
        layout,
        rid: str,
        mid: float,
        rooms_fired: frozenset,
        sublocs_fired: frozenset,
        fix_times: Dict[str, np.ndarray],
        fix_positions: Dict[str, List[Optional[np.ndarray]]],
    ) -> Tuple[str, ...]:
        cands: set = set()
        if self.use_beacons:
            estimate = self._nearest_fix(rid, mid, fix_times, fix_positions)
            if estimate is not None:
                cands.update(
                    sr.sr_id
                    for sr in layout.sub_regions
                    if np.hypot(sr.center[0] - estimate[0], sr.center[1] - estimate[1])
                    <= self.candidate_radius_m
                )
        # Sub-location-granularity motion grid (CASAS mode): a firing means
        # that exact area is occupied by someone.
        if sublocs_fired:
            cands.update(sr_id for sr_id in sublocs_fired if sr_id in layout.sub_region_ids)
        # Fuse with room evidence: sub-regions of rooms with PIR activity.
        # With a motion grid the room channel is redundant (and far coarser),
        # so it only backstops steps where the grid stayed silent; beacon
        # deployments always fuse it to absorb trilateration noise.
        if rooms_fired and (self.use_beacons or not cands):
            cands.update(sr.sr_id for sr in layout.sub_regions if sr.room in rooms_fired)
        if cands:
            return tuple(sorted(cands))
        return tuple(layout.sub_region_ids)

    @staticmethod
    def _nearest_fix(
        rid: str,
        mid: float,
        fix_times: Dict[str, np.ndarray],
        fix_positions: Dict[str, List[Optional[np.ndarray]]],
    ) -> Optional[np.ndarray]:
        times = fix_times.get(rid)
        if times is None or len(times) == 0:
            return None
        idx = int(np.argmin(np.abs(times - mid)))
        return fix_positions[rid][idx]
