"""Per-user flat macro HMM — the Singla et al. [9] baseline.

"Built an individual HMM model for each user": one chain per resident over
the 11 macro activities, Gaussian emissions directly on the per-frame
wearable feature vector, no hierarchy, no location reasoning, no coupling.
This is also the paper's **NH** (Naive-HMM) pruning strategy: the full
macro state space with frame features directly labelled by macro activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.trace import Dataset, LabeledSequence
from repro.models.distributions import Cpt, GaussianEmission, LabelIndex
from repro.models.inputs import step_features
from repro.models.viterbi import forward_backward


@dataclass
class MacroHmm:
    """Flat HMM over macro activities, one independent chain per resident.

    Implements the :class:`~repro.core.api.Recognizer` surface (``decode``,
    ``posterior_marginals``, ``trellis_sessions``, ``step_filter``,
    ``last_stats``, ``describe``) so the engine and the serving layer treat
    the baseline exactly like the HDBN families.  Imports from
    :mod:`repro.core` stay lazy: this module is imported by the engine, so
    a top-level import would cycle through ``repro.core.__init__``.
    """

    alpha: float = 0.5
    macro_index: Optional[LabelIndex] = field(default=None, init=False)
    prior_: Optional[np.ndarray] = field(default=None, init=False)
    trans_: Optional[np.ndarray] = field(default=None, init=False)
    emission_: Optional[GaussianEmission] = field(default=None, init=False, repr=False)
    #: DecodeStats of the most recent decode/posterior call (None before).
    last_stats: Optional[object] = field(default=None, init=False)

    # -- training -------------------------------------------------------------

    def fit(self, train: Dataset) -> "MacroHmm":
        """Supervised estimation from labelled sequences."""
        self.macro_index = LabelIndex(train.macro_vocab)
        n_m = len(self.macro_index)
        prior_c = Cpt((n_m,), alpha=self.alpha)
        trans_c = Cpt((n_m, n_m), alpha=self.alpha)

        all_features: List[np.ndarray] = []
        all_states: List[int] = []
        for seq in train.sequences:
            for rid in seq.resident_ids:
                labels = [self.macro_index.index(m) for m in seq.macro_labels(rid)]
                if not labels:
                    continue
                prior_c.observe(labels[0])
                for a, b in zip(labels[:-1], labels[1:]):
                    trans_c.observe(a, b)
                all_features.append(step_features(seq, rid))
                all_states.extend(labels)

        self.prior_ = prior_c.probabilities()
        self.trans_ = trans_c.probabilities()
        features = np.vstack(all_features)
        self.emission_ = GaussianEmission(dim=features.shape[1]).fit(
            features, np.array(all_states)
        )
        return self

    # -- inference ----------------------------------------------------------------

    def _log_emissions(self, seq: LabeledSequence, rid: str) -> np.ndarray:
        features = step_features(seq, rid)
        n_m = len(self.macro_index)
        if features.shape[0] == 0:
            return np.zeros((0, n_m))
        return self.emission_.log_pdf_rows(range(n_m), features)

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Viterbi macro labels per resident (chains decoded independently)."""
        from repro.core.api import DecodeStats  # lazy: avoid an import cycle
        from repro.core.kernels import viterbi_path  # lazy: avoid a cycle
        from repro.obs import runtime as obs  # lazy: avoid a cycle

        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        with obs.timed_span(
            "decode",
            metric="decode.macro_hmm.seconds",
            counts={"decode.macro_hmm.steps": len(seq)},
            family="macro_hmm",
        ):
            self.last_stats = stats = DecodeStats()
            log_prior = np.log(self.prior_)
            log_trans = np.log(self.trans_)
            out: Dict[str, List[str]] = {}
            for rid in seq.resident_ids:
                log_e = self._log_emissions(seq, rid)
                stats.joint_states += log_e.size
                if log_e.shape[0] == 0:
                    out[rid] = []
                    continue
                with obs.span("trellis_sweep", family="macro_hmm", rid=rid):
                    path = viterbi_path(
                        log_prior + log_e[0],
                        list(log_e),
                        lambda t: log_trans,
                        stats,
                    )
                out[rid] = [self.macro_index.label(i) for i in path]
            stats.steps = len(seq)
            return out

    def predict(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Alias of :meth:`decode` (the baseline's historical name)."""
        return self.decode(seq)

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Posterior macro marginals ``(T, M)`` per resident."""
        from repro.core.api import DecodeStats  # lazy: avoid an import cycle

        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        self.last_stats = stats = DecodeStats()
        out: Dict[str, np.ndarray] = {}
        for rid in seq.resident_ids:
            log_e = self._log_emissions(seq, rid)
            stats.joint_states += log_e.size
            gamma, _, _ = forward_backward(np.log(self.prior_), np.log(self.trans_), log_e)
            out[rid] = gamma
        stats.steps = len(seq)
        return out

    def predict_proba(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Alias of :meth:`posterior_marginals`."""
        return self.posterior_marginals(seq)

    # -- Recognizer surface --------------------------------------------------------

    def trellis_sessions(self, seq: LabeledSequence) -> List["_HmmTrellis"]:
        """One independent session per resident."""
        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        return [_HmmTrellis(self, seq, rid) for rid in seq.resident_ids]

    def step_filter(self, lag: int = 0):
        """Fixed-lag smoother bound to this model."""
        from repro.core.api import make_step_filter  # lazy: avoid a cycle

        return make_step_filter(self, lag)

    def describe(self) -> str:
        """One-line summary for logs and CLIs."""
        states = len(self.macro_index) if self.macro_index is not None else "unfitted"
        return f"flat macro HMM, one chain per resident ({states} states)"


class _HmmTrellis:
    """Incremental-forward adapter over one resident's flat HMM chain."""

    def __init__(self, model: MacroHmm, seq: LabeledSequence, rid: str):
        self.model = model
        self.seq = seq
        self.rids: Tuple[str, ...] = (rid,)
        self._log_prior = np.log(model.prior_)
        self._log_trans = np.log(model.trans_)
        self._rows: Dict[int, np.ndarray] = {}

    def prepare(self, t0: int, t1: int) -> None:
        """Batch-score the emission rows for steps ``[t0, t1)`` with one
        stacked quadratic-form evaluation per state (bit-identical to the
        per-step path ``piece`` falls back to)."""
        model = self.model
        n_m = len(model.macro_index)
        rid = self.rids[0]
        t1 = min(t1, len(self.seq.steps))
        todo = [t for t in range(t0, t1) if t not in self._rows]
        if not todo:
            return
        feats = [
            np.asarray(self.seq.steps[t].observations[rid].features, dtype=float)
            for t in todo
        ]
        if len({x.shape[0] for x in feats}) != 1:
            return  # ragged feature dims: let piece() score them one by one
        rows = model.emission_.log_pdf_rows(range(n_m), np.stack(feats))
        for k, t in enumerate(todo):
            self._rows[t] = rows[k]

    def piece(self, t: int):
        from repro.core.api import TrellisPiece  # lazy: avoid a cycle

        scores = self._rows.pop(t, None)
        if scores is None:
            model = self.model
            n_m = len(model.macro_index)
            x = np.asarray(
                self.seq.steps[t].observations[self.rids[0]].features, dtype=float
            )
            scores = model.emission_.log_pdf_many(range(n_m), x)
        return TrellisPiece(scores=scores)

    def initial_alpha(self, piece) -> np.ndarray:
        return self._log_prior + piece.scores

    def transition(self, prev, cur) -> np.ndarray:
        return self._log_trans

    def labels(self, piece, gamma: np.ndarray) -> Dict[str, str]:
        return {self.rids[0]: self.model.macro_index.label(int(np.argmax(gamma)))}
