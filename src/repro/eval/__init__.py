"""Evaluation: metrics, experiment drivers, and paper-style reporting.

``repro.eval.experiments`` contains one function per table/figure of the
paper's evaluation section; each returns a structured result object whose
``render()`` reproduces the corresponding rows.
"""

from repro.eval.confusion import ConfusionMatrix
from repro.eval.metrics import (
    ClassMetrics,
    accuracy,
    evaluate_predictions,
    macro_metrics,
    prc_auc,
    roc_auc,
)

__all__ = [
    "ConfusionMatrix",
    "ClassMetrics",
    "accuracy",
    "evaluate_predictions",
    "macro_metrics",
    "prc_auc",
    "roc_auc",
]
