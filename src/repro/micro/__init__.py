"""Micro-activity recognition: features, classifiers, clustering.

Implements the paper's micro level (§VI-D/VII-E): 32 statistical features
(including Goertzel coefficients of 1-5 Hz) over 1.5 s frames of fused
acceleration trajectories, change-point-based segmentation, a from-scratch
random forest (the paper used WEKA's), and deterministic annealing
clustering used to fit the Gaussian observation models (Augmentation 4).
"""

from repro.micro.annealing import DeterministicAnnealing
from repro.micro.changepoint import detect_change_points, segment_stream
from repro.micro.decision_tree import DecisionTreeClassifier
from repro.micro.features import FEATURE_COUNT, extract_features, frame_signal
from repro.micro.goertzel import goertzel_power, goertzel_spectrum
from repro.micro.pipelines import MicroClassificationReport, MicroPipeline
from repro.micro.random_forest import RandomForestClassifier

__all__ = [
    "DeterministicAnnealing",
    "detect_change_points",
    "segment_stream",
    "DecisionTreeClassifier",
    "FEATURE_COUNT",
    "extract_features",
    "frame_signal",
    "goertzel_power",
    "goertzel_spectrum",
    "MicroClassificationReport",
    "MicroPipeline",
    "RandomForestClassifier",
]
