"""Start/end duration error (Table V's metric, after Tapia et al. [20]).

The paper: "consider that the true duration of cooking is 30 minutes
(10:05-10:35) and our algorithm predicts 10:10-10:39; then the start/end
duration error is 9 minutes (|5 min delayed start| + |4 min hastened end|),
an overall error of 30% (9/30)."  Predicted activity intervals are matched
to ground-truth intervals of the same label by maximal overlap (the "best
interval" approach), and the error is averaged over true segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Segment:
    """A maximal run of one activity label, in seconds."""

    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start

    def overlap(self, other: "Segment") -> float:
        """Overlap length with another segment."""
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))


def extract_segments(labels: Sequence[str], step_s: float) -> List[Segment]:
    """Collapse a per-step label sequence into maximal segments."""
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    segments: List[Segment] = []
    start = 0
    for i in range(1, len(labels) + 1):
        if i == len(labels) or labels[i] != labels[start]:
            segments.append(Segment(labels[start], start * step_s, i * step_s))
            start = i
    return segments


def match_segments(
    truth: List[Segment], predicted: List[Segment]
) -> List[Tuple[Segment, Optional[Segment]]]:
    """Best-interval matching: each true segment gets the same-label
    predicted segment with maximal overlap (or None)."""
    out: List[Tuple[Segment, Optional[Segment]]] = []
    for true_seg in truth:
        best: Optional[Segment] = None
        best_overlap = 0.0
        for pred_seg in predicted:
            if pred_seg.label != true_seg.label:
                continue
            ov = true_seg.overlap(pred_seg)
            if ov > best_overlap:
                best_overlap = ov
                best = pred_seg
        out.append((true_seg, best))
    return out


def duration_error(
    true_labels: Sequence[str],
    predicted_labels: Sequence[str],
    step_s: float,
    exclude: Sequence[str] = ("random",),
) -> float:
    """Mean relative start/end duration error over true segments.

    Unmatched true segments (activity never predicted with overlap) count
    as full misses (error 1.0).  Labels in *exclude* — the paper's filler
    "random" class — are not scored.
    """
    if len(true_labels) != len(predicted_labels):
        raise ValueError("label sequences must align")
    truth = [s for s in extract_segments(true_labels, step_s) if s.label not in exclude]
    predicted = extract_segments(predicted_labels, step_s)
    if not truth:
        return 0.0
    errors: List[float] = []
    for true_seg, match in match_segments(truth, predicted):
        if match is None:
            errors.append(1.0)
            continue
        err = (abs(match.start - true_seg.start) + abs(match.end - true_seg.end)) / max(
            true_seg.duration, 1e-9
        )
        errors.append(min(err, 1.0))
    return float(sum(errors) / len(errors))
