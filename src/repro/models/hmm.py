"""Per-user flat macro HMM — the Singla et al. [9] baseline.

"Built an individual HMM model for each user": one chain per resident over
the 11 macro activities, Gaussian emissions directly on the per-frame
wearable feature vector, no hierarchy, no location reasoning, no coupling.
This is also the paper's **NH** (Naive-HMM) pruning strategy: the full
macro state space with frame features directly labelled by macro activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.trace import Dataset, LabeledSequence
from repro.models.distributions import Cpt, GaussianEmission, LabelIndex
from repro.models.inputs import step_features
from repro.models.viterbi import forward_backward, viterbi_decode


@dataclass
class MacroHmm:
    """Flat HMM over macro activities, one independent chain per resident."""

    alpha: float = 0.5
    macro_index: Optional[LabelIndex] = field(default=None, init=False)
    prior_: Optional[np.ndarray] = field(default=None, init=False)
    trans_: Optional[np.ndarray] = field(default=None, init=False)
    emission_: Optional[GaussianEmission] = field(default=None, init=False, repr=False)

    # -- training -------------------------------------------------------------

    def fit(self, train: Dataset) -> "MacroHmm":
        """Supervised estimation from labelled sequences."""
        self.macro_index = LabelIndex(train.macro_vocab)
        n_m = len(self.macro_index)
        prior_c = Cpt((n_m,), alpha=self.alpha)
        trans_c = Cpt((n_m, n_m), alpha=self.alpha)

        all_features: List[np.ndarray] = []
        all_states: List[int] = []
        for seq in train.sequences:
            for rid in seq.resident_ids:
                labels = [self.macro_index.index(m) for m in seq.macro_labels(rid)]
                if not labels:
                    continue
                prior_c.observe(labels[0])
                for a, b in zip(labels[:-1], labels[1:]):
                    trans_c.observe(a, b)
                all_features.append(step_features(seq, rid))
                all_states.extend(labels)

        self.prior_ = prior_c.probabilities()
        self.trans_ = trans_c.probabilities()
        features = np.vstack(all_features)
        self.emission_ = GaussianEmission(dim=features.shape[1]).fit(
            features, np.array(all_states)
        )
        return self

    # -- inference ----------------------------------------------------------------

    def _log_emissions(self, seq: LabeledSequence, rid: str) -> np.ndarray:
        features = step_features(seq, rid)
        n_m = len(self.macro_index)
        out = np.zeros((features.shape[0], n_m))
        for t in range(features.shape[0]):
            out[t] = self.emission_.log_pdf_many(range(n_m), features[t])
        return out

    def predict(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Viterbi macro labels per resident (chains decoded independently)."""
        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        out: Dict[str, List[str]] = {}
        for rid in seq.resident_ids:
            log_e = self._log_emissions(seq, rid)
            path, _ = viterbi_decode(np.log(self.prior_), np.log(self.trans_), log_e)
            out[rid] = [self.macro_index.label(i) for i in path]
        return out

    def predict_proba(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Posterior macro marginals ``(T, M)`` per resident."""
        if self.macro_index is None:
            raise RuntimeError("model is not fitted")
        out: Dict[str, np.ndarray] = {}
        for rid in seq.resident_ids:
            log_e = self._log_emissions(seq, rid)
            gamma, _, _ = forward_backward(np.log(self.prior_), np.log(self.trans_), log_e)
            out[rid] = gamma
        return out
