"""Association and exclusion rules with support / confidence semantics.

A :class:`AssociationRule` ``<c1, ..., cn => R>`` asserts R holds whenever
all antecedent elements hold (paper §V-A); its quality is measured by
*support* (fraction of transactions containing antecedent and consequent)
and *confidence* (support / antecedent support).  An :class:`ExclusionRule`
captures deterministic *must-not* correlations — two frequent elements that
never co-occur (e.g. both residents in the single bathroom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set

from repro.mining.context_rules import Item, format_item


@dataclass(frozen=True)
class AssociationRule:
    """``antecedent => consequent`` with mined quality measures."""

    antecedent: FrozenSet[Item]
    consequent: Item
    support: float
    confidence: float

    def fires(self, items: FrozenSet[Item]) -> bool:
        """True when every antecedent element is present in *items*."""
        return self.antecedent.issubset(items)

    def satisfied_by(self, items: FrozenSet[Item]) -> bool:
        """True when the rule does not contradict *items*.

        A rule is violated only if it fires and *items* assigns the
        consequent's (slot, time, attr) a *different* value; an absent
        attribute is not a violation (open-world reading).
        """
        if not self.fires(items):
            return True
        if self.consequent in items:
            return True
        key = (self.consequent.slot, self.consequent.time, self.consequent.attr)
        for item in items:
            if (item.slot, item.time, item.attr) == key and item.value != self.consequent.value:
                return False
        return True

    def __str__(self) -> str:
        lhs = " & ".join(sorted(format_item(i) for i in self.antecedent))
        return f"{lhs} => {format_item(self.consequent)} (sup={self.support:.3f}, conf={self.confidence:.2f})"


@dataclass(frozen=True)
class ExclusionRule:
    """Two context elements that must not hold simultaneously.

    ``hard`` distinguishes physically grounded exclusions (two residents in
    one single-occupancy sub-location) from statistically mined behavioural
    ones (two macro activities never observed together).  Hard exclusions
    prune joint states outright; soft ones contribute a log penalty instead
    — a never-co-occurring macro pair in a finite training sample is strong
    negative correlation, not impossibility, and hard-pruning it mislabels
    entire segments on the day the residents break the pattern.
    """

    a: Item
    b: Item
    support_a: float
    support_b: float
    hard: bool = True

    def violated_by(self, items: FrozenSet[Item]) -> bool:
        """True when *items* contains both excluded elements."""
        return self.a in items and self.b in items

    def __str__(self) -> str:
        kind = "hard" if self.hard else "soft"
        return (
            f"{format_item(self.a)} => NOT {format_item(self.b)} "
            f"({kind}, sup {self.support_a:.3f}/{self.support_b:.3f})"
        )


def merge_redundant(rules: Iterable[AssociationRule]) -> List[AssociationRule]:
    """Drop rules implied by a more general rule with the same consequent.

    The paper merges "redundant (e.g., transitive) rules" before deploying
    them (47 final rules on CASAS).  A rule ``A => c`` is redundant when
    some kept rule ``B => c`` exists with ``B`` a proper subset of ``A`` and
    confidence at least as high.
    """
    by_consequent: dict = {}
    for rule in rules:
        by_consequent.setdefault(rule.consequent, []).append(rule)

    kept: List[AssociationRule] = []
    for group in by_consequent.values():
        # Most general (smallest antecedent), then most confident, first.
        group = sorted(group, key=lambda r: (len(r.antecedent), -r.confidence))
        chosen: List[AssociationRule] = []
        for rule in group:
            dominated = any(
                other.antecedent < rule.antecedent and other.confidence >= rule.confidence
                for other in chosen
            )
            if not dominated:
                chosen.append(rule)
        kept.extend(chosen)
    return kept


def rules_referencing(rules: Iterable[AssociationRule], attr: str) -> List[AssociationRule]:
    """Rules whose consequent concerns attribute *attr* (e.g. ``"macro"``)."""
    return [r for r in rules if r.consequent.attr == attr]


def vocabulary(rules: Iterable[AssociationRule]) -> Set[Item]:
    """All items mentioned anywhere in *rules*."""
    vocab: Set[Item] = set()
    for rule in rules:
        vocab.update(rule.antecedent)
        vocab.add(rule.consequent)
    return vocab
