"""CART decision tree classifier (from scratch, numpy).

The paper classifies micro activities with WEKA's random forest; this
environment has no ML library, so we implement CART with Gini impurity and
vectorised split search.  Trees support feature subsampling per node (for
the forest) and probability estimates from leaf class frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.util.rng import RandomState, ensure_rng


@dataclass
class _Node:
    """Internal tree node; leaves carry class probabilities."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    proba: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.proba is not None


def _gini_from_counts(counts: np.ndarray) -> np.ndarray:
    """Gini impurity for each row of class-count vectors."""
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(totals > 0, counts / totals, 0.0)
    return 1.0 - (p**2).sum(axis=-1)


@dataclass
class DecisionTreeClassifier:
    """CART classifier.

    Parameters
    ----------
    max_depth:
        Depth cap; None grows until purity / min_samples_split.
    min_samples_split:
        Minimum node size eligible for splitting.
    max_features:
        Features examined per split: None = all, otherwise a count
        (the forest passes ``sqrt(d)``).
    """

    max_depth: Optional[int] = None
    min_samples_split: int = 2
    max_features: Optional[int] = None
    seed: RandomState = None
    classes_: Optional[np.ndarray] = field(default=None, init=False)
    _root: Optional[_Node] = field(default=None, init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self._rng = ensure_rng(self.seed)

    # -- training ---------------------------------------------------------------

    def fit(self, x: np.ndarray, y: Sequence) -> "DecisionTreeClassifier":
        """Fit the tree on ``(n, d)`` features and labels *y*."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have equal length")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        self._root = self._grow(x, y_idx, depth=0)
        return self

    def _leaf(self, y_idx: np.ndarray) -> _Node:
        counts = np.bincount(y_idx, minlength=len(self.classes_)).astype(float)
        return _Node(proba=counts / counts.sum())

    def _grow(self, x: np.ndarray, y_idx: np.ndarray, depth: int) -> _Node:
        n = x.shape[0]
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.unique(y_idx).size == 1
        ):
            return self._leaf(y_idx)

        feature, threshold = self._best_split(x, y_idx)
        if feature < 0:
            return self._leaf(y_idx)

        mask = x[:, feature] <= threshold
        if not mask.any() or mask.all():
            return self._leaf(y_idx)
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(x[mask], y_idx[mask], depth + 1)
        node.right = self._grow(x[~mask], y_idx[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y_idx: np.ndarray) -> tuple:
        """Vectorised exhaustive split search over a feature subset."""
        n, d = x.shape
        n_classes = len(self.classes_)
        if self.max_features is not None and self.max_features < d:
            feature_ids = self._rng.choice(d, size=self.max_features, replace=False)
        else:
            feature_ids = np.arange(d)

        best_gain = 1e-12
        best = (-1, 0.0)
        parent_counts = np.bincount(y_idx, minlength=n_classes).astype(float)
        parent_gini = float(_gini_from_counts(parent_counts[None, :])[0])

        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), y_idx] = 1.0

        for f in feature_ids:
            order = np.argsort(x[:, f], kind="stable")
            xs = x[order, f]
            # Cumulative class counts left of each candidate boundary.
            left_counts = np.cumsum(onehot[order], axis=0)[:-1]
            right_counts = parent_counts[None, :] - left_counts
            # Valid boundaries: strictly between distinct feature values.
            valid = xs[1:] > xs[:-1]
            if not valid.any():
                continue
            n_left = np.arange(1, n)
            n_right = n - n_left
            gini_left = _gini_from_counts(left_counts)
            gini_right = _gini_from_counts(right_counts)
            weighted = (n_left * gini_left + n_right * gini_right) / n
            gain = parent_gini - weighted
            gain[~valid] = -np.inf
            idx = int(np.argmax(gain))
            if gain[idx] > best_gain:
                best_gain = float(gain[idx])
                best = (int(f), float(0.5 * (xs[idx] + xs[idx + 1])))
        return best

    # -- inference -----------------------------------------------------------------

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """``(n, n_classes)`` leaf class frequencies."""
        if self._root is None or self.classes_ is None:
            raise RuntimeError("tree is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.zeros((x.shape[0], len(self.classes_)))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.proba
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most-probable class labels."""
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)
