"""Multi-session serving over one fitted recogniser.

A deployment serves many concurrent streams — several homes, several
recording sessions — against a single loaded model artifact.  The
:class:`SessionRouter` owns that model and a bounded LRU table of live
sessions, each wrapped in its own
:class:`~repro.core.smoother.OnlineSmoother` (per-session smoothers keep
per-session :class:`~repro.core.api.DecodeStats`, so interleaved streams
never mix their counters — the smoother re-pins ``model.last_stats`` on
every push).

Steps are pushed as plain :class:`~repro.datasets.trace.ContextStep`
objects; the router appends them to a growing per-session sequence buffer
the smoother's trellis adapters read from, so arbitrary interleavings of
``push`` across sessions commit exactly the labels a sequential replay
would.  When the session table is full the least-recently-used session is
evicted: its lag window is flushed, its stats merged into the aggregate,
and its buffered state freed.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.api import DecodeStats, Recognizer
from repro.core.smoother import OnlineSmoother
from repro.datasets.trace import ContextStep, LabeledSequence
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry


@dataclass
class SessionState:
    """One live stream: its growing buffer, smoother, and committed labels."""

    seq: LabeledSequence
    smoother: OnlineSmoother
    #: Labels committed so far, in step order (one dict per committed step).
    committed: List[Dict[str, str]] = field(default_factory=list)

    @property
    def stats(self) -> DecodeStats:
        """This session's work accounting."""
        return self.smoother.stats

    @property
    def pushed(self) -> int:
        """Number of steps consumed so far."""
        return len(self.seq)

    def labels(self) -> Dict[str, List[str]]:
        """Committed labels pivoted per resident."""
        rids = self.smoother.residents
        return {rid: [step[rid] for step in self.committed] for rid in rids}


class SessionRouter:
    """Route interleaved context streams through per-session smoothers.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.api.Recognizer`, or a fitted
        :class:`~repro.core.engine.CaceEngine` (its ``model_`` is used).
    lag:
        Fixed-lag smoothing latency for every session (0 = filtering).
    max_sessions:
        Upper bound on concurrently open sessions; exceeding it evicts the
        least-recently-used session (flushing it first).
    metrics:
        Metrics destination.  ``None`` uses the process-wide registry when
        observability is enabled, else a private registry — so
        :meth:`metrics_snapshot` is always meaningful.  Every session's
        smoother reports into the same registry (aggregate latency
        histograms); per-session isolation stays in per-session
        :class:`DecodeStats`.
    """

    def __init__(
        self,
        model: Union[Recognizer, object],
        lag: int = 4,
        max_sessions: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        inner = getattr(model, "model_", model)
        if inner is None:
            raise ValueError("model is not fitted")
        if lag < 0:
            raise ValueError(f"lag must be >= 0, got {lag}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.model: Recognizer = inner
        self.lag = lag
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, SessionState]" = OrderedDict()
        #: Merged DecodeStats of every closed/evicted session.
        self.aggregate_stats = DecodeStats()
        #: Sessions evicted to honour ``max_sessions`` (observability).
        self.evicted = 0
        if metrics is None:
            metrics = obs.registry_if_enabled() or MetricsRegistry()
        self.metrics = metrics
        self._h_push = metrics.histogram("router.push_seconds")
        self._h_push_many = metrics.histogram("router.push_many_seconds")
        self._c_steps = metrics.counter("router.steps")
        self._c_opened = metrics.counter("router.sessions_opened")
        self._c_closed = metrics.counter("router.sessions_closed")
        self._c_evicted = metrics.counter("router.sessions_evicted")
        self._g_active = metrics.gauge("router.sessions_active")

    # -- session lifecycle ---------------------------------------------------------

    def open_session(
        self,
        session_id: str,
        resident_ids: Tuple[str, ...],
        step_s: float = 15.0,
    ) -> SessionState:
        """Explicitly open a session (``push`` auto-opens otherwise)."""
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        seq = LabeledSequence(
            home_id=session_id,
            resident_ids=tuple(resident_ids),
            step_s=step_s,
            steps=[],
            truths=[],
        )
        # Constructed directly (not via ``model.step_filter``) so every
        # session's smoother reports into the router's registry.
        smoother = OnlineSmoother(self.model, lag=self.lag, metrics=self.metrics)
        smoother.start(seq)
        state = SessionState(seq=seq, smoother=smoother)
        self._sessions[session_id] = state
        self._c_opened.inc()
        self._evict_over_capacity(keep=session_id)
        self._g_active.set(len(self._sessions))
        return state

    def push(self, session_id: str, step: ContextStep) -> Optional[Dict[str, str]]:
        """Consume one step for *session_id*; auto-opens on first step.

        Returns the labels committed by this push (the step ``lag`` behind
        the stream head), or None while the lag window is still filling.
        """
        t_push = time.perf_counter()
        state = self._sessions.get(session_id)
        if state is None:
            state = self.open_session(
                session_id, resident_ids=tuple(sorted(step.observations))
            )
        else:
            self._sessions.move_to_end(session_id)
        t = len(state.seq.steps)
        state.seq.steps.append(step)
        state.seq.truths.append({})
        labels = state.smoother.push(t)
        if labels is not None:
            state.committed.append(labels)
        self._c_steps.inc()
        self._h_push.observe(time.perf_counter() - t_push)
        return labels

    def push_many(
        self, session_id: str, steps: List[ContextStep]
    ) -> List[Optional[Dict[str, str]]]:
        """Consume a batch of steps for *session_id* in one call.

        The whole batch is appended to the session buffer first, so the
        smoother's trellis adapters batch-build their per-sequence
        evidence tables across the batch instead of re-dispatching per
        step.  Returns one entry per pushed step — exactly what
        step-by-step :meth:`push` would have returned (None entries while
        the lag window fills).
        """
        if not steps:
            return []
        t_push = time.perf_counter()
        state = self._sessions.get(session_id)
        if state is None:
            state = self.open_session(
                session_id, resident_ids=tuple(sorted(steps[0].observations))
            )
        else:
            self._sessions.move_to_end(session_id)
        t0 = len(state.seq.steps)
        for step in steps:
            state.seq.steps.append(step)
            state.seq.truths.append({})
        committed = state.smoother.push_many(range(t0, t0 + len(steps)))
        state.committed.extend(labels for labels in committed if labels is not None)
        self._c_steps.inc(len(steps))
        self._h_push_many.observe(time.perf_counter() - t_push)
        return committed

    def close_session(self, session_id: str) -> Dict[str, List[str]]:
        """Flush the lag window, free the session, return all its labels."""
        if session_id not in self._sessions:
            raise KeyError(f"unknown session {session_id!r}")
        state = self._sessions.pop(session_id)
        self._c_closed.inc()
        self._g_active.set(len(self._sessions))
        return self._finish(state)

    def close_all(self) -> Dict[str, Dict[str, List[str]]]:
        """Close every open session; labels keyed by session id."""
        out = {}
        while self._sessions:
            sid, state = self._sessions.popitem(last=False)
            self._c_closed.inc()
            out[sid] = self._finish(state)
        self._g_active.set(0)
        return out

    # -- introspection -------------------------------------------------------------

    def session(self, session_id: str) -> SessionState:
        """The live state of an open session (does not touch LRU order)."""
        return self._sessions[session_id]

    def session_ids(self) -> List[str]:
        """Open sessions, least-recently-used first."""
        return list(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def describe_dict(self) -> Dict[str, object]:
        """Structured router state: configuration, lifecycle counters, and
        per-session step counters (:meth:`describe` and
        :meth:`metrics_snapshot` both render from this)."""
        return {
            "lag": self.lag,
            "max_sessions": self.max_sessions,
            "open_sessions": len(self._sessions),
            "evicted": self.evicted,
            "model": self.model.describe(),
            "sessions": {
                sid: {"pushed": state.pushed, "committed": len(state.committed)}
                for sid, state in self._sessions.items()
            },
        }

    def describe(self) -> str:
        """One-line summary for logs and CLIs."""
        d = self.describe_dict()
        return (
            f"SessionRouter(lag={d['lag']}, "
            f"{d['open_sessions']}/{d['max_sessions']} sessions, "
            f"{d['evicted']} evicted): {d['model']}"
        )

    def metrics_snapshot(self) -> Dict[str, object]:
        """JSON-ready observability snapshot: structured router state, the
        full metrics registry (router gauges, push-latency histograms, the
        smoothers' lag-window instruments), and derived rates."""
        computed = self.metrics.counter("smoother.trans_blocks_computed").value
        reused = self.metrics.counter("smoother.trans_blocks_reused").value
        total = computed + reused
        return {
            "router": self.describe_dict(),
            "derived": {
                # Fraction of lag-window transition-block reads served by
                # the push-time cache instead of a recomputation.
                "smoother_trans_cache_hit_rate": (reused / total) if total else 0.0,
            },
            "metrics": self.metrics.snapshot(),
        }

    # -- internals -----------------------------------------------------------------

    def _finish(self, state: SessionState) -> Dict[str, List[str]]:
        state.committed.extend(state.smoother.flush())
        self.aggregate_stats.merge(state.stats)
        return state.labels()

    def _evict_over_capacity(self, keep: str) -> None:
        while len(self._sessions) > self.max_sessions:
            sid, state = next(iter(self._sessions.items()))
            if sid == keep:  # never evict the session we just opened
                self._sessions.move_to_end(sid)
                continue
            del self._sessions[sid]
            self._finish(state)
            self.evicted += 1
            self._c_evicted.inc()
