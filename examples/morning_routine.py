"""A coupled two-resident morning: simulation, mining, and recognition.

Walks through the full Fig 2 pipeline on one home: simulate a naturalistic
coupled morning routine, inspect the ambient sensor stream, mine the
behavioural rules the residents exhibit (Table IV style), and decode the
session with the loosely-coupled HDBN — showing where the partner's context
fixes otherwise-ambiguous steps.

Run:  python examples/morning_routine.py
"""

from collections import Counter

from repro.core import CaceEngine
from repro.datasets import generate_cace_dataset, train_test_split


def timeline_bar(labels, width_per_step=1):
    """Compress a label sequence into segment descriptions."""
    segments = []
    start = 0
    for i in range(1, len(labels) + 1):
        if i == len(labels) or labels[i] != labels[start]:
            segments.append((labels[start], start, i))
            start = i
    return segments


def main() -> None:
    dataset = generate_cace_dataset(
        n_homes=3, sessions_per_home=4, duration_s=2400.0, seed=2024
    )
    train, test = train_test_split(dataset, 0.7, seed=3)

    seq = test.sequences[0]
    r1, r2 = seq.resident_ids
    print(f"Session in {seq.home_id}: residents {r1} and {r2}, "
          f"{len(seq)} steps of {seq.step_s:.0f}s")

    # -- what did the ambient sensors see? ---------------------------------
    rooms = Counter()
    objects = Counter()
    for step in seq.steps:
        rooms.update(step.rooms_fired)
        objects.update(step.objects_fired)
    print("\nPIR activity by room:", dict(rooms.most_common()))
    print("Object-sensor firings:", dict(objects.most_common()))

    # -- mine the behavioural structure -------------------------------------
    engine = CaceEngine(strategy="c2", seed=5)
    engine.fit(train)
    print(f"\nMined rules ({engine.rule_set_.n_rules} total). Behavioural highlights:")
    shown = 0
    for rule in engine.rule_set_.forcing_rules:
        if rule.confidence >= 0.999 and len(rule.antecedent) <= 2:
            print(f"  {rule}")
            shown += 1
            if shown >= 5:
                break
    for excl in engine.rule_set_.exclusions[:3]:
        print(f"  {excl}")

    # -- decode and compare both residents' timelines -----------------------
    predicted = engine.predict(seq)
    print("\nGround-truth vs decoded timelines:")
    for rid in (r1, r2):
        gold = seq.macro_labels(rid)
        pred = predicted[rid]
        acc = sum(p == g for p, g in zip(pred, gold)) / len(gold)
        print(f"\n  {rid} (accuracy {acc:.1%}):")
        for label, start, end in timeline_bar(gold):
            span = f"{seq.steps[start].t / 60:5.1f}-{seq.steps[end - 1].t / 60:5.1f} min"
            decoded = Counter(pred[start:end]).most_common(1)[0][0]
            flag = "" if decoded == label else f"  (decoded mostly as {decoded})"
            print(f"    {span}  {label}{flag}")

    # -- shared activities ----------------------------------------------------
    gold1, gold2 = seq.macro_labels(r1), seq.macro_labels(r2)
    shared_steps = [i for i in range(len(seq)) if gold1[i] == gold2[i]]
    if shared_steps:
        ok = sum(
            predicted[r1][i] == gold1[i] and predicted[r2][i] == gold2[i]
            for i in shared_steps
        )
        print(f"\nShared-activity steps: {len(shared_steps)} "
              f"({ok / len(shared_steps):.0%} recognised for both residents)")


if __name__ == "__main__":
    main()
