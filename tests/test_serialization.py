"""Round-trip tests for JSON serialisation and the CASAS ADLMR format."""

import io
from datetime import datetime

import numpy as np
import pytest

from repro.datasets.cace import generate_cace_dataset
from repro.datasets.casas import CASAS_TASKS, generate_casas_dataset
from repro.datasets.casas_format import (
    CasasEvent,
    default_sensor_map,
    events_to_sequence,
    parse_line,
    read_events,
    sequence_to_events,
    write_events,
)
from repro.mining.correlation_miner import CorrelationMiner
from repro.util.serialization import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    load_rule_set,
    rule_set_from_dict,
    rule_set_to_dict,
    save_dataset,
    save_rule_set,
)


@pytest.fixture(scope="module")
def small_dataset():
    return generate_cace_dataset(
        n_homes=1, sessions_per_home=2, duration_s=900.0, seed=41
    )


@pytest.fixture(scope="module")
def rule_set(small_dataset):
    return CorrelationMiner(min_support=0.08).mine(small_dataset.sequences)


class TestRuleSetRoundTrip:
    def test_dict_round_trip_preserves_rules(self, rule_set):
        restored = rule_set_from_dict(rule_set_to_dict(rule_set))
        assert len(restored.forcing_rules) == len(rule_set.forcing_rules)
        assert {(r.antecedent, r.consequent) for r in restored.forcing_rules} == {
            (r.antecedent, r.consequent) for r in rule_set.forcing_rules
        }
        assert {frozenset((e.a, e.b)) for e in restored.exclusions} == {
            frozenset((e.a, e.b)) for e in rule_set.exclusions
        }

    def test_hardness_preserved(self, rule_set):
        restored = rule_set_from_dict(rule_set_to_dict(rule_set))
        assert [e.hard for e in restored.exclusions] == [
            e.hard for e in rule_set.exclusions
        ]

    def test_file_round_trip(self, rule_set, tmp_path):
        path = tmp_path / "rules.json"
        save_rule_set(rule_set, path)
        restored = load_rule_set(path)
        assert restored.n_rules == rule_set.n_rules

    def test_consistency_checks_survive(self, rule_set):
        restored = rule_set_from_dict(rule_set_to_dict(rule_set))
        # The trigger indexes must be rebuilt so pruning still works.
        for rule in restored.forcing_rules[:5]:
            items = frozenset(rule.antecedent) | {rule.consequent}
            assert restored.is_consistent(items)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            rule_set_from_dict({"schema": "bogus/9"})


class TestDatasetRoundTrip:
    def test_dict_round_trip(self, small_dataset):
        restored = dataset_from_dict(dataset_to_dict(small_dataset))
        assert restored.name == small_dataset.name
        assert restored.macro_vocab == small_dataset.macro_vocab
        assert len(restored.sequences) == len(small_dataset.sequences)
        a = small_dataset.sequences[0]
        b = restored.sequences[0]
        assert a.resident_ids == b.resident_ids
        assert len(a) == len(b)
        for t in range(len(a)):
            assert a.steps[t].rooms_fired == b.steps[t].rooms_fired
            assert a.steps[t].sublocs_fired == b.steps[t].sublocs_fired
            for rid in a.resident_ids:
                oa, ob = a.steps[t].observations[rid], b.steps[t].observations[rid]
                assert oa.posture == ob.posture
                assert np.allclose(oa.features, ob.features)
                assert a.truths[t][rid] == b.truths[t][rid]

    def test_file_round_trip_and_training(self, small_dataset, tmp_path):
        path = tmp_path / "corpus.json"
        save_dataset(small_dataset, path)
        restored = load_dataset(path)
        # The restored corpus must be usable for training, not just reading.
        from repro.core.engine import CaceEngine
        from repro.datasets.trace import train_test_split

        train, test = train_test_split(restored, 0.5, seed=3)
        engine = CaceEngine(strategy="ncs", seed=1)
        engine.fit(train)
        pred = engine.predict(test.sequences[0])
        assert set(pred) == set(test.sequences[0].resident_ids)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_dict({"schema": "bogus/9"})


class TestAdlmrFormat:
    def test_parse_line(self):
        event = parse_line("2009-02-02 12:28:06.843806\tM13\tON\t1\t2")
        assert event.sensor_id == "M13"
        assert event.value == "ON"
        assert event.resident == 1
        assert event.task == 2
        assert event.timestamp == datetime(2009, 2, 2, 12, 28, 6, 843806)

    def test_parse_skips_blank_and_comment(self):
        assert parse_line("") is None
        assert parse_line("# header") is None

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_line("2009-02-02 12:28:06 M13 ON")

    def test_write_read_round_trip(self):
        events = [
            CasasEvent(datetime(2009, 2, 2, 12, 0, 0, 500000), "M04", "ON", 1, 3),
            CasasEvent(datetime(2009, 2, 2, 12, 0, 15), "I_broom", "ON", 2, 6),
        ]
        buffer = io.StringIO()
        write_events(events, buffer)
        buffer.seek(0)
        restored = read_events(buffer)
        assert restored == events

    def test_export_then_import_casas_session(self):
        dataset = generate_casas_dataset(
            n_pairs=1, sessions_per_pair=1, duration_scale=0.3, seed=13
        )
        seq = dataset.sequences[0]
        task_index = {name: i + 1 for i, name in enumerate(CASAS_TASKS)}
        events = sequence_to_events(seq, task_index)
        assert events, "export produced no events"

        task_names = {i: name for name, i in task_index.items()}
        restored = events_to_sequence(
            events, default_sensor_map(), task_names, step_s=seq.step_s, seed=3
        )
        assert len(restored.resident_ids) == 2
        # Macro labels recovered from the task annotations should agree with
        # the original ground truth on a solid majority of steps (boundary
        # steps shift by one discretisation window).
        n = min(len(seq), len(restored))
        agreements = []
        for orig_rid in seq.resident_ids:
            best = 0.0
            for rest_rid in restored.resident_ids:
                agree = np.mean(
                    [
                        seq.truths[t][orig_rid].macro
                        == restored.truths[t][rest_rid].macro
                        for t in range(n)
                    ]
                )
                best = max(best, float(agree))
            agreements.append(best)
        assert np.mean(agreements) > 0.7

    def test_import_requires_events(self):
        with pytest.raises(ValueError):
            events_to_sequence([], default_sensor_map(), {})

    def test_sensor_map_covers_all_subregions(self):
        mapping = default_sensor_map()
        assert len(mapping) == 14
        assert mapping["M04"] == "SR4"
        assert mapping["M10"] == "SR10"
