"""CACE-style dataset generation (paper §VII-B/C).

Reproduces the shape of the paper's own corpus: five smart homes, each
inhabited by one resident pair, recorded over many ~2 h morning sessions
with the full sensor complement (postural + gestural wearables at 50 Hz
equivalent, PIR, object sensors, iBeacons).  Each home gets its own
"personality" — perturbed routine weights and freshly seeded sensors — so
cross-home variation (Fig 8a) is present.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.datasets.discretize import Discretizer
from repro.datasets.observation import MicroObservationModel
from repro.datasets.trace import Dataset
from repro.home.activities import (
    GESTURAL_ACTIVITIES,
    MACRO_ACTIVITIES,
    POSTURAL_ACTIVITIES,
)
from repro.home.behavior import BehaviorEngine
from repro.home.layout import default_layout
from repro.home.simulator import HomeSimulator
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive


def _home_personality(rng: np.random.Generator, resident_ids) -> Dict[str, Dict[str, float]]:
    """Per-resident routine-weight multipliers giving each home character."""
    personality: Dict[str, Dict[str, float]] = {}
    for rid in resident_ids:
        personality[rid] = {
            activity: float(np.exp(rng.normal(0.0, 0.25)))
            for activity in MACRO_ACTIVITIES
            if activity != "random"
        }
    return personality


def generate_cace_dataset(
    n_homes: int = 5,
    sessions_per_home: int = 6,
    duration_s: float = 3600.0,
    step_s: float = 15.0,
    with_gestural: bool = True,
    sensor_tick_s: float = 1.0,
    residents_per_home: int = 2,
    observation_model: Optional[MicroObservationModel] = None,
    seed: RandomState = None,
) -> Dataset:
    """Generate the CACE-style corpus.

    Parameters mirror the paper's collection: ``n_homes=5`` resident pairs,
    multiple sessions per home (the paper recorded ~2 h/day over a month;
    defaults here are scaled down so experiments run in seconds — raise
    ``sessions_per_home`` / ``duration_s`` for paper-scale runs).

    Setting ``with_gestural=False`` regenerates the corpus without the neck
    tag, the "without gestural" ablation of Fig 8(a).

    ``residents_per_home`` above 2 exercises the paper's conjecture that
    the framework handles 3-4 occupants (decoded by
    :class:`~repro.core.loosely_coupled.NChainHdbn`).
    """
    check_positive("n_homes", n_homes)
    check_positive("sessions_per_home", sessions_per_home)
    check_positive("residents_per_home", residents_per_home)
    rng = ensure_rng(seed)

    sequences = []
    for h in range(1, n_homes + 1):
        home_id = f"home{h}"
        resident_ids = tuple(
            f"h{h}_{chr(ord('a') + i)}" for i in range(residents_per_home)
        )
        layout = default_layout(seed=rng.integers(0, 2**31))
        behavior = BehaviorEngine(
            layout=layout,
            routine_weights=_home_personality(rng, resident_ids),
            seed=rng.integers(0, 2**31),
        )
        simulator = HomeSimulator(
            home_id=home_id,
            layout=layout,
            behavior=behavior,
            sensor_tick_s=sensor_tick_s,
            seed=rng.integers(0, 2**31),
        )
        discretizer = Discretizer(
            step_s=step_s,
            use_beacons=True,
            observation_model=observation_model,
            seed=rng.integers(0, 2**31),
        )
        for _ in range(sessions_per_home):
            sim = simulator.run_session(
                resident_ids=resident_ids,
                duration_s=duration_s,
                with_neck_tag=with_gestural,
            )
            sequences.append(discretizer.discretize(sim, with_gestural=with_gestural))

    layout = default_layout()
    return Dataset(
        name="cace" if with_gestural else "cace-no-gestural",
        sequences=sequences,
        macro_vocab=MACRO_ACTIVITIES,
        postural_vocab=POSTURAL_ACTIVITIES,
        gestural_vocab=GESTURAL_ACTIVITIES,
        subloc_vocab=tuple(layout.sub_region_ids),
        has_gestural=with_gestural,
        metadata={
            "n_homes": n_homes,
            "sessions_per_home": sessions_per_home,
            "duration_s": duration_s,
            "step_s": step_s,
            "residents_per_home": residents_per_home,
        },
    )
