"""Unified sensor event stream — the Ethernet-tag-manager analogue.

Every ambient sensor reading in a simulation becomes a :class:`SensorEvent`;
:class:`EventStream` stores them time-ordered and supports the windowed
queries the context pipeline needs ("which rooms fired PIR in [t, t+w)?").
:class:`TagManager` models the radio hop: per-event loss and latency jitter
before events reach the stream, which exercises the missing-sensor-value
robustness path the paper motivates.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_non_negative, check_probability


@dataclass(frozen=True, order=True)
class SensorEvent:
    """One timestamped sensor reading.

    ``kind`` is one of ``"pir"``, ``"object"``, ``"beacon"``, ``"imu_frame"``;
    ``value`` is kind-specific (room name, object name, sub-region, ...).
    """

    t: float
    kind: str
    sensor_id: str
    value: str
    payload: Optional[tuple] = None


class EventStream:
    """Time-ordered container of :class:`SensorEvent` with window queries."""

    def __init__(self, events: Optional[Iterable[SensorEvent]] = None) -> None:
        self._events: List[SensorEvent] = sorted(events) if events else []
        self._times: List[float] = [e.t for e in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SensorEvent]:
        return iter(self._events)

    def append(self, event: SensorEvent) -> None:
        """Insert an event, preserving time order."""
        idx = bisect.bisect_right(self._times, event.t)
        self._events.insert(idx, event)
        self._times.insert(idx, event.t)

    def extend(self, events: Iterable[SensorEvent]) -> None:
        """Insert many events."""
        for event in events:
            self.append(event)

    def window(self, start: float, end: float) -> List[SensorEvent]:
        """Events with ``start <= t < end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._events[lo:hi]

    def of_kind(self, kind: str) -> "EventStream":
        """Sub-stream of a single sensor kind."""
        return EventStream(e for e in self._events if e.kind == kind)

    def values_in_window(self, kind: str, start: float, end: float) -> Set[str]:
        """Distinct ``value`` strings of *kind* events inside the window."""
        return {e.value for e in self.window(start, end) if e.kind == kind}

    def filter(self, predicate: Callable[[SensorEvent], bool]) -> "EventStream":
        """Sub-stream of events satisfying *predicate*."""
        return EventStream(e for e in self._events if predicate(e))

    @property
    def span(self) -> tuple:
        """``(first_t, last_t)`` of the stream (0, 0 when empty)."""
        if not self._events:
            return (0.0, 0.0)
        return (self._times[0], self._times[-1])

    def counts_by_kind(self) -> Dict[str, int]:
        """Event tally per kind — handy in tests and reports."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


@dataclass
class TagManager:
    """Radio hop between sensors and the event stream.

    Applies independent per-event loss and Gaussian latency jitter, modelling
    the testbed's wireless tag manager; lost events simply never arrive,
    which is how missing sensor values enter the pipeline.
    """

    stream: EventStream = field(default_factory=EventStream)
    loss_prob: float = 0.01
    latency_std_s: float = 0.05
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)
    dropped: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_probability("loss_prob", self.loss_prob)
        check_non_negative("latency_std_s", self.latency_std_s)
        self._rng = ensure_rng(self.seed)

    def deliver(self, event: SensorEvent) -> bool:
        """Attempt delivery; returns False when the event is lost."""
        if self._rng.random() < self.loss_prob:
            self.dropped += 1
            return False
        jitter = abs(self._rng.normal(0.0, self.latency_std_s))
        delivered = SensorEvent(
            t=event.t + jitter,
            kind=event.kind,
            sensor_id=event.sensor_id,
            value=event.value,
            payload=event.payload,
        )
        self.stream.append(delivered)
        return True
