"""Shared per-state emission scoring for the HDBN family.

All three recognisers (single-user HDBN, coupled pair HDBN, N-chain HDBN)
score a hypothesised ``(macro, subloc)`` state against one resident's
step evidence in exactly the same way:

* observed postural / oral-gestural micro context via per-macro occupancy
  CPTs (the tier-1 wearable classifiers' outputs);
* the continuous feature vector via per-macro Gaussian mixtures whose
  components come from deterministic annealing (Augmentation 4);
* unattributed object-sensor evidence via per-macro Bernoulli CPTs;
* soft location evidence from the fused iBeacon / ambient candidate set,
  a per-step ``log P(subloc | macro)`` occupancy coupling, and a penalty
  for hypothesising a room whose PIR is silent while others fire.

Missing-modality robustness: any individual channel may be absent at a
given step (``posture=None``, ``gesture=None``, NaNs in the feature
vector) — the corresponding term is simply dropped, which is exact
marginalisation under the model's factorised emission.
"""

from __future__ import annotations

from typing import Dict, List, Protocol

import numpy as np

from repro.core.state_space import UserState, _ROOM_OF
from repro.datasets.trace import LabeledSequence
from repro.models.chmm import soft_location_log_evidence


class EmissionScorer(Protocol):
    """What a recogniser must expose for :func:`user_state_emissions`.

    ``CoupledHdbn``, ``SingleUserHdbn`` and ``NChainHdbn`` all satisfy this
    protocol structurally; the attributes are filled during construction /
    ``fit``.
    """

    constraint_model: object
    use_feature_gmm: bool
    pir_miss_penalty: float
    gmms_: Dict[int, object]


def object_log_evidence(
    object_index: Dict[str, int],
    log_table: np.ndarray,
    macro_idx: int,
    objects_fired,
) -> float:
    """Sum of per-object Bernoulli log likelihoods for one macro."""
    if not object_index:
        return 0.0
    total = 0.0
    for obj, o in object_index.items():
        total += log_table[macro_idx, o, 1 if obj in objects_fired else 0]
    return float(total)


def user_state_emissions(
    model: EmissionScorer,
    seq: LabeledSequence,
    rid: str,
    t: int,
    states: List[UserState],
) -> np.ndarray:
    """Log emission score of each candidate state for one resident/step."""
    cm = model.constraint_model
    step = seq.steps[t]
    obs = step.observations[rid]
    x = np.asarray(obs.features, dtype=float)
    features_ok = model.use_feature_gmm and x.size > 0 and not np.isnan(x).any()
    p_idx = (
        cm.posture_index.index(obs.posture)
        if (obs.posture is not None and obs.posture in cm.posture_index)
        else None
    )
    g_idx = (
        cm.gesture_index.index(obs.gesture)
        if (
            cm.gesture_index is not None
            and obs.gesture is not None
            and obs.gesture in cm.gesture_index
        )
        else None
    )
    loc_weight = soft_location_log_evidence(
        cm.subloc_index, obs.position_estimate, obs.subloc_candidates
    )

    macro_cache: Dict[int, float] = {}
    out = np.empty(len(states))
    for i, state in enumerate(states):
        m = cm.macro_index.index(state.macro)
        l = cm.subloc_index.index(state.subloc)
        if m not in macro_cache:
            score = 0.0
            if p_idx is not None:
                score += model._log_posture[m, p_idx]
            if g_idx is not None and model._log_gesture is not None:
                score += model._log_gesture[m, g_idx]
            if features_ok:
                gmm = model.gmms_.get(m)
                if gmm is not None:
                    score += gmm.log_pdf(x)
            score += object_log_evidence(
                getattr(model, "_object_index", {}),
                getattr(model, "_log_obj", np.zeros((0, 0, 2))),
                m,
                step.objects_fired,
            )
            macro_cache[m] = score
        # log P(subloc | macro) occupancy couples the hypothesised location
        # to the macro at every step (product-of-experts strengthening of
        # the boundary-only reset coupling; without it, macro-location
        # agreement enters once per segment and is drowned by accumulated
        # per-step feature noise).
        score = macro_cache[m] + loc_weight[l] + model._log_subloc_occ[m, l]
        room = _ROOM_OF.get(state.subloc)
        if step.rooms_fired and room not in step.rooms_fired:
            score += model.pir_miss_penalty
        out[i] = score
    return out
