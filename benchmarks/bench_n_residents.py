"""Bench: occupancy scaling — 2 vs 3 residents (the paper's conjecture).

The paper's experiments cover resident pairs; its conclusion claims the
framework extends to 3-4 occupants.  This bench measures accuracy and
decode cost as occupancy grows, exercising the N-chain loosely-coupled
HDBN and documenting how the pruned joint trellis scales.
"""

from benchmarks.conftest import record
from repro.core.engine import CaceEngine
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import train_test_split
from repro.util.rng import ensure_rng


def run_scaling(seed=7):
    rows = {}
    for residents in (2, 3):
        rng = ensure_rng(seed + residents)
        dataset = generate_cace_dataset(
            n_homes=2,
            sessions_per_home=4,
            duration_s=2700.0,
            residents_per_home=residents,
            seed=rng.integers(0, 2**31),
        )
        train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))
        engine = CaceEngine(strategy="c2", seed=rng.integers(0, 2**31))
        engine.fit(train)
        correct = n = 0
        joint = steps = 0
        for seq in test.sequences:
            pred = engine.predict(seq)
            stats = engine.model_.last_stats
            joint += stats.joint_states
            steps += stats.steps
            for rid in seq.resident_ids:
                truth = seq.macro_labels(rid)
                correct += sum(a == b for a, b in zip(truth, pred[rid]))
                n += len(truth)
        rows[residents] = {
            "accuracy": correct / n,
            "decode_seconds": engine.decode_seconds,
            "mean_joint_states": joint / max(steps, 1),
        }
    return rows


def test_occupancy_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, kwargs={"seed": 7}, rounds=1, iterations=1)
    lines = ["Occupancy scaling (C2 strategy)"]
    lines.append(f"{'residents':>10s} {'accuracy':>9s} {'decode':>8s} {'joint/step':>11s}")
    for residents, row in rows.items():
        lines.append(
            f"{residents:10d} {row['accuracy'] * 100:8.1f}% "
            f"{row['decode_seconds']:7.2f}s {row['mean_joint_states']:10.0f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    record("n_residents", text)

    # Both occupancies must stay usable; the trellis must stay bounded.
    assert rows[2]["accuracy"] > 0.75
    assert rows[3]["accuracy"] > 0.6
    assert rows[3]["mean_joint_states"] < 500
