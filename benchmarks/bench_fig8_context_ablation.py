"""Bench: Fig 8(a) context ablation and Fig 8(b) cost curves.

Paper 8(a): overall ~95.1% > without gestural ~89.7% > without
sub-location ~80.5%, consistently across the five homes.
Paper 8(b): precision/recall trade off against FP rate as the classifier's
decision cost varies.
"""

from benchmarks.conftest import record, workload
from repro.eval.experiments import fig8a_context_ablation, fig8b_cost_curves


def test_fig8a_context_ablation(benchmark):
    params = workload()
    result = benchmark.pedantic(
        fig8a_context_ablation,
        kwargs={
            "n_homes": params["n_homes"],
            "sessions_per_home": params["sessions_per_home"],
            "duration_s": params["duration_s"],
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("fig8a", result.render())
    # Ablation ordering: every removed context channel costs accuracy.
    assert result.overall["overall"] > result.overall["without_gestural"]
    assert result.overall["without_gestural"] > result.overall["without_sublocation"]


def test_fig8b_cost_curves(benchmark):
    result = benchmark.pedantic(
        fig8b_cost_curves,
        kwargs={"n_homes": 2, "sessions_per_home": 4, "duration_s": 2100.0, "seed": 7},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("fig8b", result.render())
    fp_rates = [p[0] for p in result.points]
    recalls = [p[2] for p in result.points]
    # Raising the decision threshold trades recall for a lower FP rate.
    assert fp_rates[-1] <= fp_rates[0] + 1e-9
    assert recalls[-1] <= recalls[0] + 1e-9
