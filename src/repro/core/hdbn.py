"""Single-inhabitant HDBN (paper §IV-C, Eqn 1).

One hierarchical chain: hidden ``(macro, subloc)`` with the same
end-of-sequence-marker transition semantics as the coupled model, but the
macro transition is the *uncoupled* table and no partner context exists.
Besides the N=1 use case, this model is the engine of the paper's **NCR**
strategy — per-user rule pruning without any inter-user coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.emissions import user_state_emissions
from repro.core.state_space import StateSpaceBuilder, UserState, _ROOM_OF
from repro.datasets.trace import Dataset, LabeledSequence
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.models.chmm import soft_location_log_evidence
from repro.util.rng import RandomState, ensure_rng

_TINY = 1e-12
_PIR_MISS_PENALTY = -1.5


@dataclass
class SingleUserHdbn:
    """Hierarchical DBN for one resident's chain."""

    constraint_model: ConstraintModel
    rule_set: Optional[CorrelationRuleSet] = None
    gmm_components: int = 4
    max_states_per_user: int = 36
    min_change_prob: float = 1e-4
    use_feature_gmm: bool = True
    pir_miss_penalty: float = _PIR_MISS_PENALTY
    #: NCR runs frame-wise (the paper's two-fold rule-prune-then-classify
    #: approach has no temporal chaining); set True for a true 1-chain HDBN.
    temporal: bool = True
    seed: RandomState = None
    builder: StateSpaceBuilder = field(default=None, init=False, repr=False)
    gmms_: Dict[int, object] = field(default_factory=dict, init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        self.builder = StateSpaceBuilder(
            constraint_model=self.constraint_model,
            max_states_per_user=4 * self.max_states_per_user,
        )
        self._single_rules = self.rule_set.single_user() if self.rule_set else None
        cm = self.constraint_model
        # Counted per step: already conditioned on micro termination.
        self._p_change = np.clip(cm.macro_end_prob, self.min_change_prob, 0.5)
        trans = cm.macro_trans.copy()
        np.fill_diagonal(trans, 0.0)
        self._change_trans = trans / np.maximum(trans.sum(axis=1, keepdims=True), _TINY)
        # Per-step occupancy tables for evidence (see CoupledHdbn: the
        # segment-start priors are far too flat to act as evidence).
        self._log_posture = np.log(cm.posture_occupancy + _TINY)
        self._log_gesture = (
            np.log(cm.gesture_occupancy + _TINY)
            if cm.gesture_occupancy is not None
            else None
        )
        self._log_subloc_prior = np.log(cm.subloc_prior + _TINY)
        self._log_subloc_occ = np.log(cm.subloc_occupancy + _TINY)

    # -- training (shares the coupled model's emission machinery) ----------------

    def fit(self, train: Dataset) -> "SingleUserHdbn":
        """Fit per-macro Gaussian mixtures via deterministic annealing."""
        from repro.core.chdbn import fit_macro_gmms, fit_object_cpt  # avoid a cycle

        self.gmms_ = fit_macro_gmms(
            train, self.constraint_model, self.gmm_components, self._rng
        )
        self._object_index, self._log_obj = fit_object_cpt(train, self.constraint_model)
        return self

    # -- inference ---------------------------------------------------------------------

    def _candidates(self, seq: LabeledSequence, rid: str, t: int) -> List[UserState]:
        obs = seq.steps[t].observations[rid]
        states = self.builder.candidate_states(obs)
        if self._single_rules is not None:
            amb = self.builder.ambient_item_set(seq.steps[t])
            kept = [
                s
                for s in states
                if self._single_rules.is_consistent(
                    self.builder.state_item_set("u1", s, obs) | amb
                )
            ]
            if kept:
                states = kept
        return states

    def _emissions(
        self, seq: LabeledSequence, rid: str, t: int, states: List[UserState]
    ) -> np.ndarray:
        return user_state_emissions(self, seq, rid, t, states)

    def _chain_block(
        self, m_prev: np.ndarray, l_prev: np.ndarray, m_cur: np.ndarray, l_cur: np.ndarray
    ) -> np.ndarray:
        cm = self.constraint_model
        same = m_prev[:, None] == m_cur[None, :]
        log_stay = np.log1p(-self._p_change[m_prev])[:, None]
        log_change = (
            np.log(self._p_change[m_prev])[:, None]
            + np.log(self._change_trans[m_prev[:, None], m_cur[None, :]] + _TINY)
        )
        macro_term = np.where(same, log_stay, log_change)
        micro_end = cm.micro_end_prob[m_cur][None, :]
        same_loc = l_prev[:, None] == l_cur[None, :]
        cont = np.log(
            (1.0 - micro_end) * same_loc
            + micro_end * cm.subloc_trans[m_cur[None, :], l_prev[:, None], l_cur[None, :]]
            + _TINY
        )
        reset = self._log_subloc_prior[m_cur, l_cur][None, :]
        return macro_term + np.where(same, cont, reset)

    def decode_user(self, seq: LabeledSequence, rid: str) -> List[str]:
        """Macro labels for one resident's chain (Viterbi or frame-wise)."""
        cm = self.constraint_model
        per_step = []
        for t in range(len(seq)):
            states = self._candidates(seq, rid, t)
            e = self._emissions(seq, rid, t, states)
            if len(states) > self.max_states_per_user:
                top = np.argsort(e)[::-1][: self.max_states_per_user]
                states = [states[i] for i in top]
                e = e[top]
            m = np.array([cm.macro_index.index(s.macro) for s in states], dtype=int)
            l = np.array([cm.subloc_index.index(s.subloc) for s in states], dtype=int)
            per_step.append((states, e, m, l))

        if not self.temporal:
            # NCR: rule-pruned frame-wise MAP, no temporal model.  The class
            # prior is the macro step-occupancy; the emission already carries
            # the per-step location coupling.
            out = []
            for states, e, m, l in per_step:
                score = e + np.log(cm.macro_occupancy[m] + _TINY)
                out.append(states[int(np.argmax(score))].macro)
            return out

        states, e, m, l = per_step[0]
        delta = np.log(cm.macro_prior[m] + _TINY) + self._log_subloc_prior[m, l] + e
        backs: List[np.ndarray] = [np.zeros(len(delta), dtype=int)]
        for t in range(1, len(per_step)):
            _, e, m, l = per_step[t]
            pm, pl = per_step[t - 1][2], per_step[t - 1][3]
            log_t = self._chain_block(pm, pl, m, l)
            total = delta[:, None] + log_t
            back = np.argmax(total, axis=0)
            delta = total[back, np.arange(total.shape[1])] + e
            backs.append(back)

        idx = int(np.argmax(delta))
        path = [idx]
        for t in range(len(per_step) - 1, 0, -1):
            path.append(int(backs[t][path[-1]]))
        path.reverse()
        return [per_step[t][0][j].macro for t, j in enumerate(path)]

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Decode every resident independently (no coupling)."""
        return {rid: self.decode_user(seq, rid) for rid in seq.resident_ids}
