"""Unit + property tests for distributions, Viterbi/EM, and baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import multivariate_normal

from repro.models import (
    CoupledHmm,
    Cpt,
    FactorialCrf,
    GaussianEmission,
    LabelIndex,
    MacroHmm,
    em_fit_hmm,
    forward_backward,
    log_normalize,
    normalize,
    viterbi_decode,
)
from repro.models.distributions import shrink_coupled_transitions
from repro.models.em import HmmParameters, gaussian_log_emissions
from repro.models.viterbi import viterbi_trellis


class TestLabelIndex:
    def test_roundtrip(self):
        idx = LabelIndex(("a", "b", "c"))
        assert idx.index("b") == 1
        assert idx.label(2) == "c"
        assert len(idx) == 3
        assert "a" in idx and "z" not in idx

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            LabelIndex(("a", "a"))

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            LabelIndex(("a",)).index("b")

    def test_encode(self):
        idx = LabelIndex(("x", "y"))
        assert np.array_equal(idx.encode(["y", "x", "y"]), [1, 0, 1])


class TestCpt:
    def test_laplace_smoothing(self):
        cpt = Cpt((2, 3), alpha=1.0)
        cpt.observe(0, 1)
        probs = cpt.probabilities()
        assert probs.shape == (2, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs[0, 1] == pytest.approx(2 / 4)
        assert probs[1, 0] == pytest.approx(1 / 3)

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            Cpt((2, 2)).observe(0)

    def test_shrink_coupled_transitions(self):
        counts = np.zeros((3, 3, 3))
        counts[0, 0, 1] = 100  # well-observed context
        shrunk = shrink_coupled_transitions(counts, kappa=10.0)
        assert np.allclose(shrunk.sum(axis=2), 1.0)
        # Heavily observed context follows its own counts.
        assert shrunk[0, 0, 1] > 0.8
        # Unobserved context follows the marginal row for state 0.
        assert shrunk[0, 2, 1] > shrunk[0, 2, 2]


class TestNormalize:
    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_normalize_sums_to_one(self, values):
        out = normalize(np.array(values))
        assert out.sum() == pytest.approx(1.0)

    def test_normalize_empty_rows_uniform(self):
        out = normalize(np.zeros((2, 4)))
        assert np.allclose(out, 0.25)

    @given(st.lists(st.floats(min_value=-20, max_value=20), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_log_normalize(self, values):
        out = log_normalize(np.array(values))
        assert np.exp(out).sum() == pytest.approx(1.0, rel=1e-6)


class TestGaussianEmission:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        states = rng.integers(0, 2, 200)
        emission = GaussianEmission(dim=3).fit(x, states)
        probe = np.array([0.1, -0.2, 0.3])
        for s in (0, 1):
            expected = multivariate_normal(
                emission.means[s], emission.covariances[s]
            ).logpdf(probe)
            assert emission.log_pdf(s, probe) == pytest.approx(expected, rel=1e-6)

    def test_unseen_state_uses_pooled(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 2))
        emission = GaussianEmission(dim=2).fit(x, np.zeros(50, dtype=int))
        assert np.isfinite(emission.log_pdf(99, np.zeros(2)))

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            GaussianEmission(dim=3).fit(np.zeros((5, 2)), np.zeros(5, dtype=int))


def _random_hmm(rng, n_states=3, t_len=6):
    prior = rng.dirichlet(np.ones(n_states))
    trans = rng.dirichlet(np.ones(n_states), size=n_states)
    log_e = rng.normal(size=(t_len, n_states))
    return np.log(prior), np.log(trans), log_e


def _brute_force_viterbi(log_prior, log_trans, log_e):
    t_len, n = log_e.shape
    best_score, best_path = -np.inf, None
    paths = [[s] for s in range(n)]
    for _ in range(t_len - 1):
        paths = [p + [s] for p in paths for s in range(n)]
    for path in paths:
        score = log_prior[path[0]] + log_e[0, path[0]]
        for t in range(1, t_len):
            score += log_trans[path[t - 1], path[t]] + log_e[t, path[t]]
        if score > best_score:
            best_score, best_path = score, path
    return np.array(best_path), best_score


class TestViterbi:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        log_prior, log_trans, log_e = _random_hmm(rng, n_states=3, t_len=5)
        path, score = viterbi_decode(log_prior, log_trans, log_e)
        bf_path, bf_score = _brute_force_viterbi(log_prior, log_trans, log_e)
        assert score == pytest.approx(bf_score, rel=1e-9)
        # Paths may tie; scores must agree, and our path must achieve it.
        check = log_prior[path[0]] + log_e[0, path[0]]
        for t in range(1, len(path)):
            check += log_trans[path[t - 1], path[t]] + log_e[t, path[t]]
        assert check == pytest.approx(bf_score, rel=1e-9)

    def test_empty_sequence(self):
        path, score = viterbi_decode(np.zeros(2), np.zeros((2, 2)), np.empty((0, 2)))
        assert len(path) == 0

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_trellis_equals_dense_when_unpruned(self, seed):
        rng = np.random.default_rng(seed)
        log_prior, log_trans, log_e = _random_hmm(rng, n_states=3, t_len=5)
        dense_path, dense_score = viterbi_decode(log_prior, log_trans, log_e)
        candidates = [[0, 1, 2]] * 5
        path, score = viterbi_trellis(
            candidates,
            lambda s: log_prior[s],
            lambda a, b: log_trans[a, b],
            lambda t, s: log_e[t, s],
        )
        assert score == pytest.approx(dense_score, rel=1e-9)

    def test_forward_backward_marginals_sum_to_one(self):
        rng = np.random.default_rng(5)
        log_prior, log_trans, log_e = _random_hmm(rng, n_states=4, t_len=8)
        gamma, xi_sum, ll = forward_backward(log_prior, log_trans, log_e)
        assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-9)
        assert xi_sum.sum() == pytest.approx(7.0, rel=1e-6)  # T-1 transitions
        assert np.isfinite(ll)

    def test_forward_backward_matches_enumeration(self):
        rng = np.random.default_rng(6)
        log_prior, log_trans, log_e = _random_hmm(rng, n_states=2, t_len=4)
        gamma, _, ll = forward_backward(log_prior, log_trans, log_e)
        # Brute-force marginals.
        t_len, n = log_e.shape
        paths = [[a, b, c, d] for a in range(n) for b in range(n) for c in range(n) for d in range(n)]
        scores = []
        for path in paths:
            s = log_prior[path[0]] + log_e[0, path[0]]
            for t in range(1, t_len):
                s += log_trans[path[t - 1], path[t]] + log_e[t, path[t]]
            scores.append(s)
        weights = np.exp(scores - max(scores))
        weights /= weights.sum()
        marg0 = sum(w for w, p in zip(weights, paths) if p[0] == 0)
        assert gamma[0, 0] == pytest.approx(marg0, abs=1e-9)


class TestEm:
    def _two_state_sequences(self, seed=0, n_seq=5, t_len=80):
        rng = np.random.default_rng(seed)
        seqs = []
        for _ in range(n_seq):
            state, xs = 0, []
            for _ in range(t_len):
                if rng.random() < 0.1:
                    state = 1 - state
                xs.append(rng.normal(3.0 * state, 0.5, size=2))
            seqs.append(np.array(xs))
        return seqs

    def test_likelihood_non_decreasing(self):
        seqs = self._two_state_sequences()
        init = HmmParameters(
            prior=np.array([0.5, 0.5]),
            trans=np.array([[0.8, 0.2], [0.2, 0.8]]),
            means=np.array([[0.5, 0.5], [2.0, 2.0]]),
            covs=np.stack([np.eye(2)] * 2),
        )
        _, history = em_fit_hmm(seqs, init, n_iters=8)
        diffs = np.diff(history)
        assert np.all(diffs > -1e-6)

    def test_recovers_means(self):
        seqs = self._two_state_sequences(seed=3)
        init = HmmParameters(
            prior=np.array([0.5, 0.5]),
            trans=np.array([[0.7, 0.3], [0.3, 0.7]]),
            means=np.array([[0.2, 0.2], [2.5, 2.5]]),
            covs=np.stack([np.eye(2)] * 2),
        )
        params, _ = em_fit_hmm(seqs, init, n_iters=25)
        means = sorted(params.means[:, 0])
        assert means[0] == pytest.approx(0.0, abs=0.4)
        assert means[1] == pytest.approx(3.0, abs=0.4)

    def test_emission_matrix_shape(self):
        params = HmmParameters(
            prior=np.array([1.0]),
            trans=np.array([[1.0]]),
            means=np.zeros((1, 2)),
            covs=np.stack([np.eye(2)]),
        )
        out = gaussian_log_emissions(np.zeros((5, 2)), params)
        assert out.shape == (5, 1)


class TestBaselineModels:
    def test_macro_hmm_predicts_valid_labels(self, cace_split):
        train, test = cace_split
        model = MacroHmm().fit(train)
        pred = model.predict(test.sequences[0])
        seq = test.sequences[0]
        for rid in seq.resident_ids:
            assert len(pred[rid]) == len(seq)
            assert set(pred[rid]) <= set(train.macro_vocab)

    def test_macro_hmm_beats_chance(self, cace_split):
        train, test = cace_split
        model = MacroHmm().fit(train)
        hits = total = 0
        for seq in test.sequences:
            pred = model.predict(seq)
            for rid in seq.resident_ids:
                gold = seq.macro_labels(rid)
                hits += sum(p == g for p, g in zip(pred[rid], gold))
                total += len(gold)
        assert hits / total > 2.0 / len(train.macro_vocab)

    def test_macro_hmm_posteriors_normalised(self, cace_split):
        train, test = cace_split
        model = MacroHmm().fit(train)
        proba = model.predict_proba(test.sequences[0])
        for gamma in proba.values():
            assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-6)

    def test_coupled_hmm_shapes(self, cace_split):
        train, test = cace_split
        model = CoupledHmm().fit(train)
        seq = test.sequences[0]
        pred = model.predict(seq)
        assert set(pred) == set(seq.resident_ids[:2])
        proba = model.predict_proba(seq)
        for gamma in proba.values():
            assert gamma.shape == (len(seq), len(train.macro_vocab))
            assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-6)

    def test_fcrf_fits_and_predicts(self, cace_split):
        train, test = cace_split
        model = FactorialCrf(epochs=3, seed=1).fit(train)
        seq = test.sequences[0]
        pred = model.predict(seq)
        for rid in seq.resident_ids[:2]:
            assert len(pred[rid]) == len(seq)

    def test_unfitted_models_raise(self, cace_split):
        _, test = cace_split
        seq = test.sequences[0]
        with pytest.raises(RuntimeError):
            MacroHmm().predict(seq)
        with pytest.raises(RuntimeError):
            CoupledHmm().predict(seq)
        with pytest.raises(RuntimeError):
            FactorialCrf().predict(seq)
