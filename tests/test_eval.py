"""Unit + property tests for metrics, confusion matrices, and experiments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import ConfusionMatrix, accuracy, evaluate_predictions, prc_auc, roc_auc
from repro.eval.experiments import strip_gestural, strip_location


class TestConfusionMatrix:
    def test_counts_and_accuracy(self):
        cm = ConfusionMatrix(("a", "b"))
        cm.update(["a", "a", "b", "b"], ["a", "b", "b", "b"])
        assert cm.total == 4
        assert cm.accuracy() == pytest.approx(0.75)
        per = cm.per_class()
        assert per["a"]["tp"] == 1 and per["a"]["fn"] == 1
        assert per["b"]["tp"] == 2 and per["b"]["fp"] == 1

    def test_most_confused(self):
        cm = ConfusionMatrix(("a", "b", "c"))
        cm.update(["a"] * 5 + ["b"], ["b"] * 5 + ["c"])
        top = cm.most_confused(1)
        assert top[0][:2] == ("a", "b") and top[0][2] == 5

    def test_misaligned_rejected(self):
        cm = ConfusionMatrix(("a",))
        with pytest.raises(ValueError):
            cm.update(["a"], [])


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(["a", "b"], ["a", "a"]) == pytest.approx(0.5)
        assert accuracy([], []) == 0.0

    @given(st.lists(st.sampled_from(["x", "y"]), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_accuracy_bounds(self, labels):
        assert 0.0 <= accuracy(labels, labels) <= 1.0
        assert accuracy(labels, labels) == 1.0

    def test_roc_auc_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        positives = np.array([True, True, False, False])
        assert roc_auc(scores, positives) == pytest.approx(1.0)

    def test_roc_auc_random_is_half(self):
        rng = np.random.default_rng(1)
        scores = rng.random(4000)
        positives = rng.random(4000) < 0.5
        assert roc_auc(scores, positives) == pytest.approx(0.5, abs=0.05)

    def test_roc_auc_ties_averaged(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        positives = np.array([True, False, True, False])
        assert roc_auc(scores, positives) == pytest.approx(0.5)

    def test_prc_auc_perfect(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        positives = np.array([True, True, False, False])
        assert prc_auc(scores, positives) == pytest.approx(1.0)

    def test_evaluate_predictions_full_report(self):
        truth = ["a", "a", "b", "b", "c"]
        pred = ["a", "b", "b", "b", "c"]
        scores = np.eye(3)[[0, 1, 1, 1, 2]] * 0.9 + 0.05
        report = evaluate_predictions(truth, pred, ["a", "b", "c"], scores)
        assert report.accuracy == pytest.approx(0.8)
        assert report.per_class["a"].recall == pytest.approx(0.5)
        assert report.per_class["b"].precision == pytest.approx(2 / 3)
        assert report.weighted_roc_auc is not None
        assert "Overall" in report.render()

    def test_score_shape_validated(self):
        with pytest.raises(ValueError):
            evaluate_predictions(["a"], ["a"], ["a", "b"], np.zeros((2, 2)))


class TestAblationHelpers:
    def test_strip_gestural(self, cace_dataset):
        stripped = strip_gestural(cace_dataset)
        assert not stripped.has_gestural
        seq = stripped.sequences[0]
        for step in seq.steps:
            for obs in step.observations.values():
                assert obs.gesture is None
                # Neck feature dims zeroed.
                assert obs.features[2] == 0.0 and obs.features[3] == 0.0

    def test_strip_location(self, cace_dataset):
        stripped = strip_location(cace_dataset)
        seq = stripped.sequences[0]
        all_sublocs = set(cace_dataset.subloc_vocab)
        for step in seq.steps:
            assert step.rooms_fired == frozenset()
            for obs in step.observations.values():
                assert set(obs.subloc_candidates) == all_sublocs
                assert obs.position_estimate is None

    def test_strips_preserve_truth(self, cace_dataset):
        for stripped in (strip_gestural(cace_dataset), strip_location(cace_dataset)):
            assert stripped.total_steps == cace_dataset.total_steps
            seq0, seq1 = cace_dataset.sequences[0], stripped.sequences[0]
            rid = seq0.resident_ids[0]
            assert seq0.macro_labels(rid) == seq1.macro_labels(rid)
