"""Multi-session serving over one fitted recogniser.

A deployment serves many concurrent streams — several homes, several
recording sessions — against a single loaded model artifact.  The
:class:`SessionRouter` owns that model and a bounded LRU table of live
sessions, each wrapped in its own
:class:`~repro.core.smoother.OnlineSmoother` (per-session smoothers keep
per-session :class:`~repro.core.api.DecodeStats`, so interleaved streams
never mix their counters — the smoother re-pins ``model.last_stats`` on
every push).

Steps are pushed as plain :class:`~repro.datasets.trace.ContextStep`
objects; the router appends them to a growing per-session sequence buffer
the smoother's trellis adapters read from, so arbitrary interleavings of
``push`` across sessions commit exactly the labels a sequential replay
would.  When the session table is full the least-recently-used session is
evicted: its lag window is flushed, its stats merged into the aggregate,
and its buffered state freed.

Fault isolation: every incoming step is validated
(:func:`~repro.resilience.validate_step`) and a session whose smoother
raises is handled per the ``on_error`` policy — ``"quarantine"`` (the
default) flushes the healthy lag window and switches the session to
degraded-mode serving (cheap fallback / prior-only labels, each commit a
:class:`~repro.resilience.DegradedLabels` tagged ``degraded=True``),
``"reset"`` rebuilds the session's smoother from scratch, ``"raise"``
propagates.  One poisoned stream never takes down its neighbours.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.api import DecodeStats, Recognizer
from repro.core.smoother import OnlineSmoother
from repro.datasets.trace import ContextStep, LabeledSequence
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.resilience.streaming import (
    DegradedStepFilter,
    StepValidationError,
    validate_step,
)

#: Valid ``SessionRouter(on_error=...)`` policies.
ON_ERROR_POLICIES = ("quarantine", "reset", "raise")


@dataclass
class SessionState:
    """One live stream: its growing buffer, smoother, and committed labels."""

    seq: LabeledSequence
    smoother: OnlineSmoother
    #: Labels committed so far, in step order (one dict per committed step).
    committed: List[Dict[str, str]] = field(default_factory=list)
    #: True once the session is quarantined into degraded-mode serving.
    degraded: bool = False
    #: The fallback labeller serving this session while degraded.
    degraded_filter: Optional[DegradedStepFilter] = None

    @property
    def stats(self) -> DecodeStats:
        """This session's work accounting."""
        return self.smoother.stats

    @property
    def pushed(self) -> int:
        """Number of steps consumed so far."""
        return len(self.seq)

    def labels(self) -> Dict[str, List[str]]:
        """Committed labels pivoted per resident."""
        rids = self.smoother.residents
        return {rid: [step[rid] for step in self.committed] for rid in rids}


class SessionRouter:
    """Route interleaved context streams through per-session smoothers.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.api.Recognizer`, or a fitted
        :class:`~repro.core.engine.CaceEngine` (its ``model_`` is used).
    lag:
        Fixed-lag smoothing latency for every session (0 = filtering).
    max_sessions:
        Upper bound on concurrently open sessions; exceeding it evicts the
        least-recently-used session (flushing it first).
    metrics:
        Metrics destination.  ``None`` uses the process-wide registry when
        observability is enabled, else a private registry — so
        :meth:`metrics_snapshot` is always meaningful.  Every session's
        smoother reports into the same registry (aggregate latency
        histograms); per-session isolation stays in per-session
        :class:`DecodeStats`.
    on_error:
        What to do when a session's step fails validation or its smoother
        raises: ``"quarantine"`` (default) flushes the healthy lag window
        and serves the session degraded from then on, ``"reset"`` rebuilds
        the session's smoother (committed labels are kept, the buffered
        window and the offending step are dropped), ``"raise"``
        propagates the error to the caller.
    fallback:
        Optional cheap recogniser (e.g. a fitted
        :class:`~repro.models.hmm.MacroHmm`) used for degraded-mode
        per-step labels; without one, degraded sessions emit the model's
        prior-argmax label.
    """

    def __init__(
        self,
        model: Union[Recognizer, object],
        lag: int = 4,
        max_sessions: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        on_error: str = "quarantine",
        fallback: Optional[Recognizer] = None,
    ) -> None:
        inner = getattr(model, "model_", model)
        if inner is None:
            raise ValueError("model is not fitted")
        if lag < 0:
            raise ValueError(f"lag must be >= 0, got {lag}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
            )
        self.model: Recognizer = inner
        self.lag = lag
        self.max_sessions = max_sessions
        self.on_error = on_error
        self.fallback = getattr(fallback, "model_", fallback)
        self._sessions: "OrderedDict[str, SessionState]" = OrderedDict()
        #: Merged DecodeStats of every closed/evicted session.
        self.aggregate_stats = DecodeStats()
        #: Sessions evicted to honour ``max_sessions`` (observability).
        self.evicted = 0
        #: Sessions quarantined into degraded-mode serving so far.
        self.quarantined = 0
        #: Sessions rebuilt by the ``"reset"`` policy so far.
        self.resets = 0
        if metrics is None:
            metrics = obs.registry_if_enabled() or MetricsRegistry()
        self.metrics = metrics
        self._h_push = metrics.histogram("router.push_seconds")
        self._h_push_many = metrics.histogram("router.push_many_seconds")
        self._c_steps = metrics.counter("router.steps")
        self._c_opened = metrics.counter("router.sessions_opened")
        self._c_closed = metrics.counter("router.sessions_closed")
        self._c_evicted = metrics.counter("router.sessions_evicted")
        self._g_active = metrics.gauge("router.sessions_active")
        self._c_quarantined = metrics.counter("router.sessions_quarantined")
        self._c_reset = metrics.counter("router.sessions_reset")
        self._c_rejected = metrics.counter("router.steps_rejected")
        self._c_degraded_steps = metrics.counter("router.degraded_steps")
        self._g_degraded = metrics.gauge("router.sessions_degraded")

    # -- session lifecycle ---------------------------------------------------------

    def open_session(
        self,
        session_id: str,
        resident_ids: Tuple[str, ...],
        step_s: float = 15.0,
    ) -> SessionState:
        """Explicitly open a session (``push`` auto-opens otherwise)."""
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        seq = LabeledSequence(
            home_id=session_id,
            resident_ids=tuple(resident_ids),
            step_s=step_s,
            steps=[],
            truths=[],
        )
        # Constructed directly (not via ``model.step_filter``) so every
        # session's smoother reports into the router's registry.
        smoother = OnlineSmoother(self.model, lag=self.lag, metrics=self.metrics)
        smoother.start(seq)
        state = SessionState(seq=seq, smoother=smoother)
        self._sessions[session_id] = state
        self._c_opened.inc()
        self._evict_over_capacity(keep=session_id)
        self._g_active.set(len(self._sessions))
        return state

    def push(self, session_id: str, step: ContextStep) -> Optional[Dict[str, str]]:
        """Consume one step for *session_id*; auto-opens on first step.

        Returns the labels committed by this push (the step ``lag`` behind
        the stream head), or None while the lag window is still filling.
        A quarantined session returns a :class:`DegradedLabels` dict for
        every push instead.
        """
        t_push = time.perf_counter()
        try:
            state = self._sessions.get(session_id)
            if state is not None and state.degraded:
                return self._degraded_push(state, step)
            try:
                validate_step(
                    step, state.seq.resident_ids if state is not None else None
                )
            except StepValidationError as exc:
                return self._handle_bad_step(session_id, state, step, exc)
            if state is None:
                state = self.open_session(
                    session_id, resident_ids=tuple(sorted(step.observations))
                )
            else:
                self._sessions.move_to_end(session_id)
            t = len(state.seq.steps)
            state.seq.steps.append(step)
            state.seq.truths.append({})
            try:
                labels = state.smoother.push(t)
            except Exception as exc:
                return self._handle_smoother_error(state, step, exc)
            if labels is not None:
                state.committed.append(labels)
            self._c_steps.inc()
            return labels
        finally:
            self._h_push.observe(time.perf_counter() - t_push)

    def push_many(
        self, session_id: str, steps: List[ContextStep]
    ) -> List[Optional[Dict[str, str]]]:
        """Consume a batch of steps for *session_id* in one call.

        Maximal runs of valid steps are appended to the session buffer
        first, so the smoother's trellis adapters batch-build their
        per-sequence evidence tables across the run instead of
        re-dispatching per step.  Returns one entry per pushed step —
        exactly what step-by-step :meth:`push` would have returned (None
        entries while the lag window fills, degraded/None entries per the
        ``on_error`` policy when steps fail).
        """
        if not steps:
            return []
        t_push = time.perf_counter()
        out: List[Optional[Dict[str, str]]] = []
        try:
            i = 0
            while i < len(steps):
                consumed, labels = self._push_run(session_id, steps, i)
                out.extend(labels)
                i += consumed
            return out
        finally:
            self._h_push_many.observe(time.perf_counter() - t_push)

    def close_session(self, session_id: str) -> Dict[str, List[str]]:
        """Flush the lag window, free the session, return all its labels."""
        if session_id not in self._sessions:
            raise KeyError(f"unknown session {session_id!r}")
        state = self._sessions.pop(session_id)
        self._c_closed.inc()
        self._g_active.set(len(self._sessions))
        return self._finish(state)

    def close_all(self) -> Dict[str, Dict[str, List[str]]]:
        """Close every open session; labels keyed by session id."""
        out = {}
        while self._sessions:
            sid, state = self._sessions.popitem(last=False)
            self._c_closed.inc()
            out[sid] = self._finish(state)
        self._g_active.set(0)
        return out

    # -- introspection -------------------------------------------------------------

    def session(self, session_id: str) -> SessionState:
        """The live state of an open session (does not touch LRU order)."""
        return self._sessions[session_id]

    def session_ids(self) -> List[str]:
        """Open sessions, least-recently-used first."""
        return list(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def describe_dict(self) -> Dict[str, object]:
        """Structured router state: configuration, lifecycle counters, and
        per-session step counters (:meth:`describe` and
        :meth:`metrics_snapshot` both render from this)."""
        return {
            "lag": self.lag,
            "max_sessions": self.max_sessions,
            "open_sessions": len(self._sessions),
            "evicted": self.evicted,
            "on_error": self.on_error,
            "quarantined": self.quarantined,
            "resets": self.resets,
            "degraded_sessions": self._degraded_count(),
            "model": self.model.describe(),
            "sessions": {
                sid: self._describe_session(state)
                for sid, state in self._sessions.items()
            },
        }

    def _describe_session(self, state: SessionState) -> Dict[str, object]:
        d: Dict[str, object] = {
            "pushed": state.pushed,
            "committed": len(state.committed),
        }
        if state.degraded:
            # Only present when True, so healthy snapshots stay lean.
            d["degraded"] = True
        return d

    def describe(self) -> str:
        """One-line summary for logs and CLIs."""
        d = self.describe_dict()
        return (
            f"SessionRouter(lag={d['lag']}, "
            f"{d['open_sessions']}/{d['max_sessions']} sessions, "
            f"{d['evicted']} evicted): {d['model']}"
        )

    def metrics_snapshot(self) -> Dict[str, object]:
        """JSON-ready observability snapshot: structured router state, the
        full metrics registry (router gauges, push-latency histograms, the
        smoothers' lag-window instruments), and derived rates."""
        computed = self.metrics.counter("smoother.trans_blocks_computed").value
        reused = self.metrics.counter("smoother.trans_blocks_reused").value
        total = computed + reused
        return {
            "router": self.describe_dict(),
            "derived": {
                # Fraction of lag-window transition-block reads served by
                # the push-time cache instead of a recomputation.
                "smoother_trans_cache_hit_rate": (reused / total) if total else 0.0,
            },
            "metrics": self.metrics.snapshot(),
        }

    # -- internals -----------------------------------------------------------------

    def _finish(self, state: SessionState) -> Dict[str, List[str]]:
        if state.degraded:
            # The healthy window was flushed at quarantine time; a second
            # flush is a no-op for a consistent smoother and must never
            # block session teardown for a poisoned one.
            try:
                state.committed.extend(state.smoother.flush())
            except Exception:
                pass
            self.aggregate_stats.merge(state.degraded_filter.stats)
        else:
            state.committed.extend(state.smoother.flush())
        self.aggregate_stats.merge(state.stats)
        self._g_degraded.set(self._degraded_count())
        return state.labels()

    def _evict_over_capacity(self, keep: str) -> None:
        while len(self._sessions) > self.max_sessions:
            sid, state = next(iter(self._sessions.items()))
            if sid == keep:  # never evict the session we just opened
                self._sessions.move_to_end(sid)
                continue
            del self._sessions[sid]
            self._finish(state)
            self.evicted += 1
            self._c_evicted.inc()

    # -- fault handling ------------------------------------------------------------

    def _degraded_count(self) -> int:
        return sum(1 for s in self._sessions.values() if s.degraded)

    def _degraded_push(
        self, state: SessionState, step: ContextStep, append: bool = True
    ) -> Dict[str, str]:
        """Serve one step of a quarantined session through its fallback."""
        if append:
            state.seq.steps.append(step)
            state.seq.truths.append({})
        labels = state.degraded_filter.push_step(step)
        state.committed.append(labels)
        self._c_steps.inc()
        self._c_degraded_steps.inc()
        return labels

    def _quarantine(
        self, state: SessionState, step: ContextStep, append: bool
    ) -> Dict[str, str]:
        """Flush the healthy window, switch to degraded serving, and serve
        *step* (``append=False`` when the step already sits in the buffer,
        i.e. the smoother choked on it after the append)."""
        self.quarantined += 1
        self._c_quarantined.inc()
        try:
            state.committed.extend(state.smoother.flush())
        except Exception:
            pass  # a poisoned window forfeits its lag tail
        state.degraded = True
        state.degraded_filter = DegradedStepFilter(
            self.model,
            state.seq.resident_ids,
            fallback=self.fallback,
            step_s=state.seq.step_s,
        )
        self._g_degraded.set(self._degraded_count())
        return self._degraded_push(state, step, append=append)

    def _reset_session(self, state: SessionState) -> None:
        """Rebuild the session's smoother from scratch: committed labels
        survive, the buffered window and offending step do not."""
        self.resets += 1
        self._c_reset.inc()
        self.aggregate_stats.merge(state.stats)
        state.seq.steps.clear()
        state.seq.truths.clear()
        smoother = OnlineSmoother(self.model, lag=self.lag, metrics=self.metrics)
        smoother.start(state.seq)
        state.smoother = smoother

    def _handle_bad_step(
        self,
        session_id: str,
        state: Optional[SessionState],
        step: ContextStep,
        exc: StepValidationError,
    ) -> Optional[Dict[str, str]]:
        """Policy dispatch for a step that failed validation (not yet
        appended to the buffer)."""
        self._c_rejected.inc()
        if self.on_error == "raise":
            raise exc
        if state is None:
            # Nothing to quarantine or reset: an invalid opening step is
            # dropped without creating a session.
            return None
        self._sessions.move_to_end(session_id)
        if self.on_error == "reset":
            self._reset_session(state)
            return None
        return self._quarantine(state, step, append=True)

    def _handle_smoother_error(
        self, state: SessionState, step: ContextStep, exc: Exception
    ) -> Optional[Dict[str, str]]:
        """Policy dispatch for a smoother that raised on an appended step."""
        if self.on_error == "raise":
            raise exc
        if self.on_error == "reset":
            self._reset_session(state)
            return None
        return self._quarantine(state, step, append=False)

    def _push_run(
        self, session_id: str, steps: List[ContextStep], i: int
    ) -> Tuple[int, List[Optional[Dict[str, str]]]]:
        """Consume a maximal homogeneous run of ``steps[i:]``; returns
        ``(n_consumed, labels)`` with one label entry per consumed step."""
        state = self._sessions.get(session_id)
        if state is not None and state.degraded:
            labels = [self._degraded_push(state, step) for step in steps[i:]]
            return len(steps) - i, labels
        rids = state.seq.resident_ids if state is not None else None
        try:
            validate_step(steps[i], rids)
        except StepValidationError as exc:
            return 1, [self._handle_bad_step(session_id, state, steps[i], exc)]
        if state is None:
            state = self.open_session(
                session_id, resident_ids=tuple(sorted(steps[i].observations))
            )
            rids = state.seq.resident_ids
        else:
            self._sessions.move_to_end(session_id)
        # Extend the run while steps stay valid, append it, bulk-prepare.
        j = i + 1
        while j < len(steps):
            try:
                validate_step(steps[j], rids)
            except StepValidationError:
                break
            j += 1
        t0 = len(state.seq.steps)
        for step in steps[i:j]:
            state.seq.steps.append(step)
            state.seq.truths.append({})
        out: List[Optional[Dict[str, str]]] = []
        consumed = 0
        error: Optional[Exception] = None
        try:
            state.smoother.prepare_range(t0, t0 + (j - i))
            for k in range(i, j):
                labels = state.smoother.push(t0 + (k - i))
                if labels is not None:
                    state.committed.append(labels)
                out.append(labels)
                self._c_steps.inc()
                consumed += 1
        except Exception as exc:  # noqa: BLE001 — isolate any decode fault
            error = exc
        if error is not None:
            # Drop the unconsumed tail from the buffer; the failing step
            # stays (matching push(): it was appended when the smoother
            # choked on it), then hand it to the policy.
            del state.seq.steps[t0 + consumed + 1 :]
            del state.seq.truths[t0 + consumed + 1 :]
            out.append(
                self._handle_smoother_error(state, steps[i + consumed], error)
            )
            consumed += 1
        return consumed, out
