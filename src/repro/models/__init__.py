"""Probabilistic models: shared distributions and the baseline recognisers.

Contains the building blocks (label indexing, conditional probability
tables, Gaussian emissions, Viterbi / forward-backward / EM) and the three
prior-work baselines the paper compares against:

* :class:`~repro.models.hmm.MacroHmm` — per-user flat HMM (Singla et al.
  [9]): no hierarchy, no coupling.
* :class:`~repro.models.chmm.CoupledHmm` — CHMM (Roy et al. [4]): coupled
  macro transitions, ambient + postural context, no hierarchy.
* :class:`~repro.models.fcrf.FactorialCrf` — FCRF (Wang et al. [5]):
  discriminative factorial chain over wearable features.
"""

from repro.models.chmm import CoupledHmm
from repro.models.distributions import (
    Cpt,
    GaussianEmission,
    LabelIndex,
    log_normalize,
    normalize,
)
from repro.models.em import em_fit_hmm
from repro.models.fcrf import FactorialCrf
from repro.models.hmm import MacroHmm
from repro.models.viterbi import forward_backward, viterbi_decode

__all__ = [
    "CoupledHmm",
    "Cpt",
    "GaussianEmission",
    "LabelIndex",
    "log_normalize",
    "normalize",
    "em_fit_hmm",
    "FactorialCrf",
    "MacroHmm",
    "forward_backward",
    "viterbi_decode",
]
