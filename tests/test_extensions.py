"""Tests for the beyond-the-paper extensions: N>2 residents, online
fixed-lag smoothing, and missing-modality robustness."""

import numpy as np
import pytest

from repro.core.chdbn import CoupledHdbn
from repro.core.engine import CaceEngine
from repro.core.loosely_coupled import NChainHdbn
from repro.core.smoother import OnlineSmoother
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import (
    ContextStep,
    Dataset,
    LabeledSequence,
    ResidentObservation,
    train_test_split,
)


@pytest.fixture(scope="module")
def trio_dataset():
    return generate_cace_dataset(
        n_homes=2,
        sessions_per_home=3,
        duration_s=2700.0,
        residents_per_home=3,
        seed=91,
    )


@pytest.fixture(scope="module")
def pair_split():
    ds = generate_cace_dataset(
        n_homes=2, sessions_per_home=4, duration_s=2400.0, seed=92
    )
    return train_test_split(ds, 0.7, seed=1)


@pytest.fixture(scope="module")
def fitted_pair_engine(pair_split):
    train, _ = pair_split
    engine = CaceEngine(strategy="c2", seed=5)
    engine.fit(train)
    return engine


class TestThreeResidents:
    def test_generator_emits_three_residents(self, trio_dataset):
        for seq in trio_dataset.sequences:
            assert len(seq.resident_ids) == 3
            for step in seq.steps:
                assert set(step.observations) == set(seq.resident_ids)

    def test_engine_selects_nchain(self, trio_dataset):
        train, _ = train_test_split(trio_dataset, 0.7, seed=2)
        engine = CaceEngine(strategy="c2", seed=3)
        engine.fit(train)
        assert isinstance(engine.model_, NChainHdbn)

    def test_decode_labels_every_resident_and_step(self, trio_dataset):
        train, test = train_test_split(trio_dataset, 0.7, seed=2)
        engine = CaceEngine(strategy="c2", seed=3)
        engine.fit(train)
        seq = test.sequences[0]
        pred = engine.predict(seq)
        assert set(pred) == set(seq.resident_ids)
        for rid in seq.resident_ids:
            assert len(pred[rid]) == len(seq)
            assert all(m in trio_dataset.macro_vocab for m in pred[rid])

    def test_three_resident_accuracy_beats_chance(self, trio_dataset):
        train, test = train_test_split(trio_dataset, 0.7, seed=2)
        engine = CaceEngine(strategy="c2", seed=3)
        engine.fit(train)
        correct = n = 0
        for seq in test.sequences:
            pred = engine.predict(seq)
            for rid in seq.resident_ids:
                truth = seq.macro_labels(rid)
                correct += sum(a == b for a, b in zip(truth, pred[rid]))
                n += len(truth)
        assert correct / n > 0.4  # chance is ~1/11

    def test_marginals_normalised_per_step(self, trio_dataset):
        train, test = train_test_split(trio_dataset, 0.7, seed=2)
        engine = CaceEngine(strategy="c2", seed=3)
        engine.fit(train)
        seq = test.sequences[0]
        marginals = engine.posterior_marginals(seq)
        for rid in seq.resident_ids:
            assert marginals[rid].shape == (len(seq), len(trio_dataset.macro_vocab))
            assert np.allclose(marginals[rid].sum(axis=1), 1.0, atol=1e-6)

    def test_ncs_strategy_also_supports_trios(self, trio_dataset):
        train, test = train_test_split(trio_dataset, 0.7, seed=2)
        engine = CaceEngine(strategy="ncs", seed=3)
        engine.fit(train)
        assert isinstance(engine.model_, NChainHdbn)
        assert engine.model_.rule_set is None
        pred = engine.predict(test.sequences[0])
        assert set(pred) == set(test.sequences[0].resident_ids)


class TestOnlineSmoother:
    def test_full_lag_matches_offline_marginals(self, fitted_pair_engine, pair_split):
        _, test = pair_split
        seq = test.sequences[0].slice(0, 40)
        model = fitted_pair_engine.model_
        assert isinstance(model, CoupledHdbn)
        smoother = OnlineSmoother(model, lag=len(seq))
        online = smoother.run(seq)
        marginals = model.posterior_marginals(seq)
        cm = model.constraint_model
        for rid in seq.resident_ids[:2]:
            offline = [
                cm.macro_index.label(int(np.argmax(marginals[rid][t])))
                for t in range(len(seq))
            ]
            assert online[rid] == offline

    def test_output_covers_every_step(self, fitted_pair_engine, pair_split):
        _, test = pair_split
        seq = test.sequences[0].slice(0, 30)
        smoother = OnlineSmoother(fitted_pair_engine.model_, lag=4)
        out = smoother.run(seq)
        for rid in seq.resident_ids[:2]:
            assert len(out[rid]) == len(seq)

    def test_small_lag_close_to_offline_accuracy(self, fitted_pair_engine, pair_split):
        _, test = pair_split
        seq = test.sequences[0]
        model = fitted_pair_engine.model_
        offline = model.decode(seq)
        online = OnlineSmoother(model, lag=4).run(seq)
        for rid in seq.resident_ids[:2]:
            truth = seq.macro_labels(rid)
            acc_off = np.mean([a == b for a, b in zip(truth, offline[rid])])
            acc_on = np.mean([a == b for a, b in zip(truth, online[rid])])
            assert acc_on > acc_off - 0.15

    def test_push_requires_ordered_steps(self, fitted_pair_engine, pair_split):
        _, test = pair_split
        seq = test.sequences[0]
        smoother = OnlineSmoother(fitted_pair_engine.model_, lag=2)
        smoother.start(seq)
        smoother.push(0)
        with pytest.raises(ValueError):
            smoother.push(2)

    def test_lag_zero_is_filtering(self, fitted_pair_engine, pair_split):
        _, test = pair_split
        seq = test.sequences[0].slice(0, 20)
        smoother = OnlineSmoother(fitted_pair_engine.model_, lag=0)
        smoother.start(seq)
        committed = smoother.push(0)
        assert committed is not None and set(committed) == set(seq.resident_ids[:2])


def _strip_channel(seq: LabeledSequence, channel: str, fraction: float, rng) -> LabeledSequence:
    """Null out one wearable channel on a random fraction of steps."""
    steps = []
    for step in seq.steps:
        observations = {}
        for rid, obs in step.observations.items():
            if rng.random() < fraction:
                if channel == "posture":
                    obs = ResidentObservation(
                        posture=None,
                        gesture=obs.gesture,
                        features=obs.features,
                        subloc_candidates=obs.subloc_candidates,
                        position_estimate=obs.position_estimate,
                    )
                elif channel == "features":
                    obs = ResidentObservation(
                        posture=obs.posture,
                        gesture=obs.gesture,
                        features=tuple(float("nan") for _ in obs.features),
                        subloc_candidates=obs.subloc_candidates,
                        position_estimate=obs.position_estimate,
                    )
            observations[rid] = obs
        steps.append(
            ContextStep(step.t, observations, step.rooms_fired, step.objects_fired, step.sublocs_fired)
        )
    return LabeledSequence(seq.home_id, seq.resident_ids, seq.step_s, steps, seq.truths)


class TestMissingModalities:
    @pytest.mark.parametrize("channel", ["posture", "features"])
    def test_decode_survives_dropped_channel(
        self, fitted_pair_engine, pair_split, channel
    ):
        _, test = pair_split
        rng = np.random.default_rng(4)
        seq = _strip_channel(test.sequences[0], channel, fraction=0.5, rng=rng)
        pred = fitted_pair_engine.predict(seq)
        for rid in seq.resident_ids:
            assert len(pred[rid]) == len(seq)

    def test_degradation_is_graceful(self, fitted_pair_engine, pair_split):
        _, test = pair_split
        rng = np.random.default_rng(4)
        seq = test.sequences[0]
        truth = {rid: seq.macro_labels(rid) for rid in seq.resident_ids}
        base = fitted_pair_engine.predict(seq)
        degraded_seq = _strip_channel(seq, "posture", fraction=0.7, rng=rng)
        degraded = fitted_pair_engine.predict(degraded_seq)

        def acc(pred):
            pairs = [
                (a, b)
                for rid in seq.resident_ids
                for a, b in zip(truth[rid], pred[rid])
            ]
            return np.mean([a == b for a, b in pairs])

        # Losing a channel must not collapse the recogniser (the emission
        # factorisation marginalises the missing term exactly).
        assert acc(degraded) > acc(base) - 0.25
        assert acc(degraded) > 0.3
