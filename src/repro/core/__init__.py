"""CACE core: the loosely-coupled Hierarchical Dynamic Bayesian Network.

The paper's contribution, assembled from the substrates:

* :class:`~repro.core.state_space.StateSpaceBuilder` — per-step candidate
  state creation from observations (pipeline step 3);
* :class:`~repro.core.chdbn.CoupledHdbn` — the coupled two-level model with
  end-of-sequence-marker semantics (Eqns 3-6, Augmentations 1-4) and
  vectorised joint Viterbi over pruned candidate trellises;
* :class:`~repro.core.hdbn.SingleUserHdbn` — the single-inhabitant model
  (Eqn 1), also used by the NCR strategy;
* :mod:`~repro.core.pruning` — the four strategies of §VII-G
  (NH / NCR / NCS / C2);
* :class:`~repro.core.engine.CaceEngine` — the end-to-end pipeline of
  Fig 2, from labelled training data to decoded macro activities;
* :mod:`~repro.core.duration` — best-interval start/end duration error
  (Table V's metric).
"""

from repro.core.api import DecodeStats, Recognizer, StepFilter, TrellisPiece
from repro.core.chdbn import CoupledHdbn
from repro.core.duration import duration_error, extract_segments, match_segments
from repro.core.engine import CaceEngine
from repro.core.hdbn import SingleUserHdbn
from repro.core.loosely_coupled import NChainHdbn
from repro.core.pruning import PruningStrategy, STRATEGIES
from repro.core.smoother import OnlineSmoother
from repro.core.state_space import StateSpaceBuilder, UserState

__all__ = [
    "CoupledHdbn",
    "DecodeStats",
    "Recognizer",
    "StepFilter",
    "TrellisPiece",
    "duration_error",
    "extract_segments",
    "match_segments",
    "CaceEngine",
    "SingleUserHdbn",
    "NChainHdbn",
    "OnlineSmoother",
    "PruningStrategy",
    "STRATEGIES",
    "StateSpaceBuilder",
    "UserState",
]
