"""Bench: Table V — start/end duration error per strategy.

Paper: NH 16.9%, NCR 20.6%, NCS 7.72%, C2 8.1% — the constraint-mining
models localise activity boundaries far better than the naive ones.
"""

from benchmarks.conftest import record, workload
from repro.eval.experiments import table5_duration_error


def test_table5_duration_error(benchmark):
    params = workload()
    result = benchmark.pedantic(
        table5_duration_error,
        kwargs={
            "n_homes": params["n_homes"],
            "sessions_per_home": params["sessions_per_home"],
            "duration_s": params["duration_s"],
            "seed": 17,
            "strategies": ("nh", "ncr", "c2"),
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("table5", result.render())
    r = result.results
    assert r["c2"].duration_error < r["nh"].duration_error
    assert r["c2"].duration_error < r["ncr"].duration_error
