"""Observability: metrics, tracing, and provenance for the serving stack.

The paper reports computational overhead as a first-class result
(Fig 11b); this package makes the reproduction's runtime continuously
measurable — per-family decode latency, smoother lag-window cost,
serving-session churn — instead of bench-only.  See the README's
"Observability" section for the metrics schema and exposition formats.

Everything is off by default and the disabled hot path costs a pointer
check; ``benchmarks/bench_obs_overhead.py`` asserts the <3%
instrumented-vs-off decode overhead invariant.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.provenance import provenance
from repro.obs.runtime import (
    disable,
    enable,
    get_registry,
    get_tracer,
    metrics_enabled,
    registry_if_enabled,
    reset,
    span,
    timed_span,
    tracing_enabled,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "get_registry",
    "get_tracer",
    "metrics_enabled",
    "provenance",
    "registry_if_enabled",
    "reset",
    "span",
    "timed_span",
    "tracing_enabled",
]
