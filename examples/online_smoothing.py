"""Online activity smoothing through the serving facade.

The paper's conclusion proposes CACE "as a smoother of any online complex
activity recognition framework".  This example exercises the deployment
path end to end: fit an engine, save it as a versioned model artifact,
reload it, and stream *interleaved* sessions through a
:class:`~repro.serve.SessionRouter` — one fixed-lag smoother per session,
labels committed with bounded latency.  It also shows how the
accuracy/latency trade-off moves with the lag: lag 0 is pure filtering
(commit immediately), larger lags approach the offline Viterbi decode.

Run:  python examples/online_smoothing.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.engine import CaceEngine
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import train_test_split
from repro.serve import SessionRouter


def accuracy(seq, labels) -> float:
    pairs = [
        (a, b)
        for rid in labels
        for a, b in zip(seq.macro_labels(rid), labels[rid])
    ]
    return float(np.mean([a == b for a, b in pairs]))


def stream_interleaved(router: SessionRouter, seqs) -> dict:
    """Round-robin the sessions' steps, as concurrent homes would arrive."""
    for t in range(max(len(s) for s in seqs)):
        for i, seq in enumerate(seqs):
            if t < len(seq):
                router.push(f"home-{i}", seq.steps[t])
    return router.close_all()


def main() -> None:
    dataset = generate_cace_dataset(
        n_homes=2, sessions_per_home=4, duration_s=3000.0, seed=17
    )
    train, test = train_test_split(dataset, 0.7, seed=2)
    engine = CaceEngine(strategy="c2", seed=5)
    engine.fit(train)

    # Fit once, save a versioned artifact, serve from the reload — the
    # cloud-side deployment shape of the paper's Fig 1 architecture.
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "cace.model.json"
        engine.save(artifact)
        served = CaceEngine.load(artifact)
    print(f"serving {served.describe()}")

    seqs = test.sequences[:2]
    offline = [served.predict(seq) for seq in seqs]
    for i, seq in enumerate(seqs):
        print(
            f"home-{i}: {len(seq)} steps x {seq.step_s:.0f}s, "
            f"offline Viterbi accuracy {accuracy(seq, offline[i]):.1%}"
        )

    header = " ".join(f"{f'home-{i}':>9s}" for i in range(len(seqs)))
    print(f"\n{'lag':>5s} {'latency':>9s} {header}")
    for lag in (0, 2, 4, 8, 16):
        router = SessionRouter(served, lag=lag)
        labels = stream_interleaved(router, seqs)
        latency = lag * seqs[0].step_s
        accs = " ".join(
            f"{accuracy(seq, labels[f'home-{i}']):8.1%}"
            for i, seq in enumerate(seqs)
        )
        print(f"{lag:5d} {latency:8.0f}s {accs}")

    print(
        "\nlag buys accuracy: each extra step of latency lets future"
        " evidence veto a premature label, converging to the offline decode."
        " Interleaving the homes changes nothing — each session keeps its"
        " own smoother state inside the router."
    )


if __name__ == "__main__":
    main()
