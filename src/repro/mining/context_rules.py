"""Encoding context steps as transactions over discrete items.

The paper's transaction schema: "each context tuple consists of 94 context
elements (47 for current time t and 47 for the previous time instant t-1)"
— per user: 11 macro activities, 14 sub-locations, 6 rooms, 5 postural and
5 gestural states, plus 6 instrumented-object classes (47 elements per
slice in our accounting; the paper does not break the 47 down exactly).

An :class:`Item` is ``(slot, time, attr, value)`` where ``slot`` is a
canonical user slot (``"u1"``, ``"u2"``, ... by resident order, or
``"amb"`` for unattributed ambient context) and ``time`` is ``"t"`` or
``"t-1"``.  Transactions are symmetrised over user slots so mined rules
generalise across which resident happens to be "user 1".
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple

from repro.datasets.trace import LabeledSequence, ResidentTruth


class Item(NamedTuple):
    """One boolean context element inside a transaction."""

    slot: str  # "u1", "u2", ... or "amb"
    time: str  # "t" or "t-1"
    attr: str  # "macro" | "posture" | "gesture" | "subloc" | "room" | "object"
    value: str

    def at_previous(self) -> "Item":
        """The same element shifted to the t-1 slice."""
        return Item(self.slot, "t-1", self.attr, self.value)


def truth_items(slot: str, truth: ResidentTruth, time: str = "t") -> List[Item]:
    """Items describing one resident's ground-truth context."""
    items = [
        Item(slot, time, "macro", truth.macro),
        Item(slot, time, "posture", truth.posture),
        Item(slot, time, "subloc", truth.subloc),
        Item(slot, time, "room", truth.room),
    ]
    if truth.gesture:
        items.append(Item(slot, time, "gesture", truth.gesture))
    return items


def state_items(
    slot: str,
    macro: str,
    posture: str,
    gesture: Optional[str],
    subloc: str,
    room: str,
    time: str = "t",
) -> List[Item]:
    """Items for a *hypothesised* hidden state (used during pruning)."""
    items = [
        Item(slot, time, "macro", macro),
        Item(slot, time, "posture", posture),
        Item(slot, time, "subloc", subloc),
        Item(slot, time, "room", room),
    ]
    if gesture:
        items.append(Item(slot, time, "gesture", gesture))
    return items


def ambient_items(
    rooms_fired: Sequence[str], objects_fired: Sequence[str], time: str = "t"
) -> List[Item]:
    """Items for unattributed ambient evidence."""
    items = [Item("amb", time, "room", room) for room in sorted(rooms_fired)]
    items.extend(Item("amb", time, "object", obj) for obj in sorted(objects_fired))
    return items


def encode_step(
    truths_now: Dict[str, ResidentTruth],
    truths_prev: Optional[Dict[str, ResidentTruth]],
    rooms_fired: Sequence[str],
    objects_fired: Sequence[str],
    slot_of: Dict[str, str],
) -> FrozenSet[Item]:
    """One transaction: both time slices of every resident plus ambient."""
    items: List[Item] = []
    for rid, truth in truths_now.items():
        items.extend(truth_items(slot_of[rid], truth, "t"))
    if truths_prev is not None:
        for rid, truth in truths_prev.items():
            items.extend(truth_items(slot_of[rid], truth, "t-1"))
    items.extend(ambient_items(rooms_fired, objects_fired, "t"))
    return frozenset(items)


def encode_sequence(
    sequence: LabeledSequence, symmetrize: bool = True
) -> List[FrozenSet[Item]]:
    """All transactions of a labelled sequence.

    With ``symmetrize=True`` every step is emitted once per permutation of
    user-slot assignment, so rules do not overfit to which resident was
    mapped to ``u1``.
    """
    rids = list(sequence.resident_ids)
    slot_names = [f"u{i + 1}" for i in range(len(rids))]
    assignments: List[Dict[str, str]] = []
    if symmetrize and len(rids) > 1:
        for perm in permutations(rids):
            assignments.append({rid: slot_names[i] for i, rid in enumerate(perm)})
    else:
        assignments.append({rid: slot_names[i] for i, rid in enumerate(rids)})

    transactions: List[FrozenSet[Item]] = []
    prev = None
    for step, truth in zip(sequence.steps, sequence.truths):
        for slot_of in assignments:
            transactions.append(
                encode_step(truth, prev, step.rooms_fired, step.objects_fired, slot_of)
            )
        prev = truth
    return transactions


def encode_dataset(
    sequences: Sequence[LabeledSequence], symmetrize: bool = True
) -> List[FrozenSet[Item]]:
    """Transactions pooled over many sequences."""
    out: List[FrozenSet[Item]] = []
    for seq in sequences:
        out.extend(encode_sequence(seq, symmetrize=symmetrize))
    return out


def format_item(item: Item) -> str:
    """Human-readable item, e.g. ``U1(t):subloc=SR4``."""
    slot = item.slot.upper()
    return f"{slot}({item.time}):{item.attr}={item.value}"
