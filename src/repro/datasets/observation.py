"""Micro-level observation model: wearable classifier noise + emissions.

The macro-level experiments run on discretised context steps, not raw 50 Hz
IMU streams (a month of homes would be prohibitively slow to render sample
by sample).  This module supplies the calibrated bridge between the tiers:

* observed postures/gestures are drawn from confusion kernels whose
  diagonal mass matches the paper's *measured* micro-classifier accuracies
  (98.6% postural, 95.3% gestural, §VII-E) with physically sensible
  confusions (sitting<->standing, silent<->yawning, ...);
* the continuous emission vector per step is drawn from a Gaussian whose
  mean derives deterministically from the micro-activity's
  :class:`~repro.sensors.imu.MotionSignature` — the same parameters that
  drive the full IMU renderer — so Gaussian emission models (Augmentation 4)
  fit the same geometry they would see from real feature extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sensors.imu import GESTURAL_SIGNATURES, POSTURAL_SIGNATURES, MotionSignature
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_probability

#: Plausible misclassification targets per posture.
_POSTURE_CONFUSIONS: Dict[str, Tuple[str, ...]] = {
    "walking": ("standing", "cycling"),
    "standing": ("walking", "sitting"),
    "sitting": ("standing", "lying"),
    "cycling": ("walking",),
    "lying": ("sitting",),
}

#: Plausible misclassification targets per oral gesture.
_GESTURE_CONFUSIONS: Dict[str, Tuple[str, ...]] = {
    "silent": ("yawning",),
    "talking": ("laughing", "eating"),
    "eating": ("talking",),
    "yawning": ("silent",),
    "laughing": ("talking",),
}

#: Emission feature vector layout (6 dims).
FEATURE_NAMES: Tuple[str, ...] = (
    "phone_energy",
    "phone_freq",
    "neck_energy",
    "neck_freq",
    "tilt",
    "burst",
)


def _signature_mean(postural: MotionSignature, gestural: Optional[MotionSignature]) -> np.ndarray:
    """Deterministic mean emission vector for a (posture, gesture) pair."""
    phone_energy = float(np.linalg.norm(postural.amplitude))
    phone_freq = postural.base_freq_hz
    if gestural is not None:
        neck_energy = float(np.linalg.norm(gestural.amplitude))
        neck_freq = gestural.base_freq_hz
        burst = gestural.burst_rate_hz * gestural.burst_amplitude
    else:
        neck_energy, neck_freq, burst = 0.0, 0.0, 0.0
    tilt = postural.posture_pitch
    return np.array([phone_energy, phone_freq, neck_energy, neck_freq, tilt, burst])


@dataclass
class MicroObservationModel:
    """Samples observed micro context from ground truth.

    Parameters
    ----------
    posture_accuracy / gesture_accuracy:
        Diagonal mass of the confusion kernels; defaults are the paper's
        measured micro-classifier accuracies.
    feature_noise:
        Relative standard deviation of the Gaussian emission around the
        signature-derived mean.
    """

    posture_accuracy: float = 0.986
    gesture_accuracy: float = 0.953
    feature_noise: float = 0.6
    drift_level: float = 0.8
    drift_rho: float = 0.97
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _feature_scale: np.ndarray = field(init=False, repr=False)
    _drift: Dict[str, np.ndarray] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        check_probability("posture_accuracy", self.posture_accuracy)
        check_probability("gesture_accuracy", self.gesture_accuracy)
        self._rng = ensure_rng(self.seed)
        # Per-dimension noise scale proportional to the spread of means.
        means = []
        for post_sig in POSTURAL_SIGNATURES.values():
            for gest_sig in GESTURAL_SIGNATURES.values():
                means.append(_signature_mean(post_sig, gest_sig))
        spread = np.std(np.array(means), axis=0)
        self._feature_scale = np.maximum(spread * self.feature_noise, 1e-3)

    # -- label noise -----------------------------------------------------------

    def observe_posture(self, true_posture: str) -> str:
        """Noisy postural classification of the pocket phone."""
        if self._rng.random() < self.posture_accuracy:
            return true_posture
        options = _POSTURE_CONFUSIONS.get(true_posture, ())
        if not options:
            return true_posture
        return str(self._rng.choice(list(options)))

    def observe_gesture(self, true_gesture: str) -> str:
        """Noisy oral-gesture classification of the neck tag."""
        if self._rng.random() < self.gesture_accuracy:
            return true_gesture
        options = _GESTURE_CONFUSIONS.get(true_gesture, ())
        if not options:
            return true_gesture
        return str(self._rng.choice(list(options)))

    # -- continuous emissions ----------------------------------------------------

    def emission_mean(self, posture: str, gesture: Optional[str]) -> np.ndarray:
        """Noise-free emission mean for a micro state (used in tests)."""
        post_sig = POSTURAL_SIGNATURES[posture]
        gest_sig = GESTURAL_SIGNATURES[gesture] if gesture is not None else None
        return _signature_mean(post_sig, gest_sig)

    def sample_features(
        self, posture: str, gesture: Optional[str], drift_key: str = ""
    ) -> Tuple[float, ...]:
        """Draw the continuous emission vector for one step.

        Besides white noise, each ``drift_key`` (one per resident) carries a
        slowly varying AR(1) disturbance: wearable features in the wild are
        *correlated* within a session (device placement, personal style), so
        segment-level averaging cannot wash the noise out.  Without this,
        feature-only macro classifiers become unrealistically strong.
        """
        mean = self.emission_mean(posture, gesture)
        drift = self._drift.get(drift_key)
        if drift is None:
            drift = self._rng.normal(0.0, self.drift_level * self._feature_scale)
        innovation_std = self.drift_level * self._feature_scale * np.sqrt(1 - self.drift_rho**2)
        drift = self.drift_rho * drift + self._rng.normal(0.0, innovation_std)
        self._drift[drift_key] = drift
        noisy = mean + drift + self._rng.normal(0.0, self._feature_scale)
        return tuple(float(v) for v in noisy)

    @property
    def feature_dim(self) -> int:
        """Dimensionality of the emission vector."""
        return len(FEATURE_NAMES)
