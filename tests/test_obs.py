"""Observability subsystem: metrics primitives, tracer, runtime switch,
and the invariant that instrumentation never changes decoded labels."""

import json
import threading

import pytest

from repro.core.engine import CaceEngine
from repro.obs import provenance
from repro.obs import runtime as obs
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability off and clean."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestCounterGauge:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert reg.counter("x") is c  # get-or-create returns the instrument

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(3.0)
        g.inc()
        g.dec(0.5)
        assert g.value == 3.5

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("name")

    def test_counter_thread_safety(self):
        c = MetricsRegistry().counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_summary_and_percentiles(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for v in [0.5, 1.5, 1.5, 3.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(6.5)
        assert s["min"] == 0.5 and s["max"] == 3.0
        # Percentiles are interpolated within buckets, clamped to min/max.
        assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]
        with pytest.raises(ValueError):
            h.percentile(1.0)

    def test_empty_histogram_is_all_zero(self):
        s = Histogram("h").summary()
        assert s == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_overflow_lands_in_inf_bucket(self):
        h = Histogram("h", buckets=[1.0])
        h.observe(50.0)
        assert h.bucket_counts() == [(1.0, 0), (float("inf"), 1)]

    def test_time_context_manager_observes(self):
        h = Histogram("h")
        with h.time():
            pass
        assert h.count == 1 and h.sum >= 0.0

    def test_default_buckets_cover_decode_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0


class TestRegistry:
    def test_scope_shares_storage_under_prefix(self):
        root = MetricsRegistry()
        child = root.scope("serve")
        child.counter("pushes").inc(2)
        assert root.counter("serve.pushes").value == 2
        assert set(child.snapshot()) == {"serve.pushes"}
        assert "serve.pushes" in root.snapshot()

    def test_scope_reset_only_drops_subtree(self):
        root = MetricsRegistry()
        root.counter("keep").inc()
        child = root.scope("drop")
        child.counter("x").inc()
        child.reset()
        assert set(root.snapshot()) == {"keep"}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.histogram("b").observe(0.01)
        data = json.loads(reg.to_json())
        assert data["a"] == {"type": "counter", "value": 3}
        assert data["b"]["count"] == 1

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("router.steps").inc(7)
        reg.gauge("router.sessions_active").set(2)
        reg.histogram("push.seconds", buckets=[0.1]).observe(0.05)
        text = reg.render_prometheus()
        assert "# TYPE repro_router_steps counter" in text
        assert "repro_router_steps_total 7" in text
        assert "repro_router_sessions_active 2.0" in text
        assert 'repro_push_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_push_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_push_seconds_count 1" in text


class TestTracer:
    def test_nested_spans(self):
        tracer = Tracer()
        with tracer.span("decode", family="coupled"):
            with tracer.span("trellis_sweep"):
                pass
        roots = tracer.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "decode"
        assert root.attrs == {"family": "coupled"}
        assert [c.name for c in root.children] == ["trellis_sweep"]
        assert root.duration >= root.children[0].duration >= 0.0

    def test_root_ring_is_bounded(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["s2", "s3", "s4"]

    def test_to_dict_is_json_serialisable(self):
        tracer = Tracer()
        with tracer.span("a", t0=1):
            pass
        json.dumps(tracer.to_dict())


class TestRuntimeSwitch:
    def test_defaults_off_and_nullspan(self):
        assert not obs.metrics_enabled() and not obs.tracing_enabled()
        assert obs.registry_if_enabled() is None
        assert obs.span("x") is NULL_SPAN
        assert obs.timed_span("x", metric="m") is NULL_SPAN

    def test_enable_routes_to_globals(self):
        obs.enable(metrics=True, tracing=True)
        assert obs.registry_if_enabled() is obs.get_registry()
        with obs.timed_span("work", metric="w.seconds", counts={"w.items": 3}):
            pass
        assert obs.get_registry().histogram("w.seconds").count == 1
        assert obs.get_registry().counter("w.items").value == 3
        assert [s.name for s in obs.get_tracer().roots()] == ["work"]

    def test_metrics_without_tracing_records_no_spans(self):
        obs.enable(metrics=True, tracing=False)
        with obs.timed_span("work", metric="w.seconds"):
            pass
        assert obs.get_registry().histogram("w.seconds").count == 1
        assert obs.get_tracer().roots() == []

    def test_provenance_keys(self):
        p = provenance()
        assert {"python", "numpy", "cpu_count", "recorded_at"} <= set(p)
        json.dumps(p)


class TestInstrumentedDecode:
    @pytest.fixture(scope="class")
    def fitted(self, cace_split):
        train, test = cace_split
        obs.disable()
        engine = CaceEngine(strategy="c2", seed=23).fit(train)
        return engine, test

    def test_labels_bit_identical_and_registry_populated(self, fitted):
        engine, test = fitted
        seq = test.sequences[0]
        baseline = engine.model_.decode(seq)
        obs.enable(metrics=True, tracing=True)
        instrumented = engine.model_.decode(seq)
        assert instrumented == baseline
        snap = obs.get_registry().snapshot()
        assert snap["decode.coupled.seconds"]["count"] == 1
        assert snap["decode.coupled.steps"]["value"] == len(seq)
        assert snap["decode.coupled.sweep_seconds"]["count"] == 1
        assert snap["kernel.prepare_seconds"]["count"] >= 1
        names = [s.name for s in obs.get_tracer().roots()]
        assert "decode" in names

    def test_predict_dataset_serial_metrics(self, fitted):
        engine, test = fitted
        obs.enable(metrics=True)
        baseline_off = None
        out = engine.predict_dataset(test, workers=1)
        snap = obs.get_registry().snapshot()
        assert snap["engine.sessions_decoded"]["value"] == len(test.sequences)
        assert snap["engine.decode_seconds"]["count"] == len(test.sequences)
        obs.disable()
        baseline_off = engine.predict_dataset(test, workers=1)
        assert out == baseline_off

    def test_smoother_metrics_and_cache_accounting(self, fitted):
        engine, test = fitted
        seq = test.sequences[0]
        baseline = engine.step_filter(lag=2).run(seq)
        obs.enable(metrics=True)
        instrumented = engine.step_filter(lag=2).run(seq)
        assert instrumented == baseline
        reg = obs.get_registry()
        assert reg.counter("smoother.steps").value == len(seq)
        assert reg.counter("smoother.commits").value == len(seq)
        assert reg.histogram("smoother.push_seconds").count == len(seq)
        # Push-time blocks: one per step after the first; the lag-window
        # sweeps reuse them instead of recomputing.
        assert reg.counter("smoother.trans_blocks_computed").value == len(seq) - 1
        assert reg.counter("smoother.trans_blocks_reused").value > 0
