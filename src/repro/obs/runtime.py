"""Process-wide observability switchboard.

Instrumented call sites throughout the stack (engine, kernels, smoother,
serving) resolve their instruments through this module so observability
is one switch, not a constructor argument threaded through every layer:

* :func:`enable` / :func:`disable` flip metrics and tracing for the
  process; both default to **off**, and every instrumented hot path
  guards on that flag (a cached ``None`` handle or the shared
  :data:`~repro.obs.tracing.NULL_SPAN`), so the uninstrumented cost is a
  pointer check — the <3% decode-overhead invariant asserted by
  ``benchmarks/bench_obs_overhead.py``.
* :func:`registry_if_enabled` is what components call at construction to
  cache instrument handles (or ``None``).
* :func:`span` / :func:`timed_span` are the call-site helpers: a tracer
  span when tracing is on, plus (for ``timed_span``) a latency histogram
  observation and counter increments when metrics are on.

Explicit :class:`~repro.obs.metrics.MetricsRegistry` instances can still
be handed to components that accept one (e.g. ``SessionRouter``); the
globals here are the default wiring, not the only wiring.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()
_METRICS_ON = False
_TRACING_ON = False


def enable(metrics: bool = True, tracing: bool = False) -> None:
    """Turn process-wide observability on (idempotent)."""
    global _METRICS_ON, _TRACING_ON
    _METRICS_ON = bool(metrics)
    _TRACING_ON = bool(tracing)


def disable() -> None:
    """Turn both metrics and tracing off (instruments keep their values)."""
    global _METRICS_ON, _TRACING_ON
    _METRICS_ON = False
    _TRACING_ON = False


def metrics_enabled() -> bool:
    return _METRICS_ON


def tracing_enabled() -> bool:
    return _TRACING_ON


def get_registry() -> MetricsRegistry:
    """The process-wide registry (valid regardless of the enabled flag)."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-wide tracer (valid regardless of the enabled flag)."""
    return _TRACER


def registry_if_enabled() -> Optional[MetricsRegistry]:
    """The global registry when metrics are on, else ``None`` — the hook
    components use to cache instrument handles exactly once."""
    return _REGISTRY if _METRICS_ON else None


def reset() -> None:
    """Clear collected metrics and spans (tests, CLI runs)."""
    _REGISTRY.reset()
    _TRACER.reset()


def span(name: str, **attrs):
    """A tracer span when tracing is on, the shared no-op otherwise."""
    if not _TRACING_ON:
        return NULL_SPAN
    return _TRACER.span(name, **attrs)


class _TimedSpan:
    """Span + histogram + counters for one instrumented block."""

    __slots__ = ("_span_cm", "_hist", "_counts", "_t0")

    def __init__(self, span_cm, hist, counts) -> None:
        self._span_cm = span_cm
        self._hist = hist
        self._counts = counts

    def __enter__(self) -> "_TimedSpan":
        if self._span_cm is not None:
            self._span_cm.__enter__()
        if self._hist is not None:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._hist is not None:
            self._hist.observe(time.perf_counter() - self._t0)
        for counter, n in self._counts:
            counter.inc(n)
        if self._span_cm is not None:
            self._span_cm.__exit__(*exc)


def timed_span(
    name: str,
    metric: Optional[str] = None,
    counts: Optional[Dict[str, int]] = None,
    **attrs,
):
    """Instrument a block: tracer span (when tracing), latency histogram
    observation into *metric* and counter increments from *counts* (when
    metrics).  Returns the shared no-op when everything is off."""
    metrics_on = _METRICS_ON
    if not _TRACING_ON and not metrics_on:
        return NULL_SPAN
    span_cm = _TRACER.span(name, **attrs) if _TRACING_ON else None
    hist = _REGISTRY.histogram(metric) if (metrics_on and metric) else None
    counters = (
        [(_REGISTRY.counter(cn), n) for cn, n in counts.items()]
        if (metrics_on and counts)
        else ()
    )
    return _TimedSpan(span_cm, hist, counters)
