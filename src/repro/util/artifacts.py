"""Versioned fitted-model artifacts: fit on one box, serve on N.

:func:`save_engine` writes a fitted :class:`~repro.core.engine.CaceEngine`
— mined rule set, constraint statistics, GMM banks, object CPTs, and the
model family's configuration — as a single JSON document with an embedded
schema version (``repro.model/1``) and a sha256 content fingerprint.
:func:`load_engine` verifies both before reconstructing the engine.

Only *counted/fitted state* is stored.  Everything derived from it —
compiled rule kernels, state-space builders, precomputed transition log
tables, the stacked GMM bank, the object-evidence baseline — is rebuilt
deterministically by the model constructors on load, so a reloaded engine
decodes **bit-identically** to the one that was saved (floats round-trip
exactly through JSON's shortest-repr encoding; the derived tables are pure
functions of them).

No pickle anywhere: artifacts are inspectable, diff-able, and safe to load
from untrusted storage.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Union

from repro.core.chdbn import CoupledHdbn, GmmBank, _MacroGmm
from repro.core.emissions import ObjectEvidenceTable
from repro.core.engine import CaceEngine
from repro.core.hdbn import SingleUserHdbn
from repro.core.loosely_coupled import NChainHdbn
from repro.models.distributions import GaussianEmission, LabelIndex
from repro.models.hmm import MacroHmm
from repro.util.serialization import (
    array_from_obj,
    array_to_obj,
    constraint_model_from_dict,
    constraint_model_to_dict,
    rule_set_from_dict,
    rule_set_to_dict,
)

MODEL_SCHEMA = "repro.model/1"

#: Constructor arguments preserved per HDBN family (everything else the
#: dataclasses derive in ``__post_init__``).
_HDBN_CONFIG = {
    "coupled": (
        "prune_per_user",
        "prune_cross",
        "gmm_components",
        "max_states_per_user",
        "max_joint_states",
        "max_joint_states_pruned",
        "min_change_prob",
        "use_feature_gmm",
        "pir_miss_penalty",
        "unexplained_subloc_penalty",
        "unexplained_room_penalty",
        "soft_exclusion_penalty",
        "use_sequence_kernels",
    ),
    "nchain": (
        "prune_cross",
        "gmm_components",
        "max_states_per_user",
        "max_joint_states",
        "max_joint_states_pruned",
        "min_change_prob",
        "use_feature_gmm",
        "pir_miss_penalty",
        "unexplained_subloc_penalty",
        "unexplained_room_penalty",
        "soft_exclusion_penalty",
        "use_sequence_kernels",
    ),
    "single_user": (
        "gmm_components",
        "max_states_per_user",
        "min_change_prob",
        "use_feature_gmm",
        "pir_miss_penalty",
        "temporal",
        "use_sequence_kernels",
    ),
}

_HDBN_CLASSES = {
    "coupled": CoupledHdbn,
    "nchain": NChainHdbn,
    "single_user": SingleUserHdbn,
}


# ---------------------------------------------------------------------------
# model families
# ---------------------------------------------------------------------------


def _gmms_to_obj(gmms: Dict[int, _MacroGmm]) -> Dict:
    return {
        str(m): {
            "weights": array_to_obj(g.weights),
            "means": array_to_obj(g.means),
            "inv_covs": array_to_obj(g.inv_covs),
            "logdets": array_to_obj(g.logdets),
        }
        for m, g in sorted(gmms.items())
    }


def _gmms_from_obj(obj: Dict) -> Dict[int, _MacroGmm]:
    return {
        int(m): _MacroGmm(
            weights=array_from_obj(g["weights"]),
            means=array_from_obj(g["means"]),
            inv_covs=array_from_obj(g["inv_covs"]),
            logdets=array_from_obj(g["logdets"]),
        )
        for m, g in obj.items()
    }


def _hdbn_to_obj(model, kind: str) -> Dict:
    return {
        "kind": kind,
        "config": {name: getattr(model, name) for name in _HDBN_CONFIG[kind]},
        "constraint_model": constraint_model_to_dict(model.constraint_model),
        "rule_set": rule_set_to_dict(model.rule_set)
        if model.rule_set is not None
        else None,
        "gmms": _gmms_to_obj(model.gmms_),
        "object_index": {obj: int(i) for obj, i in sorted(model._object_index.items())},
        "log_obj": array_to_obj(model._log_obj),
    }


def _hdbn_from_obj(obj: Dict):
    cls = _HDBN_CLASSES[obj["kind"]]
    rules = obj["rule_set"]
    model = cls(
        constraint_model=constraint_model_from_dict(obj["constraint_model"]),
        rule_set=rule_set_from_dict(rules) if rules is not None else None,
        seed=0,  # the RNG only seeds fitting; the fitted state is installed below
        **obj["config"],
    )
    model.gmms_ = _gmms_from_obj(obj["gmms"])
    model._object_index = {name: int(i) for name, i in obj["object_index"].items()}
    model._log_obj = array_from_obj(obj["log_obj"])
    # The same derived banks fit_emission_tables builds after fitting.
    model._obj_evidence = ObjectEvidenceTable(model._object_index, model._log_obj)
    model._gmm_bank = GmmBank(model.gmms_)
    return model


def _hmm_to_obj(model: MacroHmm) -> Dict:
    em = model.emission_
    return {
        "kind": "macro_hmm",
        "config": {"alpha": model.alpha},
        "macro_index": list(model.macro_index.labels),
        "prior": array_to_obj(model.prior_),
        "trans": array_to_obj(model.trans_),
        "emission": {
            "dim": em.dim,
            "means": {str(s): array_to_obj(v) for s, v in sorted(em.means.items())},
            "covariances": {
                str(s): array_to_obj(v) for s, v in sorted(em.covariances.items())
            },
            "pooled_mean": array_to_obj(em._pooled_mean),
            "pooled_cov": array_to_obj(em._pooled_cov),
        },
    }


def _hmm_from_obj(obj: Dict) -> MacroHmm:
    model = MacroHmm(alpha=obj["config"]["alpha"])
    model.macro_index = LabelIndex(tuple(obj["macro_index"]))
    model.prior_ = array_from_obj(obj["prior"])
    model.trans_ = array_from_obj(obj["trans"])
    em_obj = obj["emission"]
    em = GaussianEmission(dim=int(em_obj["dim"]))
    em.means = {int(s): array_from_obj(v) for s, v in em_obj["means"].items()}
    em.covariances = {
        int(s): array_from_obj(v) for s, v in em_obj["covariances"].items()
    }
    em._pooled_mean = array_from_obj(em_obj["pooled_mean"])
    em._pooled_cov = array_from_obj(em_obj["pooled_cov"])
    model.emission_ = em
    return model


def _model_to_obj(model) -> Dict:
    if isinstance(model, CoupledHdbn):
        return _hdbn_to_obj(model, "coupled")
    if isinstance(model, NChainHdbn):
        return _hdbn_to_obj(model, "nchain")
    if isinstance(model, SingleUserHdbn):
        return _hdbn_to_obj(model, "single_user")
    if isinstance(model, MacroHmm):
        return _hmm_to_obj(model)
    raise TypeError(f"cannot serialise model family {type(model).__name__}")


def _model_from_obj(obj: Dict):
    kind = obj.get("kind")
    if kind in _HDBN_CLASSES:
        return _hdbn_from_obj(obj)
    if kind == "macro_hmm":
        return _hmm_from_obj(obj)
    raise ValueError(f"unknown model kind {kind!r} in artifact")


# ---------------------------------------------------------------------------
# bare-model payloads (worker-pool shipping)
# ---------------------------------------------------------------------------


def payload_supported(model) -> bool:
    """Whether *model* round-trips through the JSON artifact codec.

    Exact-type check on purpose: subclasses (e.g. the reference decoders)
    may carry state or overrides the codec does not capture, so they must
    fall back to pickling.
    """
    return type(model) in (CoupledHdbn, NChainHdbn, SingleUserHdbn, MacroHmm)


def model_to_payload(model) -> bytes:
    """Serialise a bare fitted model as compact JSON artifact bytes."""
    obj = {"schema": MODEL_SCHEMA, "model": _model_to_obj(model)}
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def model_from_payload(payload: bytes):
    """Inverse of :func:`model_to_payload` (derived tables rebuilt)."""
    obj = json.loads(payload.decode("utf-8"))
    schema = obj.get("schema")
    if schema != MODEL_SCHEMA:
        raise ValueError(
            f"unsupported model-payload schema {schema!r} (want {MODEL_SCHEMA})"
        )
    return _model_from_obj(obj["model"])


# ---------------------------------------------------------------------------
# engine artifacts
# ---------------------------------------------------------------------------


def _fingerprint(payload: Dict) -> str:
    """sha256 over the canonical JSON form (fingerprint field excluded)."""
    body = {k: v for k, v in payload.items() if k != "fingerprint"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def engine_to_dict(engine: CaceEngine) -> Dict:
    """Plain-dict artifact form of a *fitted* engine."""
    if engine.model_ is None:
        raise ValueError("cannot save an unfitted engine (call fit first)")
    payload: Dict = {
        "schema": MODEL_SCHEMA,
        "engine": {
            "strategy": engine.strategy,
            "min_support": engine.min_support,
            "min_confidence": engine.min_confidence,
            "gmm_components": engine.gmm_components,
            "max_states_per_user": engine.max_states_per_user,
        },
        "rule_set": rule_set_to_dict(engine.rule_set_)
        if engine.rule_set_ is not None
        else None,
        "model": _model_to_obj(engine.model_),
    }
    payload["fingerprint"] = _fingerprint(payload)
    return payload


def engine_from_dict(data: Dict) -> CaceEngine:
    """Inverse of :func:`engine_to_dict`, with schema + integrity checks."""
    schema = data.get("schema")
    if schema != MODEL_SCHEMA:
        raise ValueError(
            f"unsupported model-artifact schema {schema!r} (want {MODEL_SCHEMA})"
        )
    expected = data.get("fingerprint")
    actual = _fingerprint(data)
    if expected != actual:
        raise ValueError(
            "model artifact fingerprint mismatch "
            f"(stored {str(expected)[:12]}…, computed {actual[:12]}…) — "
            "the file is corrupted or was edited after saving"
        )
    cfg = data["engine"]
    engine = CaceEngine(
        strategy=cfg["strategy"],
        min_support=cfg["min_support"],
        min_confidence=cfg["min_confidence"],
        gmm_components=cfg["gmm_components"],
        max_states_per_user=cfg["max_states_per_user"],
        seed=0,  # the RNG only drives fitting, which already happened
    )
    rules = data["rule_set"]
    engine.rule_set_ = rule_set_from_dict(rules) if rules is not None else None
    engine.model_ = _model_from_obj(data["model"])
    return engine


def save_engine(engine: CaceEngine, path: Union[str, Path]) -> None:
    """Write a fitted engine as a ``repro.model/1`` JSON artifact."""
    Path(path).write_text(json.dumps(engine_to_dict(engine)))


def load_engine(path: Union[str, Path]) -> CaceEngine:
    """Read an artifact written by :func:`save_engine`."""
    return engine_from_dict(json.loads(Path(path).read_text()))
