"""Sensing substrate: wearable IMUs, ambient sensors, and event plumbing.

This package simulates the hardware complement of the paper's PogoPlug
testbed: 9-axis inertial measurement units (smartphone in pocket + Simplelink
SensorTag at the neck), binary PIR motion sensors, binary vibration object
sensors, and iBeacons used for sub-region localisation and multiple-occupancy
detection.  All simulated signals flow through :class:`~repro.sensors.events.
EventStream`, the analogue of the testbed's Ethernet tag manager.
"""

from repro.sensors.events import EventStream, SensorEvent, TagManager
from repro.sensors.ibeacon import Beacon, BeaconReceiver, trilaterate
from repro.sensors.imu import ImuSample, ImuSimulator, MotionSignature, signature_for
from repro.sensors.object_sensor import ObjectSensor
from repro.sensors.pir import PirSensor
from repro.sensors.quaternion import Quaternion
from repro.sensors.trajectory import (
    OrientationFilter,
    absolute_acceleration,
    high_pass,
    relative_trajectory,
)

__all__ = [
    "EventStream",
    "SensorEvent",
    "TagManager",
    "Beacon",
    "BeaconReceiver",
    "trilaterate",
    "ImuSample",
    "ImuSimulator",
    "MotionSignature",
    "signature_for",
    "ObjectSensor",
    "PirSensor",
    "Quaternion",
    "OrientationFilter",
    "absolute_acceleration",
    "high_pass",
    "relative_trajectory",
]
