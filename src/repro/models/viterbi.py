"""Viterbi decoding and forward-backward smoothing.

Two variants serve the library:

* :func:`viterbi_decode` / :func:`forward_backward` — dense implementations
  over a fixed state space (baseline HMM / CHMM / FCRF);
* :func:`viterbi_trellis` — decoding over a *time-varying candidate
  trellis*, where each step exposes its own (possibly pruned) state list.
  This is what the loosely-coupled HDBN runs on: the correlation miner
  shrinks each step's candidate set before decoding, which is exactly where
  the paper's 16x overhead reduction comes from.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Sequence, Tuple

import numpy as np

NEG_INF = -1e30


def viterbi_decode(
    log_prior: np.ndarray, log_trans: np.ndarray, log_emissions: np.ndarray
) -> Tuple[np.ndarray, float]:
    """MAP state path for a fixed-state HMM.

    Parameters
    ----------
    log_prior:
        ``(S,)`` initial log probabilities.
    log_trans:
        ``(S, S)`` log transition matrix (row: from, column: to).
    log_emissions:
        ``(T, S)`` per-step emission log likelihoods.

    Returns the path ``(T,)`` and its joint log score.
    """
    log_prior = np.asarray(log_prior, dtype=float)
    log_trans = np.asarray(log_trans, dtype=float)
    log_emissions = np.asarray(log_emissions, dtype=float)
    t_len, n_states = log_emissions.shape
    if log_prior.shape != (n_states,) or log_trans.shape != (n_states, n_states):
        raise ValueError("inconsistent shapes between prior, transitions, emissions")
    if t_len == 0:
        return np.empty(0, dtype=int), 0.0

    delta = log_prior + log_emissions[0]
    backpointers = np.zeros((t_len, n_states), dtype=int)
    for t in range(1, t_len):
        scores = delta[:, None] + log_trans
        backpointers[t] = np.argmax(scores, axis=0)
        delta = scores[backpointers[t], np.arange(n_states)] + log_emissions[t]

    path = np.zeros(t_len, dtype=int)
    path[-1] = int(np.argmax(delta))
    best = float(delta[path[-1]])
    for t in range(t_len - 1, 0, -1):
        path[t - 1] = backpointers[t, path[t]]
    return path, best


def forward_backward(
    log_prior: np.ndarray, log_trans: np.ndarray, log_emissions: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Posterior marginals and pairwise statistics for a fixed-state HMM.

    Returns ``(gamma, xi_sum, log_likelihood)`` where ``gamma`` is ``(T, S)``
    posterior state marginals and ``xi_sum`` is the ``(S, S)`` expected
    transition-count matrix (summed over time), both in probability space.
    """
    log_prior = np.asarray(log_prior, dtype=float)
    log_trans = np.asarray(log_trans, dtype=float)
    log_emissions = np.asarray(log_emissions, dtype=float)
    t_len, n_states = log_emissions.shape
    if t_len == 0:
        return np.empty((0, n_states)), np.zeros((n_states, n_states)), 0.0

    def _lse(arr: np.ndarray, axis: int) -> np.ndarray:
        m = np.max(arr, axis=axis, keepdims=True)
        m = np.where(np.isfinite(m), m, 0.0)
        return np.squeeze(m, axis=axis) + np.log(
            np.exp(arr - m).sum(axis=axis)
        )

    log_alpha = np.full((t_len, n_states), NEG_INF)
    log_alpha[0] = log_prior + log_emissions[0]
    for t in range(1, t_len):
        log_alpha[t] = log_emissions[t] + _lse(log_alpha[t - 1][:, None] + log_trans, axis=0)

    log_beta = np.zeros((t_len, n_states))
    for t in range(t_len - 2, -1, -1):
        log_beta[t] = _lse(log_trans + (log_emissions[t + 1] + log_beta[t + 1])[None, :], axis=1)

    log_z = _lse(log_alpha[-1], axis=0)
    gamma = np.exp(log_alpha + log_beta - log_z)

    xi_sum = np.zeros((n_states, n_states))
    for t in range(t_len - 1):
        log_xi = (
            log_alpha[t][:, None]
            + log_trans
            + (log_emissions[t + 1] + log_beta[t + 1])[None, :]
            - log_z
        )
        xi_sum += np.exp(log_xi)
    return gamma, xi_sum, float(log_z)


def viterbi_trellis(
    candidates: Sequence[Sequence[Hashable]],
    log_prior_fn: Callable[[Hashable], float],
    log_trans_fn: Callable[[Hashable, Hashable], float],
    log_emit_fn: Callable[[int, Hashable], float],
) -> Tuple[List[Hashable], float]:
    """MAP path over a time-varying candidate trellis.

    ``candidates[t]`` lists the admissible states at step *t* (after any
    pruning); the callables provide log prior, log transition, and log
    emission scores.  Complexity is ``sum_t |C_t| * |C_{t-1}|`` — pruning
    the candidate lists reduces work quadratically.
    """
    t_len = len(candidates)
    if t_len == 0:
        return [], 0.0
    if any(len(c) == 0 for c in candidates):
        raise ValueError("every step must have at least one candidate state")

    deltas: List[np.ndarray] = []
    backs: List[np.ndarray] = []
    first = candidates[0]
    deltas.append(
        np.array([log_prior_fn(s) + log_emit_fn(0, s) for s in first], dtype=float)
    )
    backs.append(np.zeros(len(first), dtype=int))

    for t in range(1, t_len):
        prev_states = candidates[t - 1]
        cur_states = candidates[t]
        prev_delta = deltas[-1]
        delta = np.full(len(cur_states), NEG_INF)
        back = np.zeros(len(cur_states), dtype=int)
        for j, cur in enumerate(cur_states):
            scores = prev_delta + np.array(
                [log_trans_fn(prev, cur) for prev in prev_states], dtype=float
            )
            best_i = int(np.argmax(scores))
            delta[j] = scores[best_i] + log_emit_fn(t, cur)
            back[j] = best_i
        deltas.append(delta)
        backs.append(back)

    last = int(np.argmax(deltas[-1]))
    best_score = float(deltas[-1][last])
    path_idx = [last]
    for t in range(t_len - 1, 0, -1):
        path_idx.append(int(backs[t][path_idx[-1]]))
    path_idx.reverse()
    return [candidates[t][i] for t, i in enumerate(path_idx)], best_score
