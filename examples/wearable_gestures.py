"""Micro-level recognition from raw 9-axis IMU streams (paper §VI-D, §VII-E).

Renders synthetic neck-tag and pocket-phone IMU signals for every micro
activity class, fuses them into absolute acceleration trajectories
(complementary filter + high-pass + gravity removal), extracts the paper's
32 statistical features per 1.5 s frame (including Goertzel 1-5 Hz), and
trains the from-scratch random forest — then smooths a mixed-activity
stream with change-point detection.

Run:  python examples/wearable_gestures.py
"""

from collections import Counter

from repro.micro import MicroPipeline
from repro.sensors.imu import ImuSimulator
from repro.sensors.trajectory import absolute_acceleration


def main() -> None:
    for kind, paper_acc in (("postural", 0.986), ("gestural", 0.953)):
        print(f"\n=== {kind} pipeline ===")
        pipeline = MicroPipeline(kind=kind, seed=7, n_trees=15)
        report = pipeline.train_and_evaluate(seconds_per_class=36.0)
        print(report)
        print(f"  paper: {paper_acc:.1%}")

    # Streaming classification with change-point smoothing.
    print("\n=== streaming a mixed oral-gesture session ===")
    pipeline = MicroPipeline(kind="gestural", seed=13, n_trees=15)
    feats, labels = pipeline.generate_dataset(seconds_per_class=30.0)
    pipeline.train(feats, labels)

    imu = ImuSimulator(seed=21)
    script = [("silent", 12.0), ("talking", 15.0), ("eating", 15.0), ("silent", 9.0)]
    samples, spans = imu.render_labelled("gestural", script)
    trajectory = absolute_acceleration(samples)
    decoded = pipeline.classify_stream(trajectory)
    print(f"true spans: {[(lb, f'{a:.0f}-{b:.0f}s') for lb, a, b in spans]}")
    print(f"decoded frame labels ({len(decoded)} frames):")
    print("  " + " ".join(f"{lb[:3]}" for lb in decoded))
    print(f"label mix: {dict(Counter(decoded))}")


if __name__ == "__main__":
    main()
