"""Cross-cutting property-based tests on evaluation and model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.duration import duration_error
from repro.eval.metrics import evaluate_predictions
from repro.models.distributions import (
    log_normalize,
    normalize,
    shrink_coupled_transitions,
)
from repro.models.viterbi import forward_backward, viterbi_decode

_LABELS = ["a", "b", "c"]


@st.composite
def label_pairs(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    truth = draw(st.lists(st.sampled_from(_LABELS), min_size=n, max_size=n))
    predicted = draw(st.lists(st.sampled_from(_LABELS), min_size=n, max_size=n))
    return truth, predicted


class TestMetricsProperties:
    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_accuracy_bounds_and_identity(self, pair):
        truth, predicted = pair
        report = evaluate_predictions(truth, predicted, _LABELS)
        assert 0.0 <= report.accuracy <= 1.0
        perfect = evaluate_predictions(truth, truth, _LABELS)
        assert perfect.accuracy == 1.0
        assert perfect.fp_rate == pytest.approx(0.0)

    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_recall_weighted_equals_accuracy(self, pair):
        # Pooled recall weighted by class support is exactly accuracy.
        truth, predicted = pair
        report = evaluate_predictions(truth, predicted, _LABELS)
        assert report.recall == pytest.approx(report.accuracy)

    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_per_class_metrics_bounded(self, pair):
        truth, predicted = pair
        report = evaluate_predictions(truth, predicted, _LABELS)
        for metrics in report.per_class.values():
            assert 0.0 <= metrics.precision <= 1.0
            assert 0.0 <= metrics.recall <= 1.0
            assert 0.0 <= metrics.fp_rate <= 1.0


class TestDurationProperties:
    @given(st.lists(st.sampled_from(_LABELS), min_size=2, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_perfect_prediction_zero_error(self, labels):
        assert duration_error(labels, labels, step_s=15.0) == pytest.approx(0.0)

    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_error_non_negative(self, pair):
        truth, predicted = pair
        assert duration_error(truth, predicted, step_s=15.0) >= 0.0


class TestDistributionProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=12
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_normalize_sums_to_one(self, weights):
        out = normalize(np.array(weights))
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()

    @given(
        st.lists(
            st.floats(min_value=-30.0, max_value=30.0), min_size=2, max_size=12
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_log_normalize_consistency(self, log_weights):
        out = log_normalize(np.array(log_weights))
        assert np.exp(out).sum() == pytest.approx(1.0, rel=1e-6)

    def test_shrinkage_interpolates_toward_marginal(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 3, size=(4, 4, 4)).astype(float)
        heavy = counts.copy()
        heavy[0, 0, :] = [100.0, 0.0, 0.0, 0.0]
        shrunk = shrink_coupled_transitions(heavy, kappa=20.0)
        # Well-observed context rows stay close to their empirical row...
        assert shrunk[0, 0, 0] > 0.8
        # ...and every row is a distribution.
        assert np.allclose(shrunk.sum(axis=2), 1.0)


class TestViterbiProperties:
    @st.composite
    @staticmethod
    def hmm_instances(draw):
        n = draw(st.integers(min_value=2, max_value=4))
        t = draw(st.integers(min_value=2, max_value=6))
        rng = np.random.default_rng(draw(st.integers(0, 2**16)))
        prior = rng.dirichlet(np.ones(n))
        trans = rng.dirichlet(np.ones(n), size=n)
        log_e = rng.normal(0, 1, size=(t, n))
        return np.log(prior), np.log(trans), log_e

    @given(hmm_instances())
    @settings(max_examples=40, deadline=None)
    def test_viterbi_matches_brute_force(self, instance):
        log_prior, log_trans, log_e = instance
        path, score = viterbi_decode(log_prior, log_trans, log_e)
        t, n = log_e.shape

        def path_score(states):
            s = log_prior[states[0]] + log_e[0, states[0]]
            for i in range(1, t):
                s += log_trans[states[i - 1], states[i]] + log_e[i, states[i]]
            return s

        from itertools import product

        best = max(product(range(n), repeat=t), key=path_score)
        assert path_score(list(path)) == pytest.approx(path_score(best))

    @given(hmm_instances())
    @settings(max_examples=40, deadline=None)
    def test_forward_backward_marginals_normalised(self, instance):
        log_prior, log_trans, log_e = instance
        gamma, _, _ = forward_backward(log_prior, log_trans, log_e)
        assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-8)

    @given(hmm_instances())
    @settings(max_examples=40, deadline=None)
    def test_viterbi_path_has_positive_marginals(self, instance):
        log_prior, log_trans, log_e = instance
        path, _ = viterbi_decode(log_prior, log_trans, log_e)
        gamma, _, _ = forward_backward(log_prior, log_trans, log_e)
        for t, state in enumerate(path):
            assert gamma[t, state] > 0.0
