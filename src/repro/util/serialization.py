"""JSON (de)serialisation for mined rules, labelled datasets, and the
model-artifact building blocks.

Rule sets are the system's distilled behavioural knowledge — the paper's
Base application even lets users *seed* them from a phone UI — so they
need a stable on-disk form that survives across sessions and homes.
Datasets round-trip too, which makes experiment corpora reproducible
artefacts rather than in-memory accidents.  The ndarray / constraint-model
helpers here are what :mod:`repro.util.artifacts` assembles into versioned
fitted-model artifacts.

Everything is plain JSON: no pickle, no custom binary, diff-able in code
review.  Schema versions are embedded so future format changes can be
detected instead of silently mis-read.  Floats survive bit-exactly —
``json`` emits Python's shortest ``repr`` and reads it back to the same
IEEE-754 double — which is what makes reloaded models decode
bit-identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.datasets.trace import (
    ContextStep,
    Dataset,
    LabeledSequence,
    ResidentObservation,
    ResidentTruth,
)
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.context_rules import Item
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.mining.rules import AssociationRule, ExclusionRule
from repro.models.distributions import LabelIndex

_RULES_SCHEMA = "repro.rules/1"
_DATASET_SCHEMA = "repro.dataset/1"


# ---------------------------------------------------------------------------
# rule sets
# ---------------------------------------------------------------------------


def _item_to_obj(item: Item) -> List[str]:
    return [item.slot, item.time, item.attr, item.value]


def _item_from_obj(obj: List[str]) -> Item:
    return Item(*obj)


def rule_set_to_dict(rule_set: CorrelationRuleSet) -> Dict:
    """Plain-dict form of a rule set (stable field order)."""
    return {
        "schema": _RULES_SCHEMA,
        "forcing_rules": [
            {
                "antecedent": sorted(_item_to_obj(i) for i in rule.antecedent),
                "consequent": _item_to_obj(rule.consequent),
                "support": rule.support,
                "confidence": rule.confidence,
            }
            for rule in rule_set.forcing_rules
        ],
        "exclusions": [
            {
                "a": _item_to_obj(excl.a),
                "b": _item_to_obj(excl.b),
                "support_a": excl.support_a,
                "support_b": excl.support_b,
                "hard": excl.hard,
            }
            for excl in rule_set.exclusions
        ],
    }


def rule_set_from_dict(data: Dict) -> CorrelationRuleSet:
    """Inverse of :func:`rule_set_to_dict`."""
    schema = data.get("schema")
    if schema != _RULES_SCHEMA:
        raise ValueError(f"unsupported rule-set schema {schema!r} (want {_RULES_SCHEMA})")
    forcing = [
        AssociationRule(
            antecedent=frozenset(_item_from_obj(i) for i in rule["antecedent"]),
            consequent=_item_from_obj(rule["consequent"]),
            support=float(rule["support"]),
            confidence=float(rule["confidence"]),
        )
        for rule in data["forcing_rules"]
    ]
    exclusions = [
        ExclusionRule(
            a=_item_from_obj(excl["a"]),
            b=_item_from_obj(excl["b"]),
            support_a=float(excl["support_a"]),
            support_b=float(excl["support_b"]),
            hard=bool(excl.get("hard", True)),
        )
        for excl in data["exclusions"]
    ]
    return CorrelationRuleSet(forcing_rules=forcing, exclusions=exclusions)


def save_rule_set(rule_set: CorrelationRuleSet, path: Union[str, Path]) -> None:
    """Write a rule set as JSON."""
    Path(path).write_text(json.dumps(rule_set_to_dict(rule_set), indent=2))


def load_rule_set(path: Union[str, Path]) -> CorrelationRuleSet:
    """Read a rule set written by :func:`save_rule_set`."""
    return rule_set_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# datasets
# ---------------------------------------------------------------------------


def _observation_to_obj(obs: ResidentObservation) -> Dict:
    return {
        "posture": obs.posture,
        "gesture": obs.gesture,
        "features": list(obs.features),
        "subloc_candidates": list(obs.subloc_candidates),
        "position_estimate": list(obs.position_estimate)
        if obs.position_estimate is not None
        else None,
    }


def _observation_from_obj(obj: Dict) -> ResidentObservation:
    estimate = obj.get("position_estimate")
    return ResidentObservation(
        posture=obj["posture"],
        gesture=obj["gesture"],
        features=tuple(float(v) for v in obj["features"]),
        subloc_candidates=tuple(obj["subloc_candidates"]),
        position_estimate=tuple(estimate) if estimate is not None else None,
    )


def _sequence_to_obj(seq: LabeledSequence) -> Dict:
    return {
        "home_id": seq.home_id,
        "resident_ids": list(seq.resident_ids),
        "step_s": seq.step_s,
        "steps": [
            {
                "t": step.t,
                "observations": {
                    rid: _observation_to_obj(obs)
                    for rid, obs in step.observations.items()
                },
                "rooms_fired": sorted(step.rooms_fired),
                "objects_fired": sorted(step.objects_fired),
                "sublocs_fired": sorted(step.sublocs_fired),
            }
            for step in seq.steps
        ],
        "truths": [
            {
                rid: [t.macro, t.posture, t.gesture, t.subloc, t.room]
                for rid, t in truth.items()
            }
            for truth in seq.truths
        ],
    }


def _sequence_from_obj(obj: Dict) -> LabeledSequence:
    steps = [
        ContextStep(
            t=float(step["t"]),
            observations={
                rid: _observation_from_obj(o) for rid, o in step["observations"].items()
            },
            rooms_fired=frozenset(step["rooms_fired"]),
            objects_fired=frozenset(step["objects_fired"]),
            sublocs_fired=frozenset(step.get("sublocs_fired", [])),
        )
        for step in obj["steps"]
    ]
    truths = [
        {rid: ResidentTruth(*vals) for rid, vals in truth.items()}
        for truth in obj["truths"]
    ]
    return LabeledSequence(
        home_id=obj["home_id"],
        resident_ids=tuple(obj["resident_ids"]),
        step_s=float(obj["step_s"]),
        steps=steps,
        truths=truths,
    )


def dataset_to_dict(dataset: Dataset) -> Dict:
    """Plain-dict form of a dataset."""
    return {
        "schema": _DATASET_SCHEMA,
        "name": dataset.name,
        "macro_vocab": list(dataset.macro_vocab),
        "postural_vocab": list(dataset.postural_vocab),
        "gestural_vocab": list(dataset.gestural_vocab),
        "subloc_vocab": list(dataset.subloc_vocab),
        "has_gestural": dataset.has_gestural,
        "metadata": dataset.metadata,
        "sequences": [_sequence_to_obj(seq) for seq in dataset.sequences],
    }


def dataset_from_dict(data: Dict) -> Dataset:
    """Inverse of :func:`dataset_to_dict`."""
    schema = data.get("schema")
    if schema != _DATASET_SCHEMA:
        raise ValueError(f"unsupported dataset schema {schema!r} (want {_DATASET_SCHEMA})")
    return Dataset(
        name=data["name"],
        sequences=[_sequence_from_obj(obj) for obj in data["sequences"]],
        macro_vocab=tuple(data["macro_vocab"]),
        postural_vocab=tuple(data["postural_vocab"]),
        gestural_vocab=tuple(data["gestural_vocab"]),
        subloc_vocab=tuple(data["subloc_vocab"]),
        has_gestural=bool(data["has_gestural"]),
        metadata=dict(data.get("metadata", {})),
    )


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write a dataset as JSON."""
    Path(path).write_text(json.dumps(dataset_to_dict(dataset)))


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Read a dataset written by :func:`save_dataset`."""
    return dataset_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# model-artifact building blocks (ndarrays, label indices, constraint models)
# ---------------------------------------------------------------------------


def array_to_obj(arr: Optional[np.ndarray]) -> Optional[Dict]:
    """Plain-dict form of an ndarray (dtype + shape + flat data)."""
    if arr is None:
        return None
    arr = np.asarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": arr.ravel().tolist(),
    }


def array_from_obj(obj: Optional[Dict]) -> Optional[np.ndarray]:
    """Inverse of :func:`array_to_obj` (bit-exact for float64/int64)."""
    if obj is None:
        return None
    return np.array(obj["data"], dtype=obj["dtype"]).reshape(obj["shape"])


def _label_index_to_obj(index: Optional[LabelIndex]) -> Optional[List[str]]:
    return list(index.labels) if index is not None else None


def _label_index_from_obj(obj: Optional[List[str]]) -> Optional[LabelIndex]:
    return LabelIndex(tuple(obj)) if obj is not None else None


#: ConstraintModel ndarray fields, in declaration order (None-able ones are
#: the gestural tables, absent on corpora without a neck tag).
_CONSTRAINT_ARRAY_FIELDS = (
    "macro_prior",
    "macro_occupancy",
    "macro_trans",
    "macro_trans_coupled",
    "macro_end_prob",
    "micro_end_prob",
    "posture_prior",
    "gesture_prior",
    "subloc_prior",
    "posture_occupancy",
    "gesture_occupancy",
    "subloc_occupancy",
    "posture_trans",
    "gesture_trans",
    "subloc_trans",
)


def constraint_model_to_dict(cm: ConstraintModel) -> Dict:
    """Plain-dict form of a mined constraint model."""
    out: Dict = {
        "macro_index": _label_index_to_obj(cm.macro_index),
        "posture_index": _label_index_to_obj(cm.posture_index),
        "gesture_index": _label_index_to_obj(cm.gesture_index),
        "subloc_index": _label_index_to_obj(cm.subloc_index),
    }
    for name in _CONSTRAINT_ARRAY_FIELDS:
        out[name] = array_to_obj(getattr(cm, name))
    return out


def constraint_model_from_dict(data: Dict) -> ConstraintModel:
    """Inverse of :func:`constraint_model_to_dict`."""
    kwargs = {
        "macro_index": _label_index_from_obj(data["macro_index"]),
        "posture_index": _label_index_from_obj(data["posture_index"]),
        "gesture_index": _label_index_from_obj(data["gesture_index"]),
        "subloc_index": _label_index_from_obj(data["subloc_index"]),
    }
    for name in _CONSTRAINT_ARRAY_FIELDS:
        kwargs[name] = array_from_obj(data[name])
    return ConstraintModel(**kwargs)
