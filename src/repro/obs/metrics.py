"""Zero-dependency metrics primitives: counters, gauges, histograms.

The paper reports computational overhead (model-build time, Fig 11b) as a
first-class result; a production serving deployment needs the same
numbers *continuously* — serving latency, smoother lag-window cost,
eviction churn, per-family decode time.  :class:`MetricsRegistry` is the
process-local store those numbers land in: thread-safe, no third-party
dependencies, exported as plain JSON (:meth:`MetricsRegistry.snapshot`)
or Prometheus-style text exposition
(:meth:`MetricsRegistry.render_prometheus`).

Instruments are get-or-create by dotted name (``router.push_seconds``),
so every call site can grab its handle without coordination; named-scope
child registries (:meth:`MetricsRegistry.scope`) share the parent's
storage under a dotted prefix, which is how the serving layer nests the
smoother's instruments under its own snapshot.

Latency histograms use fixed bucket upper bounds; p50/p95/p99 summaries
are estimated by linear interpolation of the cumulative bucket counts,
clamped to the observed min/max — exact enough for dashboards while
keeping ``observe`` O(log buckets) with no sample retention.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Default latency bucket upper bounds, in seconds (an implicit +inf
#: bucket catches the tail).  Geometric 1-2.5-5 ladder from 50 us to 30 s:
#: decode steps live in the 0.1-10 ms range, batched sessions in seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """Monotonically increasing count (events, steps, cache hits)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add *n* (>= 0) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def to_dict(self) -> Dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Point-in-time value (active sessions, pool workers)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket distribution with p50/p95/p99 summaries.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit +inf bucket.  Only per-bucket counts,
    count/sum and min/max are retained — no samples.
    """

    __slots__ = ("name", "buckets", "_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str, buckets: Optional[Iterable[float]] = None) -> None:
        self.name = name
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        i = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[i] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the block's wall-clock seconds."""
        return _HistogramTimer(self)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated *q*-quantile (``0 < q < 1``) by linear interpolation
        of the cumulative bucket counts, clamped to the observed range."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if cum + c >= rank:
                lo = self.buckets[i - 1] if i > 0 else min(self.min, self.buckets[0])
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                frac = (rank - cum) / c
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            cum += c
        return self.max

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs (Prometheus ``le``)."""
        out: List[Tuple[float, int]] = []
        cum = 0
        for bound, c in zip(self.buckets, self._counts):
            cum += c
            out.append((bound, cum))
        out.append((float("inf"), self.count))
        return out

    def summary(self) -> Dict:
        """count / sum / mean / min / max / p50 / p95 / p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> Dict:
        out = {"type": "histogram"}
        out.update(self.summary())
        return out


class _HistogramTimer:
    """``with hist.time():`` — observes the block's elapsed seconds."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist

    def __enter__(self) -> "_HistogramTimer":
        import time

        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time

        self._hist.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Thread-safe instrument store with named-scope child views.

    The root registry owns the instrument table; :meth:`scope` returns a
    child view that prefixes every name with ``<scope>.`` and whose
    :meth:`snapshot` covers only its own subtree.  Instruments are
    get-or-create: asking for an existing name with a different
    instrument type raises.
    """

    def __init__(self, prefix: str = "", _root: Optional["MetricsRegistry"] = None):
        self.prefix = prefix
        if _root is None:
            self._instruments: Dict[str, object] = {}
            self._lock = threading.Lock()
            self._root = self
        else:
            self._root = _root
            self._instruments = _root._instruments
            self._lock = _root._lock

    # -- instrument access ---------------------------------------------------------

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def _get_or_create(self, name: str, cls, *args):
        full = self._full(name)
        with self._lock:
            inst = self._instruments.get(full)
            if inst is None:
                inst = cls(full, *args)
                self._instruments[full] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {full!r} is a {type(inst).__name__}, "
                    f"not a {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def scope(self, name: str) -> "MetricsRegistry":
        """Child registry view under ``<prefix>.<name>.`` sharing storage."""
        return MetricsRegistry(self._full(name), _root=self._root)

    def reset(self) -> None:
        """Drop every instrument in this registry's subtree."""
        want = f"{self.prefix}." if self.prefix else ""
        with self._lock:
            for key in [k for k in self._instruments if k.startswith(want)]:
                del self._instruments[key]

    # -- exposition ----------------------------------------------------------------

    def _subtree(self) -> List[Tuple[str, object]]:
        want = f"{self.prefix}." if self.prefix else ""
        with self._lock:
            items = [(k, v) for k, v in self._instruments.items() if k.startswith(want)]
        return sorted(items)

    def snapshot(self) -> Dict[str, Dict]:
        """Flat ``{name: {type, ...values...}}`` dict of this subtree."""
        return {name: inst.to_dict() for name, inst in self._subtree()}

    def to_json(self, indent: int = 2) -> str:
        """JSON exposition of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition (counters, gauges, histograms)."""
        lines: List[str] = []
        for name, inst in self._subtree():
            metric = f"{namespace}_{name}".replace(".", "_").replace("-", "_")
            if isinstance(inst, Counter):
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric}_total {inst.value}")
            elif isinstance(inst, Gauge):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_fmt(inst.value)}")
            elif isinstance(inst, Histogram):
                lines.append(f"# TYPE {metric} histogram")
                for bound, cum in inst.bucket_counts():
                    le = "+Inf" if bound == float("inf") else _fmt(bound)
                    lines.append(f'{metric}_bucket{{le="{le}"}} {cum}')
                lines.append(f"{metric}_sum {_fmt(inst.sum)}")
                lines.append(f"{metric}_count {inst.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Prometheus-friendly float rendering (no trailing zeros noise)."""
    return repr(float(value))
