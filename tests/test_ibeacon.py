"""Unit + property tests for iBeacon ranging and trilateration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors import Beacon, BeaconReceiver, trilaterate

coords = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)


class TestChannelModel:
    def test_rssi_decreases_with_distance(self):
        beacon = Beacon("b", (0.0, 0.0))
        receiver = BeaconReceiver([beacon], rssi_noise_db=1e-6, seed=1)
        near = receiver.rssi(beacon, (1.0, 0.0))
        far = receiver.rssi(beacon, (10.0, 0.0))
        assert near > far

    def test_out_of_range_returns_none(self):
        beacon = Beacon("b", (0.0, 0.0))
        receiver = BeaconReceiver([beacon], max_range_m=5.0, seed=1)
        assert receiver.rssi(beacon, (50.0, 0.0)) is None

    def test_distance_inversion_roundtrip(self):
        beacon = Beacon("b", (0.0, 0.0))
        receiver = BeaconReceiver([beacon], rssi_noise_db=1e-9, seed=1)
        for d in (0.5, 2.0, 7.5):
            rssi = receiver.rssi(beacon, (d, 0.0))
            est = receiver.distance_from_rssi(beacon, rssi)
            assert est == pytest.approx(max(d, 0.1), rel=0.02)


class TestTrilateration:
    def test_exact_recovery_with_true_distances(self):
        anchors = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        target = np.array([3.0, 7.0])
        dists = np.linalg.norm(anchors - target, axis=1)
        est = trilaterate(anchors, dists)
        assert np.allclose(est, target, atol=1e-9)

    @given(coords, coords)
    @settings(max_examples=40, deadline=None)
    def test_exact_recovery_property(self, x, y):
        anchors = np.array([[0.0, 0.0], [20.0, 0.0], [0.0, 20.0], [20.0, 20.0], [10.0, 5.0]])
        target = np.array([x, y])
        dists = np.linalg.norm(anchors - target, axis=1)
        est = trilaterate(anchors, dists)
        assert np.allclose(est, target, atol=1e-6)

    def test_requires_three_anchors(self):
        with pytest.raises(ValueError):
            trilaterate(np.array([[0.0, 0.0], [1.0, 0.0]]), np.array([1.0, 1.0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            trilaterate(np.zeros((4, 3)), np.ones(4))
        with pytest.raises(ValueError):
            trilaterate(np.zeros((4, 2)), np.ones(3))


class TestLocalization:
    def _receiver(self, noise=0.5):
        beacons = [
            Beacon(f"b{i}", pos)
            for i, pos in enumerate(
                [(0.0, 0.0), (12.0, 0.0), (0.0, 9.0), (12.0, 9.0), (6.0, 4.5)]
            )
        ]
        return BeaconReceiver(beacons, rssi_noise_db=noise, seed=3)

    def test_localize_accuracy_low_noise(self):
        receiver = self._receiver(noise=0.2)
        errors = []
        for _ in range(20):
            est = receiver.localize((4.0, 3.0))
            errors.append(np.linalg.norm(est - np.array([4.0, 3.0])))
        assert np.median(errors) < 1.0

    def test_inside_detection(self):
        receiver = self._receiver(noise=0.2)
        bounds = (0.0, 0.0, 12.0, 9.0)
        assert receiver.inside((6.0, 4.0), bounds) is True

    def test_empty_beacon_list_rejected(self):
        with pytest.raises(ValueError):
            BeaconReceiver([], seed=1)
