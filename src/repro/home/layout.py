"""Apartment floor plan: rooms, 14 sub-regions, and sensor placement.

Mirrors the paper's Fig 7 testbed: a one-bedroom apartment divided into 14
sub-regions SR1-SR14 (exercise-bike area, two couches, dining table, bed,
two closets, reading table, bathroom, kitchen, porch, and the residual
living-room / corridor / bedroom areas), instrumented with one PIR per room,
8 object sensors, and 9 iBeacons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.sensors.ibeacon import Beacon
from repro.sensors.motion_grid import AreaMotionSensor
from repro.sensors.object_sensor import ObjectSensor
from repro.sensors.pir import PirSensor
from repro.util.rng import RandomState, ensure_rng

#: Rooms of the one-bedroom apartment (each carries one PIR).
ROOMS: Tuple[str, ...] = ("livingroom", "bedroom", "bathroom", "kitchen", "porch", "corridor")


@dataclass(frozen=True)
class SubRegion:
    """One of the 14 sub-regions: a disc inside a room."""

    sr_id: str
    name: str
    room: str
    center: Tuple[float, float]
    radius: float = 0.9


#: Sub-region table following Table III's sub-location list.
SUB_REGIONS: Tuple[SubRegion, ...] = (
    SubRegion("SR1", "exercise_bike_area", "livingroom", (1.2, 1.2)),
    SubRegion("SR2", "couch_1", "livingroom", (3.4, 1.0)),
    SubRegion("SR3", "couch_2", "livingroom", (5.2, 1.0)),
    SubRegion("SR4", "dining_table", "livingroom", (3.2, 3.4)),
    SubRegion("SR5", "bed", "bedroom", (9.6, 6.8)),
    SubRegion("SR6", "closet_1", "bedroom", (11.2, 5.4)),
    SubRegion("SR7", "reading_table", "bedroom", (8.0, 7.4)),
    SubRegion("SR8", "closet_2", "bedroom", (11.2, 7.8)),
    SubRegion("SR9", "bathroom", "bathroom", (6.6, 7.2), 1.1),
    SubRegion("SR10", "kitchen", "kitchen", (1.4, 6.6), 1.3),
    SubRegion("SR11", "porch", "porch", (0.8, 4.0), 1.0),
    SubRegion("SR12", "rest_of_livingroom", "livingroom", (5.0, 3.2), 1.4),
    SubRegion("SR13", "corridor", "corridor", (6.2, 4.8), 1.2),
    SubRegion("SR14", "rest_of_bedroom", "bedroom", (9.4, 5.2), 1.3),
)

#: Instrumented objects: object name -> hosting sub-region (8 sensors).
OBJECT_PLACEMENT: Dict[str, str] = {
    "exercise_bike": "SR1",
    "tv_remote": "SR2",
    "dining_chair": "SR4",
    "bed_frame": "SR5",
    "wardrobe": "SR6",
    "study_book": "SR7",
    "kettle": "SR10",
    "stove": "SR10",
}

#: CASAS-style item sensors: object name -> hosting sub-region.  The WSU
#: ADLMR testbed instruments the props of its 15 scripted tasks (medication
#: dispenser, checkers box, watering can, ...); these are the synthetic
#: counterparts at the sub-regions where the tasks happen.
CASAS_OBJECT_PLACEMENT: Dict[str, str] = {
    "medication_dispenser": "SR10",
    "checkers_box": "SR4",
    "watering_can": "SR11",
    "broom": "SR12",
    "laundry_basket": "SR14",
    "dishes_cabinet": "SR10",
    "magazine_rack": "SR2",
    "study_book": "SR7",
    "bills_folder": "SR4",
    "picnic_basket": "SR10",
    "supplies_box": "SR8",
    "wardrobe": "SR6",
    "furniture": "SR12",
    "stove": "SR10",
}

#: iBeacon anchor positions (9 beacons as in the testbed).
BEACON_POSITIONS: Tuple[Tuple[float, float], ...] = (
    (0.5, 0.5),
    (5.5, 0.5),
    (0.5, 4.5),
    (3.0, 3.0),
    (6.5, 5.0),
    (1.0, 7.5),
    (7.0, 8.0),
    (11.5, 8.5),
    (11.5, 4.5),
)

#: Apartment bounding box (xmin, ymin, xmax, ymax) in metres.
BOUNDS: Tuple[float, float, float, float] = (0.0, 0.0, 12.0, 9.0)


@dataclass
class ApartmentLayout:
    """A concrete apartment: geometry plus its deployed sensor fleet."""

    sub_regions: Tuple[SubRegion, ...] = SUB_REGIONS
    bounds: Tuple[float, float, float, float] = BOUNDS
    pir_sensors: List[PirSensor] = field(default_factory=list)
    object_sensors: List[ObjectSensor] = field(default_factory=list)
    beacons: List[Beacon] = field(default_factory=list)
    #: Optional CASAS-style per-sub-region motion grid (empty in CACE mode).
    motion_sensors: List[AreaMotionSensor] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id: Dict[str, SubRegion] = {sr.sr_id: sr for sr in self.sub_regions}
        if len(self._by_id) != len(self.sub_regions):
            raise ValueError("duplicate sub-region ids in layout")

    # -- lookups --------------------------------------------------------------

    def sub_region(self, sr_id: str) -> SubRegion:
        """Sub-region by id (``"SR1"`` .. ``"SR14"``)."""
        try:
            return self._by_id[sr_id]
        except KeyError:
            raise KeyError(f"unknown sub-region {sr_id!r}") from None

    def room_of(self, sr_id: str) -> str:
        """Room containing a sub-region."""
        return self.sub_region(sr_id).room

    @property
    def sub_region_ids(self) -> List[str]:
        """All sub-region ids, in declaration order."""
        return [sr.sr_id for sr in self.sub_regions]

    @property
    def rooms(self) -> Tuple[str, ...]:
        """All rooms present in the layout."""
        seen: List[str] = []
        for sr in self.sub_regions:
            if sr.room not in seen:
                seen.append(sr.room)
        return tuple(seen)

    def sub_regions_in_room(self, room: str) -> List[SubRegion]:
        """All sub-regions inside *room*."""
        return [sr for sr in self.sub_regions if sr.room == room]

    def nearest_sub_region(self, position: Tuple[float, float]) -> SubRegion:
        """The sub-region whose centre is closest to *position*."""
        pos = np.asarray(position, dtype=float)
        dists = [np.linalg.norm(pos - np.asarray(sr.center)) for sr in self.sub_regions]
        return self.sub_regions[int(np.argmin(dists))]

    def sample_position(self, sr_id: str, rng: np.random.Generator) -> Tuple[float, float]:
        """Random position inside a sub-region's disc."""
        sr = self.sub_region(sr_id)
        r = sr.radius * np.sqrt(rng.random())
        theta = rng.uniform(0, 2 * np.pi)
        return (sr.center[0] + r * np.cos(theta), sr.center[1] + r * np.sin(theta))

    def neighbors(self, sr_id: str, k: int = 3) -> List[str]:
        """The *k* spatially closest other sub-regions (beacon confusions)."""
        sr = self.sub_region(sr_id)
        others = [o for o in self.sub_regions if o.sr_id != sr_id]
        others.sort(key=lambda o: np.hypot(o.center[0] - sr.center[0], o.center[1] - sr.center[1]))
        return [o.sr_id for o in others[:k]]


def default_layout(seed: RandomState = None) -> ApartmentLayout:
    """Build the standard testbed layout with its full sensor complement."""
    rng = ensure_rng(seed)
    pir = [
        PirSensor(sensor_id=f"pir:{room}", room=room, seed=rng.integers(0, 2**31))
        for room in ROOMS
    ]
    objects = [
        ObjectSensor(
            sensor_id=f"obj:{name}",
            object_name=name,
            sub_region=sr_id,
            seed=rng.integers(0, 2**31),
        )
        for name, sr_id in OBJECT_PLACEMENT.items()
    ]
    beacons = [
        Beacon(beacon_id=f"beacon:{i}", position=pos) for i, pos in enumerate(BEACON_POSITIONS)
    ]
    return ApartmentLayout(pir_sensors=pir, object_sensors=objects, beacons=beacons)


def casas_layout(seed: RandomState = None) -> ApartmentLayout:
    """Build a CASAS-style layout: per-sub-region motion grid + item sensors.

    Mirrors the WSU ADLMR instrumentation as the paper consumed it: motion
    sensors at sub-location granularity (a firing means "this sub-location
    is occupied by someone"), item sensors on the 15 tasks' props, room
    PIRs retained, no iBeacons (the public corpus has none).
    """
    rng = ensure_rng(seed)
    pir = [
        PirSensor(sensor_id=f"pir:{room}", room=room, seed=rng.integers(0, 2**31))
        for room in ROOMS
    ]
    motion = [
        AreaMotionSensor(
            sensor_id=f"motion:{sr.sr_id}",
            sub_region=sr.sr_id,
            seed=rng.integers(0, 2**31),
        )
        for sr in SUB_REGIONS
    ]
    objects = [
        ObjectSensor(
            sensor_id=f"obj:{name}",
            object_name=name,
            sub_region=sr_id,
            seed=rng.integers(0, 2**31),
        )
        for name, sr_id in CASAS_OBJECT_PLACEMENT.items()
    ]
    return ApartmentLayout(
        pir_sensors=pir, object_sensors=objects, beacons=[], motion_sensors=motion
    )
