"""Wall-clock timing used for the paper's computational-overhead metrics.

The paper reports "total time required to build entire model" (Fig 11b);
:class:`Stopwatch` accumulates named phases so experiments can report both
per-phase and total overhead.

Since the observability subsystem landed, ``Stopwatch`` is a thin facade
over a private :class:`~repro.obs.metrics.MetricsRegistry`: each phase is
a latency histogram named ``phase.<name>.seconds``, so anything holding a
stopwatch (the engine, the experiment harness) gets distribution
summaries and metrics exposition for free while the historical public
surface — the ``phases`` mapping, ``total``, ``report`` — is unchanged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.obs.metrics import Histogram, MetricsRegistry

_PHASE_PREFIX = "phase."
_PHASE_SUFFIX = ".seconds"


@dataclass
class Stopwatch:
    """Accumulates elapsed wall-clock time across named phases.

    Each phase is backed by a ``phase.<name>.seconds`` histogram in
    ``registry`` (a private registry by default), so repeated phases
    accumulate both total seconds (the classic ``phases`` view) and a
    latency distribution (``histogram("name").summary()``).
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def phase(self, name: str):
        """Time a named phase; repeated phases accumulate."""
        return self.registry.histogram(f"{_PHASE_PREFIX}{name}{_PHASE_SUFFIX}").time()

    def histogram(self, name: str) -> Histogram:
        """The backing histogram for a phase (latency distribution)."""
        return self.registry.histogram(f"{_PHASE_PREFIX}{name}{_PHASE_SUFFIX}")

    @property
    def phases(self) -> Dict[str, float]:
        """Accumulated seconds per phase (the historical dict view)."""
        out: Dict[str, float] = {}
        for full, data in self.registry.snapshot().items():
            if (
                data.get("type") == "histogram"
                and full.startswith(_PHASE_PREFIX)
                and full.endswith(_PHASE_SUFFIX)
            ):
                name = full[len(_PHASE_PREFIX) : -len(_PHASE_SUFFIX)]
                out[name] = data["sum"]
        return out

    @property
    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self.phases.values())

    def report(self) -> str:
        """Human-readable per-phase breakdown."""
        lines = [f"{name}: {secs:.4f}s" for name, secs in sorted(self.phases.items())]
        lines.append(f"total: {self.total:.4f}s")
        return "\n".join(lines)

    # The registry holds threading.Locks (unpicklable); serialise the
    # accumulated totals instead and rebuild on the other side.
    def __getstate__(self):
        return {"phases": self.phases}

    def __setstate__(self, state) -> None:
        self.registry = MetricsRegistry()
        for name, secs in state.get("phases", {}).items():
            self.histogram(name).observe(secs)


@contextmanager
def timed() -> Iterator[list]:
    """Context manager yielding a single-element list filled with elapsed seconds.

    >>> with timed() as elapsed:
    ...     _ = sum(range(1000))
    >>> elapsed[0] >= 0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
