"""Containers for discretised, labelled multi-inhabitant sensor traces.

A session becomes a :class:`LabeledSequence`: per time step one
:class:`ContextStep` holding each resident's *observed* micro evidence
(noisy wearable classifications + emission feature vector + iBeacon
sub-location candidates) and the unattributed ambient context (rooms and
objects that fired), alongside per-resident ground truth for training and
scoring.  A :class:`Dataset` bundles sequences with the label vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class ResidentTruth:
    """Ground-truth context of one resident at one step."""

    macro: str
    posture: str
    gesture: str
    subloc: str
    room: str


@dataclass(frozen=True)
class ResidentObservation:
    """Observed (noisy) micro evidence for one resident at one step.

    ``gesture`` is None when the resident wears no neck tag (CASAS mode).
    ``features`` is the continuous emission vector used by the Gaussian
    observation models (Augmentation 4).
    ``subloc_candidates`` is the iBeacon/ambient-derived candidate set; the
    true sub-location is *usually* inside it, but not guaranteed.
    """

    posture: str
    gesture: Optional[str]
    features: Tuple[float, ...]
    subloc_candidates: Tuple[str, ...]
    position_estimate: Optional[Tuple[float, float]] = None

    @property
    def feature_array(self) -> np.ndarray:
        """Features as a float numpy vector."""
        return np.asarray(self.features, dtype=float)


@dataclass(frozen=True)
class ContextStep:
    """One discretised time step of a multi-inhabitant session.

    ``sublocs_fired`` carries sub-location-granularity motion evidence where
    the deployment has it (the CASAS-style motion grid); it is empty for
    room-PIR-only homes.  Like the room and object channels it is
    *unattributed* — it says an area was occupied, never by whom.
    """

    t: float
    observations: Dict[str, ResidentObservation]
    rooms_fired: FrozenSet[str]
    objects_fired: FrozenSet[str]
    sublocs_fired: FrozenSet[str] = frozenset()


@dataclass
class LabeledSequence:
    """A full session: steps plus aligned per-resident ground truth."""

    home_id: str
    resident_ids: Tuple[str, ...]
    step_s: float
    steps: List[ContextStep]
    truths: List[Dict[str, ResidentTruth]]

    def __post_init__(self) -> None:
        if len(self.steps) != len(self.truths):
            raise ValueError(
                f"steps ({len(self.steps)}) and truths ({len(self.truths)}) must align"
            )

    def __len__(self) -> int:
        return len(self.steps)

    def macro_labels(self, rid: str) -> List[str]:
        """Ground-truth macro activity sequence for one resident."""
        return [truth[rid].macro for truth in self.truths]

    def micro_labels(self, rid: str) -> List[Tuple[str, str, str]]:
        """Ground-truth (posture, gesture, subloc) sequence for one resident."""
        return [(t[rid].posture, t[rid].gesture, t[rid].subloc) for t in self.truths]

    def slice(self, start: int, end: int) -> "LabeledSequence":
        """Sub-sequence covering step indices ``[start, end)``."""
        return LabeledSequence(
            home_id=self.home_id,
            resident_ids=self.resident_ids,
            step_s=self.step_s,
            steps=self.steps[start:end],
            truths=self.truths[start:end],
        )


@dataclass
class Dataset:
    """A corpus of labelled sequences plus its vocabularies."""

    name: str
    sequences: List[LabeledSequence]
    macro_vocab: Tuple[str, ...]
    postural_vocab: Tuple[str, ...]
    gestural_vocab: Tuple[str, ...]
    subloc_vocab: Tuple[str, ...]
    has_gestural: bool = True
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.sequences)

    @property
    def total_steps(self) -> int:
        """Total labelled steps across all sequences."""
        return sum(len(seq) for seq in self.sequences)

    def by_home(self) -> Dict[str, List[LabeledSequence]]:
        """Group sequences by home id."""
        out: Dict[str, List[LabeledSequence]] = {}
        for seq in self.sequences:
            out.setdefault(seq.home_id, []).append(seq)
        return out

    def subset(self, sequences: Sequence[LabeledSequence], suffix: str = "subset") -> "Dataset":
        """A new dataset sharing vocabularies but holding *sequences*."""
        return Dataset(
            name=f"{self.name}:{suffix}",
            sequences=list(sequences),
            macro_vocab=self.macro_vocab,
            postural_vocab=self.postural_vocab,
            gestural_vocab=self.gestural_vocab,
            subloc_vocab=self.subloc_vocab,
            has_gestural=self.has_gestural,
            metadata=dict(self.metadata),
        )


def train_test_split(
    dataset: Dataset, train_fraction: float = 0.7, seed: RandomState = None
) -> Tuple[Dataset, Dataset]:
    """Split a dataset by whole sequences (never within a session).

    Sequences are shuffled with *seed* then partitioned; each home
    contributes to both sides when it has >= 2 sequences.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = ensure_rng(seed)
    train: List[LabeledSequence] = []
    test: List[LabeledSequence] = []
    for _home, seqs in sorted(dataset.by_home().items()):
        order = list(seqs)
        rng.shuffle(order)
        cut = max(1, int(round(train_fraction * len(order))))
        if cut >= len(order) and len(order) > 1:
            cut = len(order) - 1
        train.extend(order[:cut])
        test.extend(order[cut:])
    return dataset.subset(train, "train"), dataset.subset(test, "test")
