"""The four pruning strategies of §VII-G.

=====  ==========================================================
NH     Naive-HMM: exhaustive flat macro HMM on frame features [9]
NCR    Naive-Correlation: per-user rule pruning, no coupling [1]
NCS    Naive-Constraint: full coupled HDBN, no correlation pruning
C2     Correlation+Constraint: the loosely-coupled HDBN (CACE)
=====  ==========================================================
"""

from __future__ import annotations

from typing import Tuple

#: Strategy identifiers, in the paper's order.
STRATEGIES: Tuple[str, ...] = ("nh", "ncr", "ncs", "c2")


class PruningStrategy:
    """Validated strategy name with capability flags."""

    def __init__(self, name: str) -> None:
        name = name.lower()
        if name not in STRATEGIES:
            raise ValueError(f"unknown strategy {name!r}; choose from {STRATEGIES}")
        self.name = name

    @property
    def uses_correlations(self) -> bool:
        """Does the strategy run the correlation miner?"""
        return self.name in ("ncr", "c2")

    @property
    def uses_constraints(self) -> bool:
        """Does the strategy use the hierarchical constraint structure?"""
        return self.name in ("ncs", "c2")

    @property
    def coupled(self) -> bool:
        """Does the strategy couple the residents' chains?"""
        return self.name in ("ncs", "c2")

    def __repr__(self) -> str:
        return f"PruningStrategy({self.name!r})"
