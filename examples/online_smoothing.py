"""Online activity smoothing with bounded latency.

The paper's conclusion proposes CACE "as a smoother of any online complex
activity recognition framework".  This example streams a session step by
step through the fixed-lag :class:`~repro.core.smoother.OnlineSmoother`
and shows how the accuracy/latency trade-off moves with the lag: lag 0 is
pure filtering (commit immediately), larger lags approach the offline
Viterbi decode.

Run:  python examples/online_smoothing.py
"""

import numpy as np

from repro.core.engine import CaceEngine
from repro.core.smoother import OnlineSmoother
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import train_test_split


def accuracy(seq, labels) -> float:
    pairs = [
        (a, b)
        for rid in labels
        for a, b in zip(seq.macro_labels(rid), labels[rid])
    ]
    return float(np.mean([a == b for a, b in pairs]))


def main() -> None:
    dataset = generate_cace_dataset(
        n_homes=2, sessions_per_home=4, duration_s=3000.0, seed=17
    )
    train, test = train_test_split(dataset, 0.7, seed=2)
    engine = CaceEngine(strategy="c2", seed=5)
    engine.fit(train)
    seq = test.sequences[0]

    offline = engine.predict(seq)
    print(f"session: {len(seq)} steps x {seq.step_s:.0f}s")
    print(f"offline Viterbi accuracy: {accuracy(seq, offline):.1%}\n")

    print(f"{'lag':>5s} {'latency':>9s} {'accuracy':>9s}")
    for lag in (0, 2, 4, 8, 16):
        smoother = OnlineSmoother(engine.model_, lag=lag)
        online = smoother.run(seq)
        latency = lag * seq.step_s
        print(f"{lag:5d} {latency:8.0f}s {accuracy(seq, online):8.1%}")

    print(
        "\nlag buys accuracy: each extra step of latency lets future"
        " evidence veto a premature label, converging to the offline decode."
    )


if __name__ == "__main__":
    main()
