"""Seeded random-number plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Components never touch global numpy state,
so independent simulations with the same seed are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomState = Union[int, np.random.Generator, None]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a freshly-seeded generator, an ``int`` yields a
    deterministic generator, and an existing generator is passed through
    unchanged (so callers can share a stream).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or Generator, got {type(seed)!r}")


def derive_rng(rng: np.random.Generator, stream: str) -> np.random.Generator:
    """Derive an independent, reproducible child generator.

    The child stream is keyed by *stream* so that adding a new consumer of
    randomness does not perturb the draws seen by existing consumers.
    """
    # Stable 64-bit key from the stream name.
    key = np.frombuffer(stream.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64)[0]
    child_seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng([int(child_seed), int(key)])
