"""Fault tolerance for batch and streaming decode.

CACE's own motivation is noisy, unreliable multi-inhabitant sensor
streams; a serving deployment adds crashed workers, hung decodes, and
malformed steps on top.  This package is the failure story threaded
through :class:`~repro.core.engine.CaceEngine` and
:class:`~repro.serve.router.SessionRouter`:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (bounded retries,
  exponential backoff, deterministic jitter), :class:`FailureReport`
  (the structured outcome of a ``partial=True`` batch), and the shared
  failure taxonomy.
* :mod:`repro.resilience.streaming` — step validation, quarantine
  tagging (:class:`DegradedLabels`), and the degraded-mode
  :class:`DegradedStepFilter` that keeps a poisoned session emitting
  labels from a cheap fallback or the macro prior.
* :mod:`repro.resilience.faultinject` — the deterministic chaos harness
  (seeded worker crashes, delays, exceptions, corrupted observations)
  the resilience test suite and the CI chaos job run on.
"""

from repro.resilience.faultinject import (
    Fault,
    FaultPlan,
    InjectedFault,
    corrupt_step,
    injected,
    maybe_inject,
)
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    FAILURE_KINDS,
    DecodeFailure,
    FailureReport,
    RetryPolicy,
    SessionFailure,
    SessionTimeout,
    stable_unit,
)
from repro.resilience.streaming import (
    DegradedLabels,
    DegradedStepFilter,
    StepValidationError,
    prior_macro_label,
    validate_step,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAILURE_KINDS",
    "DecodeFailure",
    "DegradedLabels",
    "DegradedStepFilter",
    "FailureReport",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "SessionFailure",
    "SessionTimeout",
    "StepValidationError",
    "corrupt_step",
    "injected",
    "maybe_inject",
    "prior_macro_label",
    "stable_unit",
    "validate_step",
]
