"""Per-resident views over labelled sequences, shared by all recognisers."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.trace import LabeledSequence


def step_features(seq: LabeledSequence, rid: str) -> np.ndarray:
    """``(T, D)`` continuous emission features for one resident."""
    return np.array([step.observations[rid].features for step in seq.steps], dtype=float)


def observed_postures(seq: LabeledSequence, rid: str) -> List[str]:
    """Observed (noisy) postural labels per step."""
    return [step.observations[rid].posture for step in seq.steps]


def observed_gestures(seq: LabeledSequence, rid: str) -> List[Optional[str]]:
    """Observed oral-gesture labels per step (None without a neck tag)."""
    return [step.observations[rid].gesture for step in seq.steps]


def subloc_candidates(seq: LabeledSequence, rid: str) -> List[Tuple[str, ...]]:
    """Per-step sub-location candidate sets for one resident."""
    return [step.observations[rid].subloc_candidates for step in seq.steps]
