"""Quickstart: recognise multi-resident activities in a simulated smart home.

Generates a small CACE-style corpus (two homes, two residents each), trains
the full CACE engine (loosely-coupled HDBN + correlation/constraint mining),
and decodes a held-out session.

Run:  python examples/quickstart.py
"""

from repro.core import CaceEngine
from repro.datasets import generate_cace_dataset, train_test_split


def main() -> None:
    print("Generating a small CACE-style corpus (2 homes x 3 sessions)...")
    dataset = generate_cace_dataset(
        n_homes=2, sessions_per_home=3, duration_s=1800.0, seed=42
    )
    train, test = train_test_split(dataset, 0.67, seed=7)
    print(f"  {len(train)} training / {len(test)} test sessions, "
          f"{dataset.total_steps} labelled steps total")

    print("\nTraining the CACE engine (strategy C2: correlations + constraints)...")
    engine = CaceEngine(strategy="c2", seed=1)
    engine.fit(train)
    rules = engine.rule_set_
    print(f"  mined {len(rules.forcing_rules)} forcing rules and "
          f"{len(rules.exclusions)} exclusion rules "
          f"in {engine.build_seconds:.2f}s")
    print("  example rules:")
    for line in rules.describe().splitlines()[:4]:
        print(f"    {line}")

    print("\nDecoding a held-out session...")
    seq = test.sequences[0]
    predicted = engine.predict(seq)
    hits = total = 0
    for rid in seq.resident_ids:
        gold = seq.macro_labels(rid)
        hits += sum(p == g for p, g in zip(predicted[rid], gold))
        total += len(gold)
    print(f"  macro-activity accuracy: {hits / total:.1%}")

    rid = seq.resident_ids[0]
    print(f"\nFirst minutes of {rid}'s morning (truth -> predicted):")
    gold = seq.macro_labels(rid)
    for t in range(0, min(12, len(seq))):
        marker = "  " if gold[t] == predicted[rid][t] else "<-"
        print(f"  t={seq.steps[t].t:7.1f}s  {gold[t]:>15s} -> {predicted[rid][t]:<15s} {marker}")


if __name__ == "__main__":
    main()
