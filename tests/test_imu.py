"""Unit tests for the 9-axis IMU simulator."""

import numpy as np
import pytest

from repro.sensors.imu import (
    GESTURAL_SIGNATURES,
    GRAVITY,
    POSTURAL_SIGNATURES,
    ImuSimulator,
    samples_to_array,
    signature_for,
)


class TestRegistries:
    def test_five_postural_classes(self):
        assert set(POSTURAL_SIGNATURES) == {"walking", "standing", "sitting", "cycling", "lying"}

    def test_five_gestural_classes(self):
        assert set(GESTURAL_SIGNATURES) == {"silent", "talking", "eating", "yawning", "laughing"}

    def test_signature_lookup(self):
        assert signature_for("postural", "walking").name == "walking"
        assert signature_for("gestural", "talking").base_freq_hz > 0

    def test_unknown_kind_and_name(self):
        with pytest.raises(ValueError):
            signature_for("unknown", "walking")
        with pytest.raises(KeyError):
            signature_for("postural", "flying")


class TestRendering:
    def test_sample_count_matches_duration(self):
        imu = ImuSimulator(sample_rate_hz=50.0, seed=1)
        samples = imu.render(POSTURAL_SIGNATURES["standing"], 2.0)
        assert len(samples) == 100

    def test_timestamps_are_uniform(self):
        imu = ImuSimulator(sample_rate_hz=50.0, seed=1)
        samples = imu.render(POSTURAL_SIGNATURES["sitting"], 1.0, t0=5.0)
        ts = np.array([s.t for s in samples])
        assert ts[0] == pytest.approx(5.0)
        assert np.allclose(np.diff(ts), 0.02)

    def test_static_posture_reads_gravity(self):
        imu = ImuSimulator(seed=2)
        samples = imu.render(POSTURAL_SIGNATURES["standing"], 4.0)
        mags = np.array([np.linalg.norm(s.accel) for s in samples])
        assert abs(np.mean(mags) - GRAVITY) < 0.5

    def test_walking_has_more_energy_than_standing(self):
        imu = ImuSimulator(seed=3)
        walk = imu.render(POSTURAL_SIGNATURES["walking"], 4.0)
        stand = imu.render(POSTURAL_SIGNATURES["standing"], 4.0)

        def energy(samples):
            acc = np.array([s.accel for s in samples])
            return np.var(acc, axis=0).sum()

        assert energy(walk) > 5 * energy(stand)

    def test_seeded_renders_reproducible(self):
        a = ImuSimulator(seed=7).render(POSTURAL_SIGNATURES["cycling"], 1.0)
        b = ImuSimulator(seed=7).render(POSTURAL_SIGNATURES["cycling"], 1.0)
        assert np.allclose(
            samples_to_array(a), samples_to_array(b)
        )

    def test_render_labelled_spans(self):
        imu = ImuSimulator(seed=5)
        samples, spans = imu.render_labelled(
            "gestural", [("silent", 1.0), ("talking", 2.0)]
        )
        assert len(spans) == 2
        assert spans[0] == ("silent", 0.0, 1.0)
        assert spans[1] == ("talking", 1.0, 3.0)
        assert len(samples) == pytest.approx(150, abs=2)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            ImuSimulator(seed=1).render(POSTURAL_SIGNATURES["lying"], 0.0)

    def test_samples_to_array_shape(self):
        imu = ImuSimulator(seed=1)
        arr = samples_to_array(imu.render(POSTURAL_SIGNATURES["lying"], 1.0))
        assert arr.shape == (50, 10)
