"""Single-inhabitant HDBN (paper §IV-C, Eqn 1).

One hierarchical chain: hidden ``(macro, subloc)`` with the same
end-of-sequence-marker transition semantics as the coupled model, but the
macro transition is the *uncoupled* table and no partner context exists.
Besides the N=1 use case, this model is the engine of the paper's **NCR**
strategy — per-user rule pruning without any inter-user coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import DecodeStats, TrellisPiece, make_step_filter
from repro.core.kernels import (
    SequenceKernel,
    _lse,
    backward_betas,
    forward_alphas,
    viterbi_path,
)
from repro.core.rule_kernel import CompiledRules, SingleRulePruner
from repro.core.state_space import StateSpaceBuilder
from repro.obs import runtime as obs
from repro.datasets.trace import Dataset, LabeledSequence
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.util.rng import RandomState, ensure_rng

_TINY = 1e-12
_PIR_MISS_PENALTY = -1.5


@dataclass
class SingleUserHdbn:
    """Hierarchical DBN for one resident's chain."""

    constraint_model: ConstraintModel
    rule_set: Optional[CorrelationRuleSet] = None
    gmm_components: int = 4
    max_states_per_user: int = 36
    min_change_prob: float = 1e-4
    use_feature_gmm: bool = True
    pir_miss_penalty: float = _PIR_MISS_PENALTY
    #: NCR runs frame-wise (the paper's two-fold rule-prune-then-classify
    #: approach has no temporal chaining); set True for a true 1-chain HDBN.
    temporal: bool = True
    #: Decode through the per-sequence batched evidence tables
    #: (:class:`repro.core.kernels.SequenceKernel`); bit-identical.
    use_sequence_kernels: bool = True
    seed: RandomState = None
    builder: StateSpaceBuilder = field(default=None, init=False, repr=False)
    gmms_: Dict[int, object] = field(default_factory=dict, init=False, repr=False)
    last_stats: DecodeStats = field(default_factory=DecodeStats, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        self.builder = StateSpaceBuilder(
            constraint_model=self.constraint_model,
            max_states_per_user=4 * self.max_states_per_user,
        )
        self._single_rules = self.rule_set.single_user() if self.rule_set else None
        self._single_pruner = (
            SingleRulePruner(
                CompiledRules(self._single_rules),
                self.constraint_model,
                self.builder.room_of_l,
            )
            if self._single_rules is not None
            else None
        )
        cm = self.constraint_model
        # Counted per step: already conditioned on micro termination.
        self._p_change = np.clip(cm.macro_end_prob, self.min_change_prob, 0.5)
        trans = cm.macro_trans.copy()
        np.fill_diagonal(trans, 0.0)
        self._change_trans = trans / np.maximum(trans.sum(axis=1, keepdims=True), _TINY)
        # Per-step occupancy tables for evidence (see CoupledHdbn: the
        # segment-start priors are far too flat to act as evidence).
        self._log_posture = np.log(cm.posture_occupancy + _TINY)
        self._log_gesture = (
            np.log(cm.gesture_occupancy + _TINY)
            if cm.gesture_occupancy is not None
            else None
        )
        self._log_subloc_prior = np.log(cm.subloc_prior + _TINY)
        self._log_subloc_occ = np.log(cm.subloc_occupancy + _TINY)
        # Precomputed transition log tables: the per-step chain blocks are
        # pure gathers (shared with the coupled models; the uncoupled
        # macro table is 2-D).
        from repro.core.chdbn import build_transition_tables  # avoid a cycle

        self._macro_block_table, self._loc_block_table = build_transition_tables(
            self._p_change, self._change_trans, cm.micro_end_prob, cm.subloc_trans
        )

    # -- training (shares the coupled model's emission machinery) ----------------

    def fit(self, train: Dataset) -> "SingleUserHdbn":
        """Fit per-macro Gaussian mixtures via deterministic annealing."""
        from repro.core.chdbn import fit_emission_tables  # avoid a cycle

        fit_emission_tables(self, train)
        return self

    # -- inference ---------------------------------------------------------------------

    def _chain_block(
        self, m_prev: np.ndarray, l_prev: np.ndarray, m_cur: np.ndarray, l_cur: np.ndarray
    ) -> np.ndarray:
        macro_term = self._macro_block_table[m_prev[:, None], m_cur[None, :]]
        same = m_prev[:, None] == m_cur[None, :]
        cont = self._loc_block_table[m_cur[None, :], l_prev[:, None], l_cur[None, :]]
        reset = self._log_subloc_prior[m_cur, l_cur][None, :]
        return macro_term + np.where(same, cont, reset)

    def _make_kernel(
        self, seq: LabeledSequence, rids: Tuple[str, ...]
    ) -> Optional[SequenceKernel]:
        """Per-sequence batched evidence tables (None when disabled)."""
        if not self.use_sequence_kernels:
            return None
        return SequenceKernel(self, seq, rids)

    def _per_step(
        self, seq: LabeledSequence, rid: str, kern: Optional[SequenceKernel] = None
    ):
        """Truncated per-step candidate tuples ``(states, e, m, l)``.

        Accounts surviving candidates into ``last_stats.joint_states``
        (callers reset the stats object and stamp ``steps``).
        """
        from repro.core.chdbn import build_candidate_set  # avoid a cycle

        per_step = []
        for t in range(len(seq)):
            c = build_candidate_set(self, seq, rid, t, kern=kern)
            self.last_stats.joint_states += len(c)
            per_step.append((c.states, c.emissions, c.m, c.l))
        return per_step

    def decode_user(
        self, seq: LabeledSequence, rid: str, kern: Optional[SequenceKernel] = None
    ) -> List[str]:
        """Macro labels for one resident's chain (Viterbi or frame-wise)."""
        cm = self.constraint_model
        if kern is None:
            kern = self._make_kernel(seq, (rid,))
            if kern is not None:
                kern.ensure(0, len(seq))
        per_step = self._per_step(seq, rid, kern)

        if not self.temporal:
            # NCR: rule-pruned frame-wise MAP, no temporal model.  The class
            # prior is the macro step-occupancy; the emission already carries
            # the per-step location coupling.
            out = []
            for states, e, m, _l in per_step:
                score = e + np.log(cm.macro_occupancy[m] + _TINY)
                out.append(states[int(np.argmax(score))].macro)
            return out

        states, e, m, l = per_step[0]
        initial = np.log(cm.macro_prior[m] + _TINY) + self._log_subloc_prior[m, l] + e
        per_scores = [p[1] for p in per_step]

        def transition(t: int) -> np.ndarray:
            pm, pl = per_step[t - 1][2], per_step[t - 1][3]
            return self._chain_block(pm, pl, per_step[t][2], per_step[t][3])

        with obs.timed_span(
            "trellis_sweep",
            metric="decode.single_user.sweep_seconds",
            family="single_user",
        ):
            path = viterbi_path(initial, per_scores, transition, self.last_stats)
        return [per_step[t][0][j].macro for t, j in enumerate(path)]

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Decode every resident independently (no coupling)."""
        with obs.timed_span(
            "decode",
            metric="decode.single_user.seconds",
            counts={"decode.single_user.steps": len(seq)},
            family="single_user",
        ):
            self.last_stats = DecodeStats()
            kern = self._make_kernel(seq, tuple(seq.resident_ids))
            if kern is not None:
                kern.ensure(0, len(seq))
            out = {rid: self.decode_user(seq, rid, kern) for rid in seq.resident_ids}
            # One trellis step per time step, however many chains it spans
            # (matching the coupled models' accounting).
            self.last_stats.steps = len(seq)
            return out

    # -- Recognizer surface --------------------------------------------------------

    def trellis_sessions(self, seq: LabeledSequence) -> List["_UserTrellis"]:
        """One independent session per resident."""
        return [_UserTrellis(self, seq, rid) for rid in seq.resident_ids]

    def step_filter(self, lag: int = 0):
        """Fixed-lag smoother bound to this model."""
        return make_step_filter(self, lag)

    def describe(self) -> str:
        """One-line summary for logs and CLIs."""
        chain = "temporal 1-chain HDBN" if self.temporal else "frame-wise classifier"
        pruning = "rule-pruned" if self.rule_set is not None else "unpruned"
        return f"per-user {chain} ({pruning}, <= {self.max_states_per_user} states/user)"

    # -- marginals (ROC/PRC scores for the NH/NCR comparisons) --------------------

    def _user_marginals(
        self, seq: LabeledSequence, rid: str, kern: Optional[SequenceKernel] = None
    ) -> np.ndarray:
        """(T, M) posterior macro marginals for one resident's chain.

        ``temporal=False`` (the NCR strategy) yields frame-wise posteriors
        under the macro-occupancy prior; ``temporal=True`` runs
        forward-backward over the same trellis Viterbi decodes.
        """
        cm = self.constraint_model
        n_m = cm.n_macro
        per_step = self._per_step(seq, rid, kern)

        out = np.zeros((len(per_step), n_m))
        if not self.temporal:
            for t, (_, e, m, _) in enumerate(per_step):
                log_gamma = e + np.log(cm.macro_occupancy[m] + _TINY)
                log_gamma -= _lse(log_gamma, axis=0)
                np.add.at(out[t], m, np.exp(log_gamma))
            return out

        _, e, m, l = per_step[0]
        initial = np.log(cm.macro_prior[m] + _TINY) + self._log_subloc_prior[m, l] + e
        per_scores = [p[1] for p in per_step]

        def transition(t: int) -> np.ndarray:
            _, _, pm, pl = per_step[t - 1]
            return self._chain_block(pm, pl, per_step[t][2], per_step[t][3])

        alphas = forward_alphas(initial, per_scores, transition)
        betas = backward_betas(per_scores, transition)

        for t in range(len(per_step)):
            log_gamma = alphas[t] + betas[t]
            log_gamma -= _lse(log_gamma, axis=0)
            _, _, m, _ = per_step[t]
            np.add.at(out[t], m, np.exp(log_gamma))
        return out

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Per-resident posterior macro marginals ``(T, M)``."""
        self.last_stats = DecodeStats()
        kern = self._make_kernel(seq, tuple(seq.resident_ids))
        if kern is not None:
            kern.ensure(0, len(seq))
        out = {rid: self._user_marginals(seq, rid, kern) for rid in seq.resident_ids}
        self.last_stats.steps = len(seq)
        return out


class _UserTrellis:
    """Incremental-forward adapter over one resident's chain.

    ``temporal=False`` (the NCR strategy) exposes no transition: the
    smoother then reduces to frame-wise filtering over the occupancy-prior
    posteriors, exactly :meth:`SingleUserHdbn._user_marginals`' path.
    """

    def __init__(self, model: SingleUserHdbn, seq: LabeledSequence, rid: str):
        self.model = model
        self.seq = seq
        self.rids: Tuple[str, ...] = (rid,)
        self._kern = model._make_kernel(seq, self.rids)

    def prepare(self, t0: int, t1: int) -> None:
        """Batch-build the per-sequence evidence tables for ``[t0, t1)``
        ahead of the per-step ``piece`` calls (used by bulk pushes)."""
        if self._kern is not None:
            self._kern.ensure(t0, t1)

    def piece(self, t: int) -> TrellisPiece:
        from repro.core.chdbn import build_candidate_set  # avoid a cycle

        model = self.model
        if self._kern is not None:
            self._kern.ensure(0, t + 1)
        c = build_candidate_set(model, self.seq, self.rids[0], t, kern=self._kern)
        scores = c.emissions
        if not model.temporal:
            cm = model.constraint_model
            scores = scores + np.log(cm.macro_occupancy[c.m] + _TINY)
        return TrellisPiece(scores=scores, enc=(c.m, c.l), extra=c.states)

    def initial_alpha(self, piece: TrellisPiece) -> np.ndarray:
        model = self.model
        if not model.temporal:
            return piece.scores
        cm = model.constraint_model
        m, l = piece.enc
        return np.log(cm.macro_prior[m] + _TINY) + model._log_subloc_prior[m, l] + piece.scores

    def transition(self, prev: TrellisPiece, cur: TrellisPiece) -> Optional[np.ndarray]:
        if not self.model.temporal:
            return None
        pm, pl = prev.enc
        m, l = cur.enc
        return self.model._chain_block(pm, pl, m, l)

    def labels(self, piece: TrellisPiece, gamma: np.ndarray) -> Dict[str, str]:
        cm = self.model.constraint_model
        marg = np.zeros(cm.n_macro)
        np.add.at(marg, piece.enc[0], gamma)
        return {self.rids[0]: cm.macro_index.label(int(np.argmax(marg)))}
