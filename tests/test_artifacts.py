"""Versioned model artifacts: save/load round-trips and integrity checks.

The contract: a reloaded engine is *bit-identical* to the saved one —
same predicted labels, same posterior marginals, same DecodeStats work
accounting — for every model family (NH flat HMM, NCR frame-wise, NCS/C2
coupled pair, and the >2-resident N-chain).  Artifacts carry a schema
version and a sha256 fingerprint; both are verified on load.
"""

import json

import numpy as np
import pytest

from repro.core.engine import CaceEngine
from repro.datasets import generate_cace_dataset, train_test_split
from repro.util.artifacts import MODEL_SCHEMA, engine_to_dict

STRATEGIES = ("nh", "ncr", "ncs", "c2")


def _stats_tuple(stats):
    return (
        stats.steps,
        stats.joint_states,
        stats.transition_entries,
        stats.pruned_joint_states,
        stats.capped_joint_states,
    )


@pytest.fixture(scope="module", params=STRATEGIES)
def fitted_engine(request, cace_split):
    train, _ = cace_split
    return CaceEngine(strategy=request.param, seed=11).fit(train)


class TestRoundTrip:
    def test_labels_and_stats_bit_identical(self, fitted_engine, cace_split, tmp_path):
        _, test = cace_split
        seq = test.sequences[0]
        path = tmp_path / "model.json"
        before = fitted_engine.predict(seq)
        before_stats = _stats_tuple(fitted_engine.model_.last_stats)

        fitted_engine.save(path)
        reloaded = CaceEngine.load(path)

        after = reloaded.predict(seq)
        assert after == before
        assert _stats_tuple(reloaded.model_.last_stats) == before_stats

    def test_posterior_marginals_bit_identical(
        self, fitted_engine, cace_split, tmp_path
    ):
        _, test = cace_split
        seq = test.sequences[0]
        path = tmp_path / "model.json"
        fitted_engine.save(path)
        reloaded = CaceEngine.load(path)

        before = fitted_engine.posterior_marginals(seq)
        after = reloaded.posterior_marginals(seq)
        assert set(after) == set(before)
        for rid in before:
            assert np.array_equal(before[rid], after[rid])

    def test_engine_config_survives(self, fitted_engine, tmp_path):
        path = tmp_path / "model.json"
        fitted_engine.save(path)
        reloaded = CaceEngine.load(path)
        assert reloaded.strategy == fitted_engine.strategy
        assert reloaded.describe() == fitted_engine.describe()
        assert type(reloaded.model_) is type(fitted_engine.model_)

    def test_nchain_trio_round_trips(self, tmp_path):
        dataset = generate_cace_dataset(
            n_homes=1,
            sessions_per_home=3,
            duration_s=700.0,
            residents_per_home=3,
            seed=42,
        )
        train, test = train_test_split(dataset, 0.67, seed=7)
        engine = CaceEngine(strategy="c2", seed=0).fit(train)
        assert type(engine.model_).__name__ == "NChainHdbn"
        seq = test.sequences[0]
        before = engine.predict(seq)

        path = tmp_path / "trio.json"
        engine.save(path)
        reloaded = CaceEngine.load(path)
        assert reloaded.predict(seq) == before


class TestIntegrity:
    def test_unfitted_engine_refuses_to_save(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            CaceEngine(strategy="c2").save(tmp_path / "nope.json")

    def test_schema_mismatch_rejected(self, fitted_engine, tmp_path):
        payload = engine_to_dict(fitted_engine)
        payload["schema"] = "repro.model/999"
        path = tmp_path / "bad_schema.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            CaceEngine.load(path)

    def test_corrupted_artifact_rejected(self, fitted_engine, tmp_path):
        payload = engine_to_dict(fitted_engine)
        payload["engine"]["strategy"] = "tampered"
        path = tmp_path / "corrupt.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="fingerprint"):
            CaceEngine.load(path)

    def test_unknown_model_kind_rejected(self, fitted_engine, tmp_path):
        from repro.util.artifacts import _fingerprint

        payload = engine_to_dict(fitted_engine)
        payload["model"] = {"kind": "mystery"}
        payload["fingerprint"] = _fingerprint(payload)
        path = tmp_path / "unknown.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="kind"):
            CaceEngine.load(path)

    def test_artifact_is_schema_stamped_json(self, fitted_engine, tmp_path):
        path = tmp_path / "model.json"
        fitted_engine.save(path)
        data = json.loads(path.read_text())
        assert data["schema"] == MODEL_SCHEMA
        assert isinstance(data["fingerprint"], str)
