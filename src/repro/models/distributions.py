"""Shared probabilistic building blocks.

:class:`LabelIndex` maps label strings to dense indices; :class:`Cpt` is a
smoothed conditional probability table over arbitrary conditioning shapes;
:class:`GaussianEmission` implements the multivariate-Gaussian observation
model of Augmentation 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np


def normalize(arr: np.ndarray, axis: int = -1) -> np.ndarray:
    """Normalise *arr* to sum to 1 along *axis* (uniform where empty)."""
    arr = np.asarray(arr, dtype=float)
    total = arr.sum(axis=axis, keepdims=True)
    n = arr.shape[axis]
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(total > 0, arr / np.where(total > 0, total, 1.0), 1.0 / n)
    return out


def log_normalize(log_weights: np.ndarray, axis: int = -1) -> np.ndarray:
    """Normalise in log space: ``log_weights - logsumexp(log_weights)``."""
    log_weights = np.asarray(log_weights, dtype=float)
    m = np.max(log_weights, axis=axis, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    shifted = log_weights - m
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True)) + m
    return log_weights - lse


@dataclass
class LabelIndex:
    """Bidirectional mapping between labels and dense integer indices."""

    labels: Tuple[str, ...]
    _index: Dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.labels = tuple(self.labels)
        self._index = {label: i for i, label in enumerate(self.labels)}
        if len(self._index) != len(self.labels):
            raise ValueError("duplicate labels in index")

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def index(self, label: str) -> int:
        """Dense index of *label*."""
        try:
            return self._index[label]
        except KeyError:
            raise KeyError(f"unknown label {label!r}; known: {self.labels}") from None

    def label(self, idx: int) -> str:
        """Label at dense index *idx*."""
        return self.labels[idx]

    def encode(self, labels: Iterable[str]) -> np.ndarray:
        """Vectorised :meth:`index`."""
        return np.array([self.index(lb) for lb in labels], dtype=int)


@dataclass
class Cpt:
    """Smoothed conditional probability table ``P(child | parents)``.

    ``shape`` is ``(*parent_cards, child_card)``; counts accumulate via
    :meth:`observe` and :meth:`probabilities` applies Laplace smoothing.
    """

    shape: Tuple[int, ...]
    alpha: float = 0.5
    counts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.shape) < 1:
            raise ValueError("Cpt needs at least the child dimension")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.counts = np.zeros(self.shape, dtype=float)

    def observe(self, *indices: int, weight: float = 1.0) -> None:
        """Add *weight* to the cell addressed by parent+child indices."""
        if len(indices) != len(self.shape):
            raise ValueError(f"expected {len(self.shape)} indices, got {len(indices)}")
        self.counts[indices] += weight

    def probabilities(self) -> np.ndarray:
        """Laplace-smoothed probabilities along the last (child) axis."""
        return normalize(self.counts + self.alpha, axis=-1)

    def log_probabilities(self) -> np.ndarray:
        """Log of :meth:`probabilities`."""
        return np.log(self.probabilities())


def shrink_coupled_transitions(
    coupled_counts: np.ndarray, kappa: float = 20.0, alpha: float = 0.5
) -> np.ndarray:
    """Hierarchical shrinkage of ``P(m' | m, partner)`` toward ``P(m' | m)``.

    Coupled transition tables are cubic in the macro cardinality and most
    (m, partner) contexts are rarely observed; raw Laplace smoothing makes
    unseen rows near-uniform, which hurts decoding badly.  Each context row
    is therefore blended with the marginal (uncoupled) row using weight
    ``n / (n + kappa)`` where ``n`` is the context's observation count.
    """
    coupled_counts = np.asarray(coupled_counts, dtype=float)
    if coupled_counts.ndim != 3:
        raise ValueError(f"expected (M, M, M) counts, got {coupled_counts.shape}")
    uncoupled = normalize(coupled_counts.sum(axis=1) + alpha, axis=-1)
    context_n = coupled_counts.sum(axis=2, keepdims=True)
    lam = context_n / (context_n + kappa)
    coupled = normalize(coupled_counts + 1e-9, axis=-1)
    return lam * coupled + (1.0 - lam) * uncoupled[:, None, :]


@dataclass
class GaussianEmission:
    """Multivariate Gaussian observation model per discrete state.

    Augmentation 4: observations are continuous feature vectors drawn from
    a Gaussian whose parameters depend on the micro-level state.  Unseen
    states fall back to the pooled distribution.
    """

    dim: int
    means: Dict[int, np.ndarray] = field(default_factory=dict)
    covariances: Dict[int, np.ndarray] = field(default_factory=dict)
    _pooled_mean: Optional[np.ndarray] = field(default=None, repr=False)
    _pooled_cov: Optional[np.ndarray] = field(default=None, repr=False)
    _cached_inv: Dict[int, Tuple[np.ndarray, float]] = field(default_factory=dict, repr=False)

    def fit(self, features: np.ndarray, states: Sequence[int], min_count: int = 3) -> "GaussianEmission":
        """Fit per-state Gaussians; sparse states share the pooled model."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        states = np.asarray(states, dtype=int)
        if features.shape[0] != states.shape[0]:
            raise ValueError("features and states must align")
        if features.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {features.shape[1]}")

        self._pooled_mean = features.mean(axis=0)
        pooled = np.cov(features.T) if features.shape[0] > 1 else np.eye(self.dim)
        self._pooled_cov = np.atleast_2d(pooled) + 1e-4 * np.eye(self.dim)

        self.means.clear()
        self.covariances.clear()
        self._cached_inv.clear()
        for state in np.unique(states):
            members = features[states == state]
            if members.shape[0] >= min_count:
                cov = np.atleast_2d(np.cov(members.T)) + 1e-4 * np.eye(self.dim)
                self.means[int(state)] = members.mean(axis=0)
                self.covariances[int(state)] = cov
        return self

    def set_state(self, state: int, mean: np.ndarray, cov: np.ndarray) -> None:
        """Directly install a state's Gaussian (e.g. from DA clustering)."""
        self.means[state] = np.asarray(mean, dtype=float)
        self.covariances[state] = np.atleast_2d(np.asarray(cov, dtype=float))
        self._cached_inv.pop(state, None)

    def _inv_logdet(self, state: int) -> Tuple[np.ndarray, float]:
        if state in self._cached_inv:
            return self._cached_inv[state]
        cov = self.covariances.get(state, self._pooled_cov)
        if cov is None:
            cov = np.eye(self.dim)
        sign, logdet = np.linalg.slogdet(cov)
        if sign <= 0:
            cov = cov + 1e-3 * np.eye(self.dim)
            sign, logdet = np.linalg.slogdet(cov)
        inv = np.linalg.inv(cov)
        self._cached_inv[state] = (inv, logdet)
        return inv, logdet

    def log_pdf(self, state: int, x: np.ndarray) -> float:
        """Log density of observation *x* under *state*'s Gaussian."""
        x = np.asarray(x, dtype=float)
        mean = self.means.get(state, self._pooled_mean)
        if mean is None:
            mean = np.zeros(self.dim)
        inv, logdet = self._inv_logdet(state)
        diff = x - mean
        # The scalar einsum matches the contraction order of the batched
        # path in log_pdf_rows, keeping per-row and per-batch results
        # bit-identical.
        quad = float(np.einsum("i,ij,j->", diff, inv, diff))
        return -0.5 * (self.dim * np.log(2 * np.pi) + logdet + quad)

    def log_pdf_many(self, states: Sequence[int], x: np.ndarray) -> np.ndarray:
        """``log_pdf`` for several states against one observation."""
        return np.array([self.log_pdf(int(s), x) for s in states])

    def log_pdf_rows(self, states: Sequence[int], x_rows: np.ndarray) -> np.ndarray:
        """(T, |states|) log densities for a stacked batch of observations.

        One quadratic-form einsum per state over all rows; each entry is
        bit-identical to the corresponding :meth:`log_pdf` call.
        """
        x_rows = np.atleast_2d(np.asarray(x_rows, dtype=float))
        states = list(states)
        out = np.empty((x_rows.shape[0], len(states)))
        for j, state in enumerate(states):
            state = int(state)
            mean = self.means.get(state, self._pooled_mean)
            if mean is None:
                mean = np.zeros(self.dim)
            inv, logdet = self._inv_logdet(state)
            diffs = x_rows - mean[None, :]
            quads = np.einsum("ti,ij,tj->t", diffs, inv, diffs)
            out[:, j] = -0.5 * (self.dim * np.log(2 * np.pi) + logdet + quads)
        return out
