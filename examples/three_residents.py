"""Three-occupant recognition — the paper's 3-4 occupant conjecture.

The CACE paper evaluates resident pairs and conjectures the framework
"can handle 3-4 occupants as well".  This example generates a home with
three residents, trains the engine (which automatically selects the
N-chain loosely-coupled HDBN), and reports per-resident accuracy plus the
joint-trellis statistics that show why loose coupling keeps N chains
tractable.

Run:  python examples/three_residents.py
"""

import numpy as np

from repro.core.engine import CaceEngine
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import train_test_split


def main() -> None:
    print("generating a 3-resident smart home corpus...")
    dataset = generate_cace_dataset(
        n_homes=2,
        sessions_per_home=4,
        duration_s=2700.0,
        residents_per_home=3,
        seed=42,
    )
    train, test = train_test_split(dataset, 0.7, seed=1)
    print(
        f"  {len(train.sequences)} training / {len(test.sequences)} test sessions, "
        f"residents per home: {len(dataset.sequences[0].resident_ids)}"
    )

    engine = CaceEngine(strategy="c2", seed=7)
    engine.fit(train)
    print(f"model: {type(engine.model_).__name__}")
    print(f"mined rules: {engine.rule_set_.n_rules if engine.rule_set_ else 0}")

    per_resident = {}
    for seq in test.sequences:
        pred = engine.predict(seq)
        for rid in seq.resident_ids:
            truth = seq.macro_labels(rid)
            hits = sum(a == b for a, b in zip(truth, pred[rid]))
            ok, n = per_resident.get(rid, (0, 0))
            per_resident[rid] = (ok + hits, n + len(truth))

    print("\nper-resident accuracy:")
    total_ok = total_n = 0
    for rid, (ok, n) in sorted(per_resident.items()):
        print(f"  {rid}: {ok / n:.1%}  ({n} steps)")
        total_ok += ok
        total_n += n
    print(f"  overall: {total_ok / total_n:.1%}")

    stats = engine.model_.last_stats
    raw_space = 11 * 14  # (macro, subloc) combinations per resident
    print("\njoint state space:")
    print(f"  raw product space per step: {raw_space}^3 = {raw_space**3:,}")
    print(f"  decoded joint candidates per step (mean): {stats.mean_joint_states:.0f}")
    print(
        "  loose coupling + correlation pruning keep the trellis ~"
        f"{raw_space**3 / max(stats.mean_joint_states, 1):,.0f}x smaller than the raw product"
    )


if __name__ == "__main__":
    main()
