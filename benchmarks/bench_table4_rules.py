"""Bench: Table IV — mined association rules with confidence 1.0.

Paper: 58 unified rules on the CACE dataset; exemplars include
(cycling|sitting) & SR1 => exercising, bed => sleeping, the bathroom
exclusion, and joint dining.
"""

from benchmarks.conftest import record, workload
from repro.eval.experiments import table4_rules


def test_table4_rule_mining(benchmark):
    # Rule rediscovery needs corpus scale: with fewer than the paper's five
    # homes, a 4%-support itemset like exercising-on-the-bike can fall under
    # the Apriori floor purely from per-home personality variation.  Mining
    # is cheap, so this bench always runs at >= paper scale.
    params = workload()
    result = benchmark.pedantic(
        table4_rules,
        kwargs={
            "n_homes": max(params["n_homes"], 5),
            "sessions_per_home": max(params["sessions_per_home"], 6),
            "duration_s": max(params["duration_s"], 2700.0),
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("table4", result.render())
    assert result.n_rules > 10
    # The paper's flagship exemplars must be rediscovered from data.
    assert result.exemplars["(cycling|sitting) & SR1 => exercising"]
    assert result.exemplars["(sitting|lying) & SR5 => sleeping"]
    assert result.exemplars["U1:SR9 => not U2:SR9 (bathroom exclusion)"]
    assert result.exemplars["U1:SR4 & U2:SR4 => dining together"]
