"""N-chain loosely-coupled HDBN (beyond the paper's two-resident testbed).

The paper's conclusion conjectures that "our generic CACE framework can
handle 3-4 occupants as well"; this module makes the conjecture concrete.
:class:`NChainHdbn` generalises the pair-wise :class:`~repro.core.chdbn.
CoupledHdbn` to any number of resident chains:

* per-user candidate states and emissions are identical to the pair model
  (shared via :mod:`repro.core.emissions`);
* deterministic cross-user correlations prune every *pair* of chains —
  rules are mined on symmetrised two-user slots, so a rule that forbids
  ``(u1, u2)`` joint states applies to every ordered chain pair;
* the joint coverage term explains fired areas against *all* hypothesised
  residents;
* each chain's macro transition is conditioned on one partner chain
  (chain ``i`` on chain ``(i+1) mod N``), which keeps the transition
  tensor pairwise — exactly the "loose" coupling that makes N chains
  tractable — while every pairing still appears somewhere in the ring.

The joint trellis width is capped by emission score, so decoding remains
polynomial even though the raw product space grows exponentially in N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chdbn import DecodeStats, fit_macro_gmms, fit_object_cpt
from repro.core.emissions import user_state_emissions
from repro.core.state_space import StateSpaceBuilder, UserState, _ROOM_OF
from repro.datasets.trace import Dataset, LabeledSequence
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.util.rng import RandomState, ensure_rng

_TINY = 1e-12


@dataclass
class NChainHdbn:
    """Loosely-coupled HDBN over N resident chains.

    Parameters mirror :class:`~repro.core.chdbn.CoupledHdbn`; the joint
    caps apply to the full N-way product space.
    """

    constraint_model: ConstraintModel
    rule_set: Optional[CorrelationRuleSet] = None
    prune_cross: bool = True
    gmm_components: int = 4
    max_states_per_user: int = 24
    max_joint_states: int = 1200
    max_joint_states_pruned: int = 300
    min_change_prob: float = 1e-4
    use_feature_gmm: bool = True
    pir_miss_penalty: float = -1.5
    unexplained_subloc_penalty: float = -4.5
    unexplained_room_penalty: float = -2.5
    soft_exclusion_penalty: float = 0.0
    seed: RandomState = None
    builder: StateSpaceBuilder = field(default=None, init=False, repr=False)
    gmms_: Dict[int, object] = field(default_factory=dict, init=False, repr=False)
    last_stats: DecodeStats = field(default_factory=DecodeStats, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        self.builder = StateSpaceBuilder(
            constraint_model=self.constraint_model,
            max_states_per_user=4 * self.max_states_per_user,
        )
        self._single_rules = self.rule_set.single_user() if self.rule_set else None
        self._cross_rules = self.rule_set.cross_user() if self.rule_set else None
        cm = self.constraint_model
        self._p_change = np.clip(cm.macro_end_prob, self.min_change_prob, 0.5)
        coupled = cm.macro_trans_coupled.copy()
        n_m = cm.n_macro
        coupled[np.arange(n_m), :, np.arange(n_m)] = 0.0
        row = coupled.sum(axis=2, keepdims=True)
        self._change_trans = coupled / np.maximum(row, _TINY)
        self._log_posture = np.log(cm.posture_occupancy + _TINY)
        self._log_gesture = (
            np.log(cm.gesture_occupancy + _TINY)
            if cm.gesture_occupancy is not None
            else None
        )
        self._log_subloc_prior = np.log(cm.subloc_prior + _TINY)
        self._log_subloc_occ = np.log(cm.subloc_occupancy + _TINY)
        self._subloc_trans = cm.subloc_trans
        self._micro_end = cm.micro_end_prob

    # -- training -----------------------------------------------------------------

    def fit(self, train: Dataset) -> "NChainHdbn":
        """Fit emissions: DA Gaussian mixtures + object-evidence CPT."""
        self.gmms_ = fit_macro_gmms(
            train, self.constraint_model, self.gmm_components, self._rng
        )
        self._object_index, self._log_obj = fit_object_cpt(train, self.constraint_model)
        return self

    # -- per-step machinery ----------------------------------------------------------

    def _user_candidates(
        self, seq: LabeledSequence, rid: str, t: int
    ) -> Tuple[List[UserState], np.ndarray]:
        obs = seq.steps[t].observations[rid]
        states = self.builder.candidate_states(obs)
        if self._single_rules is not None:
            amb = self.builder.ambient_item_set(seq.steps[t])
            kept = [
                s
                for s in states
                if self._single_rules.is_consistent(
                    self.builder.state_item_set("u1", s, obs) | amb
                )
            ]
            if kept:
                states = kept
        emissions = user_state_emissions(self, seq, rid, t, states)
        if len(states) > self.max_states_per_user:
            top = np.argsort(emissions)[::-1][: self.max_states_per_user]
            states = [states[i] for i in top]
            emissions = emissions[top]
        return states, emissions

    def _pairwise_keep(
        self,
        step,
        s_a: List[UserState],
        s_b: List[UserState],
        obs_a,
        obs_b,
    ) -> np.ndarray:
        """(|s_a|, |s_b|) mask of pairs consistent with the cross rules."""
        amb = self.builder.ambient_item_set(step)
        items_a = [self.builder.state_item_set("u1", s, obs_a) for s in s_a]
        items_b = [self.builder.state_item_set("u2", s, obs_b) for s in s_b]
        keep = np.ones((len(s_a), len(s_b)), dtype=bool)

        for excl in self._cross_rules.hard_exclusions:
            a, b = excl.a, excl.b
            has_a = np.array([a in it for it in items_a]) if a.slot == "u1" else None
            has_b = np.array([b in it for it in items_b]) if b.slot == "u2" else None
            if has_a is None or has_b is None:
                continue
            keep &= ~np.outer(has_a, has_b)

        for rule in self._cross_rules.forcing_rules:
            ant1 = frozenset(i for i in rule.antecedent if i.slot == "u1")
            ant2 = frozenset(i for i in rule.antecedent if i.slot == "u2")
            ant_amb = frozenset(i for i in rule.antecedent if i.slot == "amb")
            if not ant_amb <= amb:
                continue
            sat1 = np.array([ant1 <= it for it in items_a])
            sat2 = np.array([ant2 <= it for it in items_b])
            cons = rule.consequent
            key = (cons.time, cons.attr)
            if cons.slot == "u1":
                viol = np.array(
                    [
                        any((i.time, i.attr) == key and i.value != cons.value for i in it)
                        and cons not in it
                        for it in items_a
                    ]
                )
                keep &= ~np.outer(sat1 & viol, sat2)
            elif cons.slot == "u2":
                viol = np.array(
                    [
                        any((i.time, i.attr) == key and i.value != cons.value for i in it)
                        and cons not in it
                        for it in items_b
                    ]
                )
                keep &= ~np.outer(sat1, sat2 & viol)
        return keep

    def _soft_pair_penalty(
        self,
        step,
        s_a: List[UserState],
        s_b: List[UserState],
        obs_a,
        obs_b,
    ) -> np.ndarray:
        """(|s_a|, |s_b|) log penalty from violated soft exclusions."""
        items_a = [self.builder.state_item_set("u1", s, obs_a) for s in s_a]
        items_b = [self.builder.state_item_set("u2", s, obs_b) for s in s_b]
        penalty = np.zeros((len(s_a), len(s_b)))
        for excl in self._cross_rules.soft_exclusions:
            a, b = excl.a, excl.b
            if a.slot != "u1" or b.slot != "u2":
                continue
            has_a = np.array([a in it for it in items_a])
            has_b = np.array([b in it for it in items_b])
            penalty += np.outer(has_a, has_b) * self.soft_exclusion_penalty
        return penalty

    def _joint_candidates(
        self,
        seq: LabeledSequence,
        t: int,
        per_user: List[Tuple[List[UserState], np.ndarray]],
        rids: Sequence[str],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(J, N) index tuples into the per-user candidate lists + scores."""
        step = seq.steps[t]
        n = len(per_user)
        sizes = [len(states) for states, _ in per_user]
        grids = np.indices(sizes).reshape(n, -1).T  # (prod, N)

        if self._cross_rules is not None and self.prune_cross:
            mask = np.ones(grids.shape[0], dtype=bool)
            for a in range(n):
                for b in range(a + 1, n):
                    pair_keep = self._pairwise_keep(
                        step,
                        per_user[a][0],
                        per_user[b][0],
                        step.observations[rids[a]],
                        step.observations[rids[b]],
                    )
                    mask &= pair_keep[grids[:, a], grids[:, b]]
            self.last_stats.pruned_joint_states += int((~mask).sum())
            if mask.any():
                grids = grids[mask]

        scores = np.zeros(grids.shape[0])
        for u, (states, emis) in enumerate(per_user):
            scores += emis[grids[:, u]]

        if self._cross_rules is not None and self.prune_cross:
            soft = self._cross_rules.soft_exclusions
            if soft:
                for a in range(n):
                    for b in range(a + 1, n):
                        pen = self._soft_pair_penalty(
                            step,
                            per_user[a][0],
                            per_user[b][0],
                            step.observations[rids[a]],
                            step.observations[rids[b]],
                        )
                        scores += pen[grids[:, a], grids[:, b]]

        # Joint explaining-away over all chains.
        locs = [np.array([s.subloc for s in states], dtype=object) for states, _ in per_user]
        for fired in step.sublocs_fired:
            covered = np.zeros(grids.shape[0], dtype=bool)
            for u in range(n):
                covered |= locs[u][grids[:, u]] == fired
            scores += np.where(covered, 0.0, self.unexplained_subloc_penalty)
        if not step.sublocs_fired and step.rooms_fired:
            rooms = [
                np.array([_ROOM_OF.get(s.subloc) for s in states], dtype=object)
                for states, _ in per_user
            ]
            for fired in step.rooms_fired:
                covered = np.zeros(grids.shape[0], dtype=bool)
                for u in range(n):
                    covered |= rooms[u][grids[:, u]] == fired
                scores += np.where(covered, 0.0, self.unexplained_room_penalty)

        cap = self.max_joint_states
        if self.rule_set is not None and self.prune_cross:
            cap = min(cap, self.max_joint_states_pruned)
        if grids.shape[0] > cap:
            top = np.argsort(scores)[::-1][:cap]
            grids = grids[top]
            scores = scores[top]
        return grids, scores

    def _encode(
        self, per_user: List[Tuple[List[UserState], np.ndarray]], grids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Macro and subloc index arrays of shape (J, N)."""
        cm = self.constraint_model
        n = len(per_user)
        m = np.empty((grids.shape[0], n), dtype=int)
        l = np.empty((grids.shape[0], n), dtype=int)
        for u, (states, _) in enumerate(per_user):
            ms = np.array([cm.macro_index.index(s.macro) for s in states], dtype=int)
            ls = np.array([cm.subloc_index.index(s.subloc) for s in states], dtype=int)
            m[:, u] = ms[grids[:, u]]
            l[:, u] = ls[grids[:, u]]
        return m, l

    def _chain_block(
        self,
        m_prev: np.ndarray,
        l_prev: np.ndarray,
        partner_prev: np.ndarray,
        m_cur: np.ndarray,
        l_cur: np.ndarray,
    ) -> np.ndarray:
        """One chain's (P, C) contribution to the joint transition."""
        same = m_prev[:, None] == m_cur[None, :]
        log_stay = np.log1p(-self._p_change[m_prev])[:, None]
        log_change = (
            np.log(self._p_change[m_prev])[:, None]
            + np.log(
                self._change_trans[m_prev[:, None], partner_prev[:, None], m_cur[None, :]]
                + _TINY
            )
        )
        macro_term = np.where(same, log_stay, log_change)

        micro_end = self._micro_end[m_cur][None, :]
        same_loc = l_prev[:, None] == l_cur[None, :]
        cont = np.log(
            (1.0 - micro_end) * same_loc
            + micro_end * self._subloc_trans[m_cur[None, :], l_prev[:, None], l_cur[None, :]]
            + _TINY
        )
        reset = self._log_subloc_prior[m_cur, l_cur][None, :]
        loc_term = np.where(same, cont, reset)
        return macro_term + loc_term

    def _transition_block(
        self,
        prev: Tuple[np.ndarray, np.ndarray],
        cur: Tuple[np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """(P, C) joint log transition; chain i conditions on chain i+1."""
        m_prev, l_prev = prev
        m_cur, l_cur = cur
        n = m_prev.shape[1]
        total = np.zeros((m_prev.shape[0], m_cur.shape[0]))
        for u in range(n):
            partner = (u + 1) % n if n > 1 else u
            total += self._chain_block(
                m_prev[:, u], l_prev[:, u], m_prev[:, partner], m_cur[:, u], l_cur[:, u]
            )
        return total

    # -- decoding -----------------------------------------------------------------------

    def _prepare(self, seq: LabeledSequence):
        rids = tuple(seq.resident_ids)
        if len(rids) < 2:
            raise ValueError("NChainHdbn expects >= 2 residents (use SingleUserHdbn)")
        self.last_stats = DecodeStats()
        stats = self.last_stats
        per_step = []
        for t in range(len(seq)):
            per_user = [self._user_candidates(seq, rid, t) for rid in rids]
            grids, scores = self._joint_candidates(seq, t, per_user, rids)
            enc = self._encode(per_user, grids)
            per_step.append((per_user, grids, scores, enc))
            stats.steps += 1
            stats.joint_states += grids.shape[0]
        return rids, per_step

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Joint Viterbi macro labels for every resident."""
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model
        stats = self.last_stats

        per_user, grids, scores, (m_enc, l_enc) = per_step[0]
        delta = scores + np.sum(
            np.log(cm.macro_prior[m_enc] + _TINY)
            + self._log_subloc_prior[m_enc, l_enc],
            axis=1,
        )
        backs: List[np.ndarray] = [np.zeros(len(delta), dtype=int)]

        for t in range(1, len(per_step)):
            prev_enc = per_step[t - 1][3]
            per_user, grids, scores, enc = per_step[t]
            log_t = self._transition_block(prev_enc, enc)
            stats.transition_entries += log_t.size
            total = delta[:, None] + log_t
            back = np.argmax(total, axis=0)
            delta = total[back, np.arange(total.shape[1])] + scores
            backs.append(back)

        idx = int(np.argmax(delta))
        path: List[int] = [idx]
        for t in range(len(per_step) - 1, 0, -1):
            path.append(int(backs[t][path[-1]]))
        path.reverse()

        out: Dict[str, List[str]] = {rid: [] for rid in rids}
        for t, j in enumerate(path):
            per_user, grids, _, _ = per_step[t]
            for u, rid in enumerate(rids):
                out[rid].append(per_user[u][0][grids[j, u]].macro)
        return out

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Per-resident posterior macro marginals ``(T, M)``."""
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model
        n_m = cm.n_macro

        def lse(arr: np.ndarray, axis: int) -> np.ndarray:
            m = arr.max(axis=axis, keepdims=True)
            m = np.where(np.isfinite(m), m, 0.0)
            return np.squeeze(m, axis=axis) + np.log(np.exp(arr - m).sum(axis=axis))

        alphas: List[np.ndarray] = []
        _, _, scores, (m_enc, l_enc) = per_step[0]
        alpha = scores + np.sum(
            np.log(cm.macro_prior[m_enc] + _TINY)
            + self._log_subloc_prior[m_enc, l_enc],
            axis=1,
        )
        alphas.append(alpha)
        for t in range(1, len(per_step)):
            prev_enc = per_step[t - 1][3]
            _, _, scores, enc = per_step[t]
            log_t = self._transition_block(prev_enc, enc)
            alpha = scores + lse(alphas[-1][:, None] + log_t, axis=0)
            alphas.append(alpha)

        betas: List[Optional[np.ndarray]] = [None] * len(per_step)
        betas[-1] = np.zeros_like(alphas[-1])
        for t in range(len(per_step) - 2, -1, -1):
            enc = per_step[t][3]
            nxt_scores, nxt_enc = per_step[t + 1][2], per_step[t + 1][3]
            log_t = self._transition_block(enc, nxt_enc)
            betas[t] = lse(log_t + (nxt_scores + betas[t + 1])[None, :], axis=1)

        out = {rid: np.zeros((len(per_step), n_m)) for rid in rids}
        for t in range(len(per_step)):
            log_gamma = alphas[t] + betas[t]
            log_gamma -= lse(log_gamma, axis=0)
            gamma = np.exp(log_gamma)
            m_enc, _ = per_step[t][3]
            for u, rid in enumerate(rids):
                np.add.at(out[rid][t], m_enc[:, u], gamma)
        return out
