"""Binary vibration ("object") sensors attached to household objects.

The testbed glues 8 wireless-sensor-tag vibration sensors to objects of
interest (exercise bike, wardrobe, cookware, ...) with a 55% sensitivity
setting chosen so "the slightest vibration on the object associated sensor
fires without false alarm".  A firing indicates the object is being
manipulated by *someone* — again unattributed to a specific resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_non_negative, check_probability


@dataclass
class ObjectSensor:
    """A vibration sensor on one object.

    Parameters
    ----------
    sensor_id:
        Unique identifier, e.g. ``"obj:exercise_bike"``.
    object_name:
        The instrumented object.
    sub_region:
        Sub-region (SR1..SR14) where the object lives.
    sensitivity:
        In [0, 1]; an interaction of intensity >= ``1 - sensitivity``
        triggers the sensor.  The testbed's 55% setting means even weak
        interactions (intensity 0.45+) fire.
    false_alarm_prob:
        Chance of a spurious firing per polling tick when untouched.
    miss_prob:
        Chance a genuine above-threshold interaction is nevertheless lost
        (radio loss in the tag manager).
    """

    sensor_id: str
    object_name: str
    sub_region: str
    sensitivity: float = 0.55
    false_alarm_prob: float = 0.001
    miss_prob: float = 0.02
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_probability("sensitivity", self.sensitivity)
        check_probability("false_alarm_prob", self.false_alarm_prob)
        check_probability("miss_prob", self.miss_prob)
        self._rng = ensure_rng(self.seed)

    @property
    def threshold(self) -> float:
        """Minimum interaction intensity that fires the sensor."""
        return 1.0 - self.sensitivity

    def poll(self, t: float, interaction_intensity: float = 0.0) -> Optional[bool]:
        """Poll at time *t* with the current interaction intensity in [0, 1]."""
        check_non_negative("interaction_intensity", interaction_intensity)
        if interaction_intensity >= self.threshold:
            return self._rng.random() >= self.miss_prob
        return self._rng.random() < self.false_alarm_prob
