"""FP-Growth frequent-itemset mining.

The paper uses Apriori (§V-A); FP-Growth is the standard faster alternative
and mines the *same* frequent itemsets from the same transactions, which
makes it both a drop-in replacement for large corpora and a strong
cross-check: the test suite asserts itemset-for-itemset equivalence with
:class:`~repro.mining.apriori.Apriori`, and a benchmark compares their
mining times on CACE-scale transaction sets.

The implementation is the classic two-pass algorithm: one pass counts
single items, a second builds the FP-tree over frequency-ordered
transactions, then conditional pattern bases are mined recursively.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.mining.apriori import FrequentItemsets
from repro.mining.context_rules import Item
from repro.util.validation import check_probability


class _FpNode:
    """One FP-tree node: an item, its count, and its parent link."""

    __slots__ = ("item", "count", "parent", "children", "next_same_item")

    def __init__(self, item: Optional[Item], parent: Optional["_FpNode"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[Item, "_FpNode"] = {}
        self.next_same_item: Optional["_FpNode"] = None


class _HeaderTable:
    """Per-item chains of tree nodes, kept in frequency order."""

    def __init__(self) -> None:
        self.heads: Dict[Item, _FpNode] = {}
        self.tails: Dict[Item, _FpNode] = {}
        self.counts: Dict[Item, int] = defaultdict(int)

    def link(self, node: _FpNode) -> None:
        item = node.item
        if item in self.tails:
            self.tails[item].next_same_item = node
        else:
            self.heads[item] = node
        self.tails[item] = node

    def chain(self, item: Item) -> Iterable[_FpNode]:
        node = self.heads.get(item)
        while node is not None:
            yield node
            node = node.next_same_item


@dataclass
class FpGrowth:
    """FP-Growth miner with the same thresholds as :class:`Apriori`.

    Parameters
    ----------
    min_support:
        Minimum fraction of transactions an itemset must appear in.
    max_itemset_size:
        Upper bound on mined itemset cardinality (the paper's rule shapes
        need at most 3).
    """

    min_support: float = 0.04
    max_itemset_size: int = 3

    def __post_init__(self) -> None:
        check_probability("min_support", self.min_support)
        if self.max_itemset_size < 1:
            raise ValueError("max_itemset_size must be >= 1")

    def mine_itemsets(self, transactions: Sequence[FrozenSet[Item]]) -> FrequentItemsets:
        """All frequent itemsets with their supports."""
        n = len(transactions)
        if n == 0:
            return FrequentItemsets(supports={}, n_transactions=0)
        min_count = self.min_support * n

        # Pass 1: item frequencies.
        item_counts: Dict[Item, int] = defaultdict(int)
        for transaction in transactions:
            for item in transaction:
                item_counts[item] += 1
        frequent = {i: c for i, c in item_counts.items() if c >= min_count}
        # Global frequency order (ties broken by the item tuple for
        # determinism across runs).
        order = {
            item: rank
            for rank, (item, _count) in enumerate(
                sorted(frequent.items(), key=lambda kv: (-kv[1], kv[0]))
            )
        }

        # Pass 2: build the FP-tree.
        root = _FpNode(None, None)
        header = _HeaderTable()
        for transaction in transactions:
            items = sorted(
                (i for i in transaction if i in frequent), key=order.__getitem__
            )
            node = root
            for item in items:
                child = node.children.get(item)
                if child is None:
                    child = _FpNode(item, node)
                    node.children[item] = child
                    header.link(child)
                child.count += 1
                node = child

        supports: Dict[FrozenSet[Item], float] = {}
        for item, count in frequent.items():
            supports[frozenset([item])] = count / n
        # Mine in reverse frequency order (deepest suffixes first).
        suffix_items = sorted(frequent, key=order.__getitem__, reverse=True)
        for item in suffix_items:
            self._mine_suffix(header, item, (item,), n, supports, min_count)
        return FrequentItemsets(supports=supports, n_transactions=n)

    # -- recursion over conditional pattern bases ---------------------------------

    def _mine_suffix(
        self,
        header: _HeaderTable,
        item: Item,
        suffix: Tuple[Item, ...],
        n: int,
        supports: Dict[FrozenSet[Item], float],
        min_count: float,
    ) -> None:
        if len(suffix) >= self.max_itemset_size:
            return
        # Conditional pattern base: prefix paths of every node carrying item.
        paths: List[Tuple[List[Item], int]] = []
        conditional_counts: Dict[Item, int] = defaultdict(int)
        for node in header.chain(item):
            path: List[Item] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                paths.append((path, node.count))
                for p in path:
                    conditional_counts[p] += node.count

        frequent = {i: c for i, c in conditional_counts.items() if c >= min_count}
        if not frequent:
            return
        cond_order = {
            it: rank
            for rank, (it, _c) in enumerate(
                sorted(frequent.items(), key=lambda kv: (-kv[1], kv[0]))
            )
        }
        # Build the conditional tree.
        root = _FpNode(None, None)
        cond_header = _HeaderTable()
        for path, count in paths:
            items = sorted((i for i in path if i in frequent), key=cond_order.__getitem__)
            node = root
            for it in items:
                child = node.children.get(it)
                if child is None:
                    child = _FpNode(it, node)
                    node.children[it] = child
                    cond_header.link(child)
                child.count += count
                node = child

        for it, count in frequent.items():
            new_suffix = (it,) + suffix
            supports[frozenset(new_suffix)] = count / n
            self._mine_suffix(cond_header, it, new_suffix, n, supports, min_count)
