"""Unit-quaternion algebra for 9-axis IMU orientation.

The paper represents device orientation as quaternions and computes the
smartphone position relative to the neck-mounted SensorTag frame as
``w = q_t . w0 . q_t^{-1}`` (Eqn 16).  This module provides exactly the
operations that computation needs: Hamilton products, conjugation,
normalisation, vector rotation, axis-angle construction, rotation matrices,
and spherical interpolation for smooth simulated orientation trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np


@dataclass(frozen=True)
class Quaternion:
    """A quaternion ``q = w + x*i + y*j + z*k`` (scalar-first convention)."""

    w: float
    x: float
    y: float
    z: float

    # -- constructors ------------------------------------------------------

    @staticmethod
    def identity() -> "Quaternion":
        """The rotation-free quaternion."""
        return Quaternion(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_axis_angle(axis: Iterable[float], angle: float) -> "Quaternion":
        """Quaternion rotating by *angle* radians around *axis*."""
        ax = np.asarray(list(axis), dtype=float)
        norm = np.linalg.norm(ax)
        if norm == 0:
            raise ValueError("rotation axis must be non-zero")
        ax = ax / norm
        half = angle / 2.0
        s = np.sin(half)
        return Quaternion(float(np.cos(half)), float(ax[0] * s), float(ax[1] * s), float(ax[2] * s))

    @staticmethod
    def from_array(arr: Iterable[float]) -> "Quaternion":
        """Build from a length-4 ``[w, x, y, z]`` sequence."""
        w, x, y, z = (float(v) for v in arr)
        return Quaternion(w, x, y, z)

    @staticmethod
    def from_euler(roll: float, pitch: float, yaw: float) -> "Quaternion":
        """Quaternion from intrinsic Z-Y-X Euler angles (radians)."""
        cr, sr = np.cos(roll / 2), np.sin(roll / 2)
        cp, sp = np.cos(pitch / 2), np.sin(pitch / 2)
        cy, sy = np.cos(yaw / 2), np.sin(yaw / 2)
        return Quaternion(
            float(cr * cp * cy + sr * sp * sy),
            float(sr * cp * cy - cr * sp * sy),
            float(cr * sp * cy + sr * cp * sy),
            float(cr * cp * sy - sr * sp * cy),
        )

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "Quaternion") -> "Quaternion":
        """Hamilton product ``self * other``."""
        w1, x1, y1, z1 = self.w, self.x, self.y, self.z
        w2, x2, y2, z2 = other.w, other.x, other.y, other.z
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def conjugate(self) -> "Quaternion":
        """``q* = w - xi - yj - zk``."""
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    def norm(self) -> float:
        """Euclidean magnitude ``|q|``."""
        return float(np.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2))

    def normalized(self) -> "Quaternion":
        """Unit quaternion with the same orientation."""
        n = self.norm()
        if n == 0:
            raise ValueError("cannot normalise the zero quaternion")
        return Quaternion(self.w / n, self.x / n, self.y / n, self.z / n)

    def inverse(self) -> "Quaternion":
        """Multiplicative inverse ``q^{-1} = q* / |q|^2``."""
        n2 = self.norm() ** 2
        if n2 == 0:
            raise ValueError("the zero quaternion has no inverse")
        c = self.conjugate()
        return Quaternion(c.w / n2, c.x / n2, c.y / n2, c.z / n2)

    # -- geometry ----------------------------------------------------------

    def rotate(self, vec: Iterable[float]) -> np.ndarray:
        """Rotate a 3-vector: the Eqn 16 sandwich ``q . (0, v) . q^{-1}``."""
        v = np.asarray(list(vec), dtype=float)
        if v.shape != (3,):
            raise ValueError(f"expected a 3-vector, got shape {v.shape}")
        p = Quaternion(0.0, float(v[0]), float(v[1]), float(v[2]))
        out = self * p * self.inverse()
        return np.array([out.x, out.y, out.z])

    def to_rotation_matrix(self) -> np.ndarray:
        """3x3 rotation matrix of the (normalised) quaternion."""
        q = self.normalized()
        w, x, y, z = q.w, q.x, q.y, q.z
        return np.array(
            [
                [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
                [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
                [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
            ]
        )

    def to_array(self) -> np.ndarray:
        """``[w, x, y, z]`` as a numpy array."""
        return np.array([self.w, self.x, self.y, self.z])

    def axis_angle(self) -> Tuple[np.ndarray, float]:
        """Recover (axis, angle) from a unit quaternion."""
        q = self.normalized()
        # Keep the scalar part non-negative so the angle is in [0, pi].
        if q.w < 0:
            q = Quaternion(-q.w, -q.x, -q.y, -q.z)
        angle = 2.0 * float(np.arccos(np.clip(q.w, -1.0, 1.0)))
        s = np.sqrt(max(1.0 - q.w * q.w, 0.0))
        if s < 1e-12:
            return np.array([1.0, 0.0, 0.0]), 0.0
        return np.array([q.x, q.y, q.z]) / s, angle

    def slerp(self, other: "Quaternion", t: float) -> "Quaternion":
        """Spherical linear interpolation between two unit quaternions."""
        q0 = self.normalized().to_array()
        q1 = other.normalized().to_array()
        dot = float(np.dot(q0, q1))
        # Take the short arc.
        if dot < 0:
            q1, dot = -q1, -dot
        if dot > 1.0 - 1e-10:
            out = q0 + t * (q1 - q0)
            out /= np.linalg.norm(out)
            return Quaternion.from_array(out)
        theta = np.arccos(np.clip(dot, -1.0, 1.0))
        s = np.sin(theta)
        a = np.sin((1 - t) * theta) / s
        b = np.sin(t * theta) / s
        return Quaternion.from_array(a * q0 + b * q1)

    def angular_distance(self, other: "Quaternion") -> float:
        """Rotation angle (radians) taking *self* onto *other*."""
        rel = other.normalized() * self.normalized().inverse()
        _, angle = rel.axis_angle()
        return angle
