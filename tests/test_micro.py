"""Unit + property tests for the micro-activity recognition stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.micro import (
    DecisionTreeClassifier,
    DeterministicAnnealing,
    FEATURE_COUNT,
    RandomForestClassifier,
    detect_change_points,
    extract_features,
    frame_signal,
    goertzel_power,
    goertzel_spectrum,
    segment_stream,
)
from repro.micro.changepoint import majority_smooth


class TestGoertzel:
    def test_peak_at_signal_frequency(self):
        fs, f0 = 50.0, 3.0
        t = np.arange(300) / fs
        signal = np.sin(2 * np.pi * f0 * t)
        spectrum = goertzel_spectrum(signal, fs, np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert np.argmax(spectrum) == 2

    @given(st.sampled_from([1.0, 2.0, 3.0, 4.0, 5.0]))
    @settings(max_examples=10, deadline=None)
    def test_peak_property(self, f0):
        fs = 50.0
        t = np.arange(500) / fs
        signal = np.sin(2 * np.pi * f0 * t)
        bands = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        spectrum = goertzel_spectrum(signal, fs, bands)
        assert bands[np.argmax(spectrum)] == f0

    def test_zero_signal_zero_power(self):
        assert goertzel_power(np.zeros(100), 50.0, 2.0) == pytest.approx(0.0)

    def test_rejects_beyond_nyquist(self):
        with pytest.raises(ValueError):
            goertzel_power(np.ones(10), 50.0, 26.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            goertzel_power(np.array([]), 50.0, 2.0)


class TestFeatures:
    def test_feature_count_is_32(self):
        frame = np.random.default_rng(0).normal(size=(75, 3))
        assert extract_features(frame).shape == (FEATURE_COUNT,)
        assert FEATURE_COUNT == 32

    def test_features_finite(self):
        frame = np.zeros((75, 3))  # degenerate constant frame
        feats = extract_features(frame)
        assert np.all(np.isfinite(feats))

    def test_framing_counts(self):
        traj = np.zeros((300, 3))
        frames = list(frame_signal(traj, 50.0, frame_s=1.5, overlap=0.5))
        # 75-sample frames, hop = round(75 * 0.5) = 38: floor((300-75)/38)+1 = 6
        assert len(frames) == 6
        assert frames[0][1].shape == (75, 3)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            extract_features(np.zeros((75, 2)))
        with pytest.raises(ValueError):
            list(frame_signal(np.zeros((100, 4)), 50.0))


class TestChangepoint:
    def test_detects_mean_shift(self):
        rng = np.random.default_rng(1)
        stream = np.vstack(
            [rng.normal(0, 0.3, (40, 4)), rng.normal(4.0, 0.3, (40, 4))]
        )
        points = detect_change_points(stream, window=8, threshold=2.0)
        assert any(abs(p - 40) <= 4 for p in points)

    def test_stationary_stream_has_no_changes(self):
        rng = np.random.default_rng(2)
        stream = rng.normal(0, 1.0, (80, 4))
        assert detect_change_points(stream, window=8, threshold=4.0) == []

    def test_segments_partition_stream(self):
        rng = np.random.default_rng(3)
        stream = np.vstack([rng.normal(0, 0.3, (30, 2)), rng.normal(5, 0.3, (30, 2))])
        segments = segment_stream(stream, window=6, threshold=2.0)
        assert segments[0][0] == 0
        assert segments[-1][1] == 60
        for (_a, b), (c, _d) in zip(segments[:-1], segments[1:]):
            assert b == c

    def test_majority_smooth(self):
        labels = ["a", "a", "b", "a", "a", "c", "c", "c"]
        smoothed = majority_smooth(labels, [(0, 5), (5, 8)])
        assert smoothed == ["a"] * 5 + ["c"] * 3


class TestDecisionTree:
    def _blobs(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        x0 = rng.normal([0, 0], 0.4, (n // 2, 2))
        x1 = rng.normal([3, 3], 0.4, (n // 2, 2))
        x = np.vstack([x0, x1])
        y = np.array(["a"] * (n // 2) + ["b"] * (n // 2), dtype=object)
        return x, y

    def test_separable_blobs(self):
        x, y = self._blobs()
        tree = DecisionTreeClassifier(seed=1).fit(x, y)
        assert np.mean(tree.predict(x) == y) > 0.98

    def test_proba_sums_to_one(self):
        x, y = self._blobs()
        tree = DecisionTreeClassifier(seed=1).fit(x, y)
        proba = tree.predict_proba(x[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_depth_cap_respected(self):
        x, y = self._blobs(seed=3)
        tree = DecisionTreeClassifier(max_depth=2, seed=1).fit(x, y)
        assert tree.depth() <= 2

    def test_input_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), [])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), ["a", "b"])
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))


class TestRandomForest:
    def test_forest_beats_chance_on_blobs(self):
        rng = np.random.default_rng(5)
        x = np.vstack([rng.normal(i, 0.6, (40, 3)) for i in range(3)])
        y = np.array(sum([[str(i)] * 40 for i in range(3)], []), dtype=object)
        forest = RandomForestClassifier(n_trees=10, seed=2).fit(x, y)
        assert forest.score(x, y) > 0.9

    def test_class_alignment_with_missing_bootstrap_classes(self):
        # Tiny imbalanced data: some bootstraps will miss class "rare".
        rng = np.random.default_rng(6)
        x = np.vstack([rng.normal(0, 0.3, (30, 2)), rng.normal(5, 0.3, (3, 2))])
        y = np.array(["common"] * 30 + ["rare"] * 3, dtype=object)
        forest = RandomForestClassifier(n_trees=12, seed=3).fit(x, y)
        proba = forest.predict_proba(x)
        assert proba.shape == (33, 2)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))


class TestDeterministicAnnealing:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(7)
        x = np.vstack([rng.normal(0, 0.2, (60, 2)), rng.normal(6, 0.2, (60, 2))])
        da = DeterministicAnnealing(n_clusters=2, seed=4).fit(x)
        centers = sorted(da.centers_[:, 0])
        assert centers[0] == pytest.approx(0.0, abs=0.5)
        assert centers[-1] == pytest.approx(6.0, abs=0.5)

    def test_fit_gaussians_shapes(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(80, 3))
        da = DeterministicAnnealing(n_clusters=3, seed=5)
        means, covs, labels = da.fit_gaussians(x)
        k = means.shape[0]
        assert covs.shape == (k, 3, 3)
        assert labels.shape == (80,)
        assert labels.max() < k

    def test_predict_nearest(self):
        rng = np.random.default_rng(9)
        x = np.vstack([rng.normal(0, 0.2, (40, 1)), rng.normal(9, 0.2, (40, 1))])
        da = DeterministicAnnealing(n_clusters=2, seed=6).fit(x)
        labels = da.predict(np.array([[0.1], [8.9]]))
        assert labels[0] != labels[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DeterministicAnnealing().fit(np.zeros((0, 2)))
