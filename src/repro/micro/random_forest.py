"""Random forest classifier: bagged CART trees with feature subsampling.

Drop-in analogue of the WEKA RandomForest the paper used for postural and
oral-gestural classification; probabilities are averaged across trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.micro.decision_tree import DecisionTreeClassifier
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive


@dataclass
class RandomForestClassifier:
    """Bagging ensemble of CART trees.

    Parameters
    ----------
    n_trees:
        Ensemble size (paper-scale workloads do fine with 15-30).
    max_depth:
        Per-tree depth cap.
    max_features:
        Features per split; None uses ``ceil(sqrt(d))``.
    """

    n_trees: int = 20
    max_depth: Optional[int] = 12
    max_features: Optional[int] = None
    seed: RandomState = None
    classes_: Optional[np.ndarray] = field(default=None, init=False)
    trees_: List[DecisionTreeClassifier] = field(default_factory=list, init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("n_trees", self.n_trees)
        self._rng = ensure_rng(self.seed)

    def fit(self, x: np.ndarray, y: Sequence) -> "RandomForestClassifier":
        """Fit the ensemble on bootstrap resamples of ``(x, y)``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must align")
        n, d = x.shape
        self.classes_ = np.unique(y)
        max_features = self.max_features or int(np.ceil(np.sqrt(d)))

        self.trees_ = []
        for _ in range(self.n_trees):
            idx = self._rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=max_features,
                seed=self._rng.integers(0, 2**31),
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Tree-averaged class probabilities aligned to :attr:`classes_`."""
        if not self.trees_ or self.classes_ is None:
            raise RuntimeError("forest is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        total = np.zeros((x.shape[0], len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_)}
        for tree in self.trees_:
            proba = tree.predict_proba(x)
            # Bootstrap samples can miss classes; align by label.
            for j, cls in enumerate(tree.classes_):
                total[:, class_pos[cls]] += proba[:, j]
        return total / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most-probable class labels."""
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, x: np.ndarray, y: Sequence) -> float:
        """Mean accuracy on ``(x, y)``."""
        return float(np.mean(self.predict(x) == np.asarray(y)))
