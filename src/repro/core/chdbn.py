"""Coupled Hierarchical Dynamic Bayesian Network (the CACE model).

Implements the loosely-coupled HDBN of §IV/§VI over the hidden joint state
``(m1, l1, m2, l2)`` (macro activity + sub-location per resident), with:

* **End-of-sequence-marker semantics (Eqns 3-6).**  A macro state may only
  change when its micro sequence terminates (blocking), and a micro
  sequence cannot outlive its macro (termination).  Flattened, this yields:
  within a macro, the sub-location chain evolves by the mined per-macro
  micro transition with per-step end probability; on a macro change the
  micro chain *resets* from the new macro's prior (Augmentations 1-3).
* **Coupled macro transitions** ``P(m' | m, partner_m)`` (Augmentation 3),
  shrunk toward the uncoupled table where data is sparse.
* **Gaussian-mixture emissions** per macro over the continuous feature
  vector, with components discovered by deterministic annealing
  (Augmentation 4), alongside CPTs for the observed postural/gestural
  micro context, iBeacon soft location evidence, and PIR room
  compatibility.
* **Correlation pruning.**  When a rule set is supplied, per-user candidate
  states are filtered by single-user rules and joint candidates by
  cross-user rules/exclusions — the paper's state-space reduction, and the
  source of its ~16x overhead gain.

Decoding is exact joint Viterbi over the per-step candidate trellis with
numpy-vectorised transition blocks; posterior marginals use the same
machinery with sum-product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.emissions import object_log_evidence, user_state_emissions
from repro.core.state_space import StateSpaceBuilder, UserState, _ROOM_OF
from repro.datasets.trace import Dataset, LabeledSequence
from repro.micro.annealing import DeterministicAnnealing
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.models.chmm import soft_location_log_evidence
from repro.util.rng import RandomState, ensure_rng

_TINY = 1e-12
#: Log penalty for hypothesising a sub-location whose room shows no PIR
#: activity while other rooms do (PIRs miss stationary residents).
_PIR_MISS_PENALTY = -1.5


@dataclass
class DecodeStats:
    """Work accounting for one decoded sequence (overhead metrics)."""

    steps: int = 0
    joint_states: int = 0
    transition_entries: int = 0
    pruned_joint_states: int = 0

    @property
    def mean_joint_states(self) -> float:
        """Average joint-candidate count per step."""
        return self.joint_states / max(self.steps, 1)


@dataclass
class _MacroGmm:
    """Per-macro Gaussian mixture over emission features (Augmentation 4)."""

    weights: np.ndarray
    means: np.ndarray
    inv_covs: np.ndarray
    logdets: np.ndarray

    def log_pdf(self, x: np.ndarray) -> float:
        d = x.shape[0]
        diffs = x[None, :] - self.means  # (K, d)
        quads = np.einsum("ki,kij,kj->k", diffs, self.inv_covs, diffs)
        comps = (
            np.log(self.weights + _TINY)
            - 0.5 * (d * np.log(2 * np.pi) + self.logdets + quads)
        )
        m = comps.max()
        return float(m + np.log(np.exp(comps - m).sum()))


def fit_object_cpt(
    train: Dataset, constraint_model: ConstraintModel, alpha: float = 1.0
) -> Tuple[Dict[str, int], np.ndarray]:
    """Bernoulli object-evidence model ``P(object fires | macro)``.

    Object sensors are unattributed — the partner's stove firing counts
    against *my* macro too — but the counted statistics absorb that
    confound and still separate e.g. cooking (stove) from prepare_food
    (kettle), the two activities the paper reports as hardest.

    Returns ``(object_index, log_table)`` with ``log_table[m, o, fired]``.
    """
    objects = sorted(
        {obj for seq in train.sequences for step in seq.steps for obj in step.objects_fired}
    )
    object_index = {obj: i for i, obj in enumerate(objects)}
    n_m = constraint_model.n_macro
    counts = np.full((n_m, max(len(objects), 1), 2), alpha, dtype=float)
    for seq in train.sequences:
        for rid in seq.resident_ids:
            for step, truth in zip(seq.steps, seq.truths):
                m = constraint_model.macro_index.index(truth[rid].macro)
                for obj, o in object_index.items():
                    counts[m, o, 1 if obj in step.objects_fired else 0] += 1
    probs = counts / counts.sum(axis=2, keepdims=True)
    return object_index, np.log(probs)


def fit_macro_gmms(
    train: Dataset,
    constraint_model: ConstraintModel,
    n_components: int,
    rng: np.random.Generator,
) -> Dict[int, _MacroGmm]:
    """Per-macro Gaussian mixtures with DA-discovered means.

    Component means come from deterministic annealing (Augmentation 4's
    low-level state discovery); all components of a macro share the pooled
    within-macro covariance.  Session-level feature drift means test points
    land *between* narrow DA clusters, and the shared broad covariance
    keeps the feature channel honest about that uncertainty instead of
    issuing catastrophic log penalties.
    """
    by_macro: Dict[int, List[np.ndarray]] = {}
    for seq in train.sequences:
        for rid in seq.resident_ids:
            for step, truth in zip(seq.steps, seq.truths):
                m = constraint_model.macro_index.index(truth[rid].macro)
                by_macro.setdefault(m, []).append(
                    np.asarray(step.observations[rid].features, dtype=float)
                )
    gmms: Dict[int, _MacroGmm] = {}
    for m, rows in by_macro.items():
        x = np.vstack(rows)
        da = DeterministicAnnealing(
            n_clusters=min(n_components, x.shape[0]),
            seed=rng.integers(0, 2**31),
        )
        means, covs, labels = da.fit_gaussians(x)
        counts = np.bincount(labels, minlength=means.shape[0]).astype(float)
        weights = counts / counts.sum()
        dim = x.shape[1]
        pooled = np.atleast_2d(np.cov(x.T)) if x.shape[0] > 1 else np.eye(dim)
        pooled = pooled + 1e-4 * np.eye(dim)
        inv_pooled = np.linalg.inv(pooled)
        logdet = np.linalg.slogdet(pooled)[1]
        inv_covs = np.broadcast_to(inv_pooled, covs.shape).copy()
        logdets = np.full(means.shape[0], logdet)
        gmms[m] = _MacroGmm(weights, means, inv_covs, logdets)
    return gmms


@dataclass
class CoupledHdbn:
    """The loosely-coupled HDBN recogniser for a resident pair.

    Parameters
    ----------
    constraint_model:
        Output of the constraint miner (probabilistic structure).
    rule_set:
        Output of the correlation miner; ``None`` disables correlation
        pruning (the paper's NCS strategy).
    prune_per_user / prune_cross:
        Which rule classes to apply (NCR uses per-user only).
    gmm_components:
        Deterministic-annealing codebook size per macro.
    max_joint_states:
        Safety cap per step; candidates beyond it are dropped by emission
        score (logged in :class:`DecodeStats`).
    """

    constraint_model: ConstraintModel
    rule_set: Optional[CorrelationRuleSet] = None
    prune_per_user: bool = True
    prune_cross: bool = True
    gmm_components: int = 4
    max_states_per_user: int = 36
    max_joint_states: int = 2000
    #: When correlation pruning is active, surviving joint candidates are
    #: further capped to the best-scoring K — the paper's probabilistic
    #: pruning of "very unlikely state sequences" that buys the 16x.
    #: Accuracy is flat down to ~70 on the CACE corpus (the rules really do
    #: isolate the plausible joint states); 100 leaves safety margin.
    max_joint_states_pruned: int = 100
    min_change_prob: float = 1e-4
    use_feature_gmm: bool = True
    pir_miss_penalty: float = _PIR_MISS_PENALTY
    #: Joint explaining-away: log cost of a fired area-motion sensor that
    #: *neither* resident's hypothesis covers (~log of the per-window false
    #: alarm probability).  This is where multiple occupancy becomes an
    #: asset: "partner is in the kitchen" explains the kitchen firing, so I
    #: don't have to be there — and an area nobody claims votes against the
    #: whole joint assignment, not against either resident alone.
    unexplained_subloc_penalty: float = -4.5
    #: Same idea at room granularity for PIR fleets (milder: rooms keep
    #: firing briefly after the occupant walks out of a 15 s window).
    unexplained_room_penalty: float = -2.5
    #: Log penalty per violated *soft* exclusion.  Defaults to 0: the
    #: coupled transition CPTs already carry behavioural negative
    #: correlation, and an extra per-step penalty double-counts it (it cost
    #: 1-5 accuracy points in ablations).  Exposed for experimentation.
    soft_exclusion_penalty: float = 0.0
    seed: RandomState = None
    builder: StateSpaceBuilder = field(default=None, init=False, repr=False)
    gmms_: Dict[int, _MacroGmm] = field(default_factory=dict, init=False, repr=False)
    last_stats: DecodeStats = field(default_factory=DecodeStats, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        # The builder over-generates; emission evidence picks the survivors.
        self.builder = StateSpaceBuilder(
            constraint_model=self.constraint_model,
            max_states_per_user=4 * self.max_states_per_user,
        )
        self._single_rules = self.rule_set.single_user() if self.rule_set else None
        self._cross_rules = self.rule_set.cross_user() if self.rule_set else None
        cm = self.constraint_model
        # macro_end_prob is counted per step, so it already reflects the
        # blocking constraint (macro segments end only at micro boundaries);
        # multiplying in micro_end_prob again would double-count.
        self._p_change = np.clip(cm.macro_end_prob, self.min_change_prob, 0.5)
        # Off-diagonal renormalised coupled transition: given a change
        # happens, where does the macro go (conditioned on the partner)?
        coupled = cm.macro_trans_coupled.copy()
        n_m = cm.n_macro
        diag = coupled[np.arange(n_m), :, np.arange(n_m)]  # (M, M) -> [m, partner]
        coupled[np.arange(n_m), :, np.arange(n_m)] = 0.0
        row = coupled.sum(axis=2, keepdims=True)
        self._change_trans = coupled / np.maximum(row, _TINY)
        # Evidence terms use the per-step *occupancy* tables: segment-start
        # priors see one count per segment and smooth to near-uniform,
        # which silently removes the posture/gesture/location channels.
        self._log_posture = np.log(cm.posture_occupancy + _TINY)
        self._log_gesture = (
            np.log(cm.gesture_occupancy + _TINY)
            if cm.gesture_occupancy is not None
            else None
        )
        self._log_subloc_prior = np.log(cm.subloc_prior + _TINY)
        self._log_subloc_occ = np.log(cm.subloc_occupancy + _TINY)
        self._subloc_trans = cm.subloc_trans
        self._micro_end = cm.micro_end_prob

    # -- training -----------------------------------------------------------------

    def fit(self, train: Dataset) -> "CoupledHdbn":
        """Fit emissions: DA Gaussian mixtures + object-evidence CPT."""
        self.gmms_ = fit_macro_gmms(
            train, self.constraint_model, self.gmm_components, self._rng
        )
        self._object_index, self._log_obj = fit_object_cpt(train, self.constraint_model)
        return self

    # -- per-step machinery ----------------------------------------------------------

    def _user_candidates(
        self, seq: LabeledSequence, rid: str, t: int
    ) -> Tuple[List[UserState], np.ndarray]:
        """Candidate states and their emissions, evidence-truncated."""
        obs = seq.steps[t].observations[rid]
        states = self.builder.candidate_states(obs)
        if self._single_rules is not None and self.prune_per_user:
            amb = self.builder.ambient_item_set(seq.steps[t])
            kept = [
                s
                for s in states
                if self._single_rules.is_consistent(
                    self.builder.state_item_set("u1", s, obs) | amb
                )
            ]
            if kept:
                states = kept
        emissions = self._user_emissions(seq, rid, t, states)
        if len(states) > self.max_states_per_user:
            top = np.argsort(emissions)[::-1][: self.max_states_per_user]
            states = [states[i] for i in top]
            emissions = emissions[top]
        return states, emissions

    def _user_emissions(
        self, seq: LabeledSequence, rid: str, t: int, states: List[UserState]
    ) -> np.ndarray:
        return user_state_emissions(self, seq, rid, t, states)

    def _joint_candidates(
        self,
        seq: LabeledSequence,
        t: int,
        s1: List[UserState],
        s2: List[UserState],
        e1: np.ndarray,
        e2: np.ndarray,
        rids: Tuple[str, str],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index pairs (i1, i2) into s1 x s2 after cross-user pruning."""
        n1, n2 = len(s1), len(s2)
        pairs = np.indices((n1, n2)).reshape(2, -1).T  # (n1*n2, 2)
        if self._cross_rules is not None and self.prune_cross:
            keep = self._cross_prune_mask(seq, t, s1, s2, rids)
            mask = keep[pairs[:, 0], pairs[:, 1]]
            self.last_stats.pruned_joint_states += int((~mask).sum())
            if mask.any():
                pairs = pairs[mask]
        scores = e1[pairs[:, 0]] + e2[pairs[:, 1]]
        scores = scores + self._coverage_penalty(seq.steps[t], s1, s2, pairs)
        if self._cross_rules is not None and self.prune_cross:
            scores = scores + self._soft_exclusion_penalty(
                seq.steps[t], s1, s2, pairs, rids
            )
        cap = self.max_joint_states
        if self.rule_set is not None and self.prune_cross:
            cap = min(cap, self.max_joint_states_pruned)
        if pairs.shape[0] > cap:
            top = np.argsort(scores)[::-1][:cap]
            pairs = pairs[top]
            scores = scores[top]
        return pairs[:, 0], pairs[:, 1], scores

    def _coverage_penalty(
        self,
        step,
        s1: List[UserState],
        s2: List[UserState],
        pairs: np.ndarray,
    ) -> np.ndarray:
        """Per-pair log penalty for fired areas no hypothesis explains."""
        loc1 = np.array([s.subloc for s in s1], dtype=object)
        loc2 = np.array([s.subloc for s in s2], dtype=object)
        out = np.zeros(pairs.shape[0])
        for fired in step.sublocs_fired:
            covered = (loc1[pairs[:, 0]] == fired) | (loc2[pairs[:, 1]] == fired)
            out += np.where(covered, 0.0, self.unexplained_subloc_penalty)
        if not step.sublocs_fired and step.rooms_fired:
            room1 = np.array([_ROOM_OF.get(s.subloc) for s in s1], dtype=object)
            room2 = np.array([_ROOM_OF.get(s.subloc) for s in s2], dtype=object)
            for fired in step.rooms_fired:
                covered = (room1[pairs[:, 0]] == fired) | (room2[pairs[:, 1]] == fired)
                out += np.where(covered, 0.0, self.unexplained_room_penalty)
        return out

    def _soft_exclusion_penalty(
        self,
        step,
        s1: List[UserState],
        s2: List[UserState],
        pairs: np.ndarray,
        rids: Tuple[str, str],
    ) -> np.ndarray:
        """Per-pair penalty for joint states that break soft exclusions."""
        soft = self._cross_rules.soft_exclusions
        if not soft:
            return np.zeros(pairs.shape[0])
        obs1 = step.observations[rids[0]]
        obs2 = step.observations[rids[1]]
        items1 = [self.builder.state_item_set("u1", s, obs1) for s in s1]
        items2 = [self.builder.state_item_set("u2", s, obs2) for s in s2]
        penalty = np.zeros((len(s1), len(s2)))
        for excl in soft:
            a, b = excl.a, excl.b
            if a.slot != "u1" or b.slot != "u2":
                continue
            has_a = np.array([a in it for it in items1])
            has_b = np.array([b in it for it in items2])
            penalty += np.outer(has_a, has_b) * self.soft_exclusion_penalty
        return penalty[pairs[:, 0], pairs[:, 1]]

    def _cross_prune_mask(
        self,
        seq: LabeledSequence,
        t: int,
        s1: List[UserState],
        s2: List[UserState],
        rids: Tuple[str, str],
    ) -> np.ndarray:
        """(|s1|, |s2|) boolean mask of joint states consistent with the
        cross-user rules, evaluated with per-rule outer products instead of
        per-pair item-set unions (the pruning must be cheaper than the
        trellis work it saves)."""
        step = seq.steps[t]
        amb = self.builder.ambient_item_set(step)
        obs1 = step.observations[rids[0]]
        obs2 = step.observations[rids[1]]
        items1 = [self.builder.state_item_set("u1", s, obs1) for s in s1]
        items2 = [self.builder.state_item_set("u2", s, obs2) for s in s2]
        keep = np.ones((len(s1), len(s2)), dtype=bool)

        for excl in self._cross_rules.hard_exclusions:
            a, b = excl.a, excl.b
            has_a = np.array([a in it for it in items1]) if a.slot == "u1" else None
            has_b = np.array([b in it for it in items2]) if b.slot == "u2" else None
            if has_a is None or has_b is None:
                continue
            keep &= ~np.outer(has_a, has_b)

        for rule in self._cross_rules.forcing_rules:
            ant1 = frozenset(i for i in rule.antecedent if i.slot == "u1")
            ant2 = frozenset(i for i in rule.antecedent if i.slot == "u2")
            ant_amb = frozenset(i for i in rule.antecedent if i.slot == "amb")
            if not ant_amb <= amb:
                continue
            sat1 = np.array([ant1 <= it for it in items1])
            sat2 = np.array([ant2 <= it for it in items2])
            cons = rule.consequent
            key = (cons.time, cons.attr)
            if cons.slot == "u1":
                viol = np.array(
                    [
                        any(
                            (i.time, i.attr) == key and i.value != cons.value
                            for i in it
                        )
                        and cons not in it
                        for it in items1
                    ]
                )
                keep &= ~np.outer(sat1 & viol, sat2)
            elif cons.slot == "u2":
                viol = np.array(
                    [
                        any(
                            (i.time, i.attr) == key and i.value != cons.value
                            for i in it
                        )
                        and cons not in it
                        for it in items2
                    ]
                )
                keep &= ~np.outer(sat1, sat2 & viol)
        return keep

    def _transition_block(
        self,
        prev: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        cur: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """(P, C) joint log transition between candidate sets."""
        m1p, l1p, m2p, l2p = prev
        m1c, l1c, m2c, l2c = cur
        log_t = self._chain_block(m1p, l1p, m2p, m1c, l1c)
        log_t += self._chain_block(m2p, l2p, m1p, m2c, l2c)
        return log_t

    def _chain_block(
        self,
        m_prev: np.ndarray,
        l_prev: np.ndarray,
        partner_prev: np.ndarray,
        m_cur: np.ndarray,
        l_cur: np.ndarray,
    ) -> np.ndarray:
        """One chain's (P, C) contribution to the joint transition."""
        same = m_prev[:, None] == m_cur[None, :]
        log_stay = np.log1p(-self._p_change[m_prev])[:, None]
        log_change = (
            np.log(self._p_change[m_prev])[:, None]
            + np.log(
                self._change_trans[m_prev[:, None], partner_prev[:, None], m_cur[None, :]]
                + _TINY
            )
        )
        macro_term = np.where(same, log_stay, log_change)

        micro_end = self._micro_end[m_cur][None, :]
        same_loc = l_prev[:, None] == l_cur[None, :]
        cont = np.log(
            (1.0 - micro_end) * same_loc
            + micro_end * self._subloc_trans[m_cur[None, :], l_prev[:, None], l_cur[None, :]]
            + _TINY
        )
        reset = self._log_subloc_prior[m_cur, l_cur][None, :]
        loc_term = np.where(same, cont, reset)
        return macro_term + loc_term

    def _encode(
        self, s1: List[UserState], s2: List[UserState], i1: np.ndarray, i2: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        cm = self.constraint_model
        m1 = np.array([cm.macro_index.index(s1[i].macro) for i in i1], dtype=int)
        l1 = np.array([cm.subloc_index.index(s1[i].subloc) for i in i1], dtype=int)
        m2 = np.array([cm.macro_index.index(s2[i].macro) for i in i2], dtype=int)
        l2 = np.array([cm.subloc_index.index(s2[i].subloc) for i in i2], dtype=int)
        return m1, l1, m2, l2

    # -- decoding -----------------------------------------------------------------------

    def _prepare(self, seq: LabeledSequence):
        rids = tuple(seq.resident_ids[:2])
        if len(rids) < 2:
            raise ValueError("CoupledHdbn expects two residents (use SingleUserHdbn)")
        self.last_stats = DecodeStats()
        stats = self.last_stats
        per_step = []
        for t in range(len(seq)):
            s1, e1 = self._user_candidates(seq, rids[0], t)
            s2, e2 = self._user_candidates(seq, rids[1], t)
            i1, i2, scores = self._joint_candidates(seq, t, s1, s2, e1, e2, rids)
            enc = self._encode(s1, s2, i1, i2)
            per_step.append((s1, s2, i1, i2, scores, enc))
            stats.steps += 1
            stats.joint_states += len(i1)
        return rids, per_step

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Joint Viterbi macro labels per resident."""
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model
        stats = self.last_stats

        s1, s2, i1, i2, scores, enc = per_step[0]
        log_prior = (
            np.log(cm.macro_prior[enc[0]] + _TINY)
            + self._log_subloc_prior[enc[0], enc[1]]
            + np.log(cm.macro_prior[enc[2]] + _TINY)
            + self._log_subloc_prior[enc[2], enc[3]]
        )
        delta = log_prior + scores
        backs: List[np.ndarray] = [np.zeros(len(delta), dtype=int)]

        for t in range(1, len(per_step)):
            prev_enc = per_step[t - 1][5]
            s1, s2, i1, i2, scores, enc = per_step[t]
            log_t = self._transition_block(prev_enc, enc)
            stats.transition_entries += log_t.size
            total = delta[:, None] + log_t
            back = np.argmax(total, axis=0)
            delta = total[back, np.arange(total.shape[1])] + scores
            backs.append(back)

        idx = int(np.argmax(delta))
        path: List[int] = [idx]
        for t in range(len(per_step) - 1, 0, -1):
            path.append(int(backs[t][path[-1]]))
        path.reverse()

        out1: List[str] = []
        out2: List[str] = []
        for t, j in enumerate(path):
            s1, s2, i1, i2, _, _ = per_step[t]
            out1.append(s1[i1[j]].macro)
            out2.append(s2[i2[j]].macro)
        return {rids[0]: out1, rids[1]: out2}

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Per-resident posterior macro marginals ``(T, M)``."""
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model
        n_m = cm.n_macro

        def lse(arr: np.ndarray, axis: int) -> np.ndarray:
            m = arr.max(axis=axis, keepdims=True)
            m = np.where(np.isfinite(m), m, 0.0)
            return np.squeeze(m, axis=axis) + np.log(np.exp(arr - m).sum(axis=axis))

        # Forward.
        alphas: List[np.ndarray] = []
        s1, s2, i1, i2, scores, enc = per_step[0]
        alpha = (
            np.log(cm.macro_prior[enc[0]] + _TINY)
            + self._log_subloc_prior[enc[0], enc[1]]
            + np.log(cm.macro_prior[enc[2]] + _TINY)
            + self._log_subloc_prior[enc[2], enc[3]]
            + scores
        )
        alphas.append(alpha)
        for t in range(1, len(per_step)):
            prev_enc = per_step[t - 1][5]
            _, _, _, _, scores, enc = per_step[t]
            log_t = self._transition_block(prev_enc, enc)
            alpha = scores + lse(alphas[-1][:, None] + log_t, axis=0)
            alphas.append(alpha)

        # Backward.
        betas: List[Optional[np.ndarray]] = [None] * len(per_step)
        betas[-1] = np.zeros_like(alphas[-1])
        for t in range(len(per_step) - 2, -1, -1):
            enc = per_step[t][5]
            nxt_scores, nxt_enc = per_step[t + 1][4], per_step[t + 1][5]
            log_t = self._transition_block(enc, nxt_enc)
            betas[t] = lse(log_t + (nxt_scores + betas[t + 1])[None, :], axis=1)

        out = {rids[0]: np.zeros((len(per_step), n_m)), rids[1]: np.zeros((len(per_step), n_m))}
        for t in range(len(per_step)):
            log_gamma = alphas[t] + betas[t]
            log_gamma -= lse(log_gamma, axis=0)
            gamma = np.exp(log_gamma)
            enc = per_step[t][5]
            np.add.at(out[rids[0]][t], enc[0], gamma)
            np.add.at(out[rids[1]][t], enc[2], gamma)
        return out
