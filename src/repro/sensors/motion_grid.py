"""Area motion sensors with sub-location granularity (CASAS-style).

The WSU CASAS apartment is instrumented with a dense grid of downward-facing
motion detectors (M01-M26), each covering roughly one functional area.  The
paper maps them onto its own vocabulary: "we consider each motion sensor
firing means the sub-location is occupied that is covered by motion sensor
range" (§VII-C).  An :class:`AreaMotionSensor` therefore covers one
sub-region and fires when *someone* — never a named resident — is active
inside it.

This channel is deliberately separate from the room-level
:class:`~repro.sensors.pir.PirSensor` fleet: the CACE testbed has one PIR
per room (coarse), the CASAS testbed has per-area coverage (fine), and the
two corpora exercise the recognisers under exactly that difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_non_negative, check_probability


@dataclass
class AreaMotionSensor:
    """A ceiling motion detector covering one sub-region.

    Parameters
    ----------
    sensor_id:
        Unique identifier, e.g. ``"motion:SR4"``.
    sub_region:
        Sub-region id (``"SR1"`` .. ``"SR14"``) the sensor covers.
    detect_prob:
        Probability a moving occupant inside the area triggers the sensor in
        one polling tick.
    stationary_detect_prob:
        Probability a stationary occupant still triggers it.  Downward-facing
        area detectors catch hand and torso movement of seated subjects far
        more often than wall-mounted room PIRs do, hence the higher default.
    false_alarm_prob:
        Probability of firing with nobody in the area.
    refractory_s:
        Hardware hold-off between firings.
    """

    sensor_id: str
    sub_region: str
    detect_prob: float = 0.92
    stationary_detect_prob: float = 0.3
    false_alarm_prob: float = 0.001
    refractory_s: float = 1.0
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _last_fire: float = field(default=-np.inf, init=False, repr=False)

    def __post_init__(self) -> None:
        check_probability("detect_prob", self.detect_prob)
        check_probability("stationary_detect_prob", self.stationary_detect_prob)
        check_probability("false_alarm_prob", self.false_alarm_prob)
        check_non_negative("refractory_s", self.refractory_s)
        self._rng = ensure_rng(self.seed)

    def poll(self, t: float, occupants_moving: int, occupants_still: int = 0) -> Optional[bool]:
        """Poll at time *t* given the occupant counts inside the area."""
        if t - self._last_fire < self.refractory_s:
            return False
        fire = False
        if occupants_moving > 0:
            miss = (1.0 - self.detect_prob) ** occupants_moving
            fire = self._rng.random() > miss
        if not fire and occupants_still > 0:
            miss = (1.0 - self.stationary_detect_prob) ** occupants_still
            fire = self._rng.random() > miss
        if not fire and occupants_moving == 0 and occupants_still == 0:
            fire = self._rng.random() < self.false_alarm_prob
        if fire:
            self._last_fire = t
        return fire

    def reset(self) -> None:
        """Clear refractory state before a new simulation run."""
        self._last_fire = -np.inf


def sub_regions_covered(sensors: Sequence[AreaMotionSensor]) -> set:
    """The set of sub-regions observed by a sensor array."""
    return {s.sub_region for s in sensors}
