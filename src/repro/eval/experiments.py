"""One driver per table/figure of the paper's evaluation (§VII).

Every function returns a structured result whose ``render()`` prints the
corresponding paper artefact's rows.  Dataset sizes default to scaled-down
workloads so the full suite runs in minutes; pass larger parameters for
paper-scale runs.  EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.duration import duration_error
from repro.core.engine import CaceEngine
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.casas import SHARED_TASKS, generate_casas_dataset
from repro.datasets.trace import (
    ContextStep,
    Dataset,
    LabeledSequence,
    ResidentObservation,
    train_test_split,
)
from repro.eval.metrics import EvaluationReport, evaluate_predictions
from repro.micro.pipelines import MicroClassificationReport, MicroPipeline
from repro.mining.correlation_miner import CorrelationMiner, CorrelationRuleSet
from repro.mining.initial_rules import initial_rule_set
from repro.models import CoupledHmm, FactorialCrf, MacroHmm
from repro.util.rng import RandomState, ensure_rng

#: Feature dimensions produced by the neck tag (zeroed in the ablation).
_NECK_FEATURE_DIMS = (2, 3, 5)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _flatten_predictions(
    test: Dataset, predict_fn
) -> Tuple[List[str], List[str]]:
    """Pool (truth, predicted) labels over all sequences and residents."""
    truth: List[str] = []
    predicted: List[str] = []
    for seq in test.sequences:
        pred = predict_fn(seq)
        for rid in seq.resident_ids:
            truth.extend(seq.macro_labels(rid))
            predicted.extend(pred[rid])
    return truth, predicted


def evaluate_engine(
    engine: CaceEngine, test: Dataset, with_scores: bool = False
) -> EvaluationReport:
    """Pooled evaluation of an engine over a test dataset."""
    truth, predicted = _flatten_predictions(test, engine.predict)
    scores = None
    if with_scores:
        rows: List[np.ndarray] = []
        for seq in test.sequences:
            marginals = engine.posterior_marginals(seq)
            for rid in seq.resident_ids:
                rows.append(marginals[rid])
        scores = np.vstack(rows)
    return evaluate_predictions(truth, predicted, list(test.macro_vocab), scores)


def strip_gestural(dataset: Dataset) -> Dataset:
    """Ablation: remove the oral-gestural channel (Fig 8a, "w/o gestural")."""
    sequences = []
    for seq in dataset.sequences:
        steps = []
        for step in seq.steps:
            observations = {}
            for rid, obs in step.observations.items():
                features = list(obs.features)
                for d in _NECK_FEATURE_DIMS:
                    features[d] = 0.0
                observations[rid] = ResidentObservation(
                    posture=obs.posture,
                    gesture=None,
                    features=tuple(features),
                    subloc_candidates=obs.subloc_candidates,
                    position_estimate=obs.position_estimate,
                )
            steps.append(
                ContextStep(
                    step.t,
                    observations,
                    step.rooms_fired,
                    step.objects_fired,
                    step.sublocs_fired,
                )
            )
        sequences.append(
            LabeledSequence(seq.home_id, seq.resident_ids, seq.step_s, steps, seq.truths)
        )
    out = dataset.subset(sequences, "no-gestural")
    out.has_gestural = False
    out.gestural_vocab = ()
    return out


def strip_location(dataset: Dataset) -> Dataset:
    """Ablation: remove sub-location context (Fig 8a, "w/o sub-location")."""
    all_sublocs = tuple(dataset.subloc_vocab)
    sequences = []
    for seq in dataset.sequences:
        steps = []
        for step in seq.steps:
            observations = {
                rid: ResidentObservation(
                    posture=obs.posture,
                    gesture=obs.gesture,
                    features=obs.features,
                    subloc_candidates=all_sublocs,
                    position_estimate=None,
                )
                for rid, obs in step.observations.items()
            }
            steps.append(ContextStep(step.t, observations, frozenset(), frozenset()))
        sequences.append(
            LabeledSequence(seq.home_id, seq.resident_ids, seq.step_s, steps, seq.truths)
        )
    return dataset.subset(sequences, "no-subloc")


# ---------------------------------------------------------------------------
# §VII-E micro-level classification (text numbers)
# ---------------------------------------------------------------------------


@dataclass
class MicroLevelResult:
    """Measured vs paper micro-classification quality."""

    reports: Dict[str, MicroClassificationReport]
    paper: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: {"postural": (0.986, 0.006), "gestural": (0.953, 0.018)}
    )

    def render(self) -> str:
        lines = ["Micro-level activity classification (paper §VII-E)"]
        for kind, report in self.reports.items():
            p_acc, p_fp = self.paper[kind]
            lines.append(
                f"  {kind:>9s}: measured acc {report.accuracy:.1%} / FP "
                f"{report.false_positive_rate:.1%}   (paper {p_acc:.1%} / {p_fp:.1%})"
            )
        return "\n".join(lines)


def micro_level_results(
    seconds_per_class: float = 36.0, seed: RandomState = 7
) -> MicroLevelResult:
    """Train/evaluate both micro pipelines on rendered IMU data."""
    rng = ensure_rng(seed)
    reports = {}
    for kind in ("postural", "gestural"):
        pipeline = MicroPipeline(kind=kind, seed=rng.integers(0, 2**31), n_trees=15)
        reports[kind] = pipeline.train_and_evaluate(seconds_per_class=seconds_per_class)
    return MicroLevelResult(reports=reports)


# ---------------------------------------------------------------------------
# Table IV — mined rules
# ---------------------------------------------------------------------------


@dataclass
class Table4Result:
    """Mined rule set with the paper's exemplar rules checked."""

    rule_set: CorrelationRuleSet
    n_rules: int
    exemplars: Dict[str, bool]

    def render(self) -> str:
        lines = [f"Table IV — mined rules (total {self.n_rules}; paper: 58 unified rules)"]
        for name, found in self.exemplars.items():
            lines.append(f"  [{'x' if found else ' '}] {name}")
        lines.append("  top mined rules:")
        for text in self.rule_set.describe().splitlines()[:10]:
            lines.append(f"    {text}")
        return "\n".join(lines)


def table4_rules(
    n_homes: int = 5,
    sessions_per_home: int = 6,
    duration_s: float = 2700.0,
    seed: RandomState = 7,
) -> Table4Result:
    """Mine rules on a CACE-style corpus and check Table IV's exemplars."""
    dataset = generate_cace_dataset(
        n_homes=n_homes, sessions_per_home=sessions_per_home, duration_s=duration_s, seed=seed
    )
    rule_set = CorrelationMiner().mine(dataset.sequences)

    def _has_forcing(macro: str, antecedent_values: Sequence[str]) -> bool:
        for rule in rule_set.forcing_rules:
            if rule.consequent.attr != "macro" or rule.consequent.value != macro:
                continue
            values = {item.value for item in rule.antecedent}
            if set(antecedent_values) <= values:
                return True
        return False

    def _has_exclusion(value: str) -> bool:
        return any(
            excl.a.value == value and excl.b.value == value for excl in rule_set.exclusions
        )

    exemplars = {
        # A mined rule may be *stronger* than the paper's exemplar (e.g.
        # cycling alone forces exercising, no SR1 needed) — any of these
        # antecedent variants rediscovers the same behavioural fact.
        "(cycling|sitting) & SR1 => exercising": (
            _has_forcing("exercising", ["cycling", "SR1"])
            or _has_forcing("exercising", ["SR1"])
            or _has_forcing("exercising", ["cycling"])
        ),
        "(sitting|lying) & SR5 => sleeping": (
            _has_forcing("sleeping", ["lying", "SR5"]) or _has_forcing("sleeping", ["SR5"])
        ),
        "U1:SR9 => not U2:SR9 (bathroom exclusion)": _has_exclusion("SR9"),
        "U1:SR4 & U2:SR4 => dining together": any(
            r.consequent.attr == "macro"
            and r.consequent.value == "dining"
            and {i.value for i in r.antecedent} == {"SR4"}
            and len({i.slot for i in r.antecedent}) == 2
            for r in rule_set.forcing_rules
        ),
    }
    return Table4Result(rule_set=rule_set, n_rules=rule_set.n_rules, exemplars=exemplars)


# ---------------------------------------------------------------------------
# Table V + Fig 11 — pruning strategies: duration error, accuracy, overhead
# ---------------------------------------------------------------------------


@dataclass
class StrategyResult:
    """One strategy's row across Table V and Fig 11."""

    strategy: str
    accuracy: float
    duration_error: float
    build_seconds: float
    decode_seconds: float
    #: Mean joint trellis width per step (NaN for non-coupled strategies).
    mean_joint_states: float = float("nan")
    #: Total joint transition-matrix entries evaluated while decoding —
    #: the state-space-size metric behind the paper's 16x claim.
    transition_entries: float = float("nan")

    @property
    def overhead_seconds(self) -> float:
        """Build + decode: the time to produce the model's labelling."""
        return self.build_seconds + self.decode_seconds


@dataclass
class PruningComparison:
    """Results for all four strategies (Table V + Fig 11a/11b)."""

    results: Dict[str, StrategyResult]
    paper_accuracy: Dict[str, float] = field(
        default_factory=lambda: {"nh": 0.762, "ncr": 0.73, "ncs": 0.98, "c2": 0.95}
    )
    paper_duration_error: Dict[str, float] = field(
        default_factory=lambda: {"nh": 0.169, "ncr": 0.206, "ncs": 0.0772, "c2": 0.081}
    )
    paper_overhead: Dict[str, float] = field(
        default_factory=lambda: {"nh": 4.95, "ncr": 1.5, "ncs": 15.96, "c2": 0.96}
    )

    @property
    def speedup_ncs_over_c2(self) -> float:
        """The headline ratio (paper: ~16x); NaN unless both strategies ran."""
        if "ncs" not in self.results or "c2" not in self.results:
            return float("nan")
        c2 = self.results["c2"].overhead_seconds
        return self.results["ncs"].overhead_seconds / max(c2, 1e-9)

    @property
    def state_space_ratio_ncs_over_c2(self) -> float:
        """Joint transition-entry ratio — the mechanism behind the 16x."""
        if "ncs" not in self.results or "c2" not in self.results:
            return float("nan")
        c2 = self.results["c2"].transition_entries
        ncs = self.results["ncs"].transition_entries
        if not (np.isfinite(c2) and np.isfinite(ncs)):
            return float("nan")
        return ncs / max(c2, 1e-9)

    def render(self) -> str:
        lines = [
            "Table V + Fig 11 — pruning strategies",
            f"{'strategy':>8s} {'acc':>7s} {'paper':>7s} {'dur.err':>8s} "
            f"{'paper':>7s} {'overhead':>9s} {'paper':>7s}",
        ]
        for name in ("nh", "ncr", "ncs", "c2"):
            if name not in self.results:
                continue
            r = self.results[name]
            lines.append(
                f"{name.upper():>8s} {r.accuracy * 100:6.1f}% {self.paper_accuracy[name] * 100:6.1f}% "
                f"{r.duration_error * 100:7.2f}% {self.paper_duration_error[name] * 100:6.2f}% "
                f"{r.overhead_seconds:8.2f}s {self.paper_overhead[name]:6.2f}s"
            )
        if np.isfinite(self.speedup_ncs_over_c2):
            lines.append(
                f"NCS/C2 overhead ratio: {self.speedup_ncs_over_c2:.1f}x (paper: ~16x)"
            )
        if np.isfinite(self.state_space_ratio_ncs_over_c2):
            lines.append(
                "NCS/C2 joint-trellis size ratio: "
                f"{self.state_space_ratio_ncs_over_c2:.1f}x (the paper's 16x is a "
                "state-space reduction; wall-clock ratios depend on how much of "
                "the runtime the trellis dominates on the host)"
            )
        return "\n".join(lines)


def fig11_pruning_strategies(
    n_homes: int = 4,
    sessions_per_home: int = 5,
    duration_s: float = 2700.0,
    seed: RandomState = 7,
    strategies: Sequence[str] = ("nh", "ncr", "ncs", "c2"),
) -> PruningComparison:
    """Run every pruning strategy; also provides Table V's duration errors."""
    rng = ensure_rng(seed)
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))

    results: Dict[str, StrategyResult] = {}
    for strategy in strategies:
        engine = CaceEngine(strategy=strategy, seed=rng.integers(0, 2**31))
        engine.fit(train)

        truth: List[str] = []
        predicted: List[str] = []
        errors: List[float] = []
        joint_states = transition_entries = steps = 0.0
        for seq in test.sequences:
            pred = engine.predict(seq)
            stats = getattr(engine.model_, "last_stats", None)
            if stats is not None:
                joint_states += stats.joint_states
                transition_entries += stats.transition_entries
                steps += stats.steps
            for rid in seq.resident_ids:
                labels = seq.macro_labels(rid)
                truth.extend(labels)
                predicted.extend(pred[rid])
                errors.append(duration_error(labels, pred[rid], seq.step_s))
        report = evaluate_predictions(truth, predicted, list(test.macro_vocab))

        results[strategy] = StrategyResult(
            strategy=strategy,
            accuracy=report.accuracy,
            duration_error=float(np.mean(errors)) if errors else 0.0,
            build_seconds=engine.build_seconds,
            decode_seconds=engine.decode_seconds,
            mean_joint_states=joint_states / steps if steps else float("nan"),
            transition_entries=transition_entries if steps else float("nan"),
        )
    return PruningComparison(results=results)


def table5_duration_error(**kwargs) -> PruningComparison:
    """Table V is the duration-error column of the strategy comparison."""
    return fig11_pruning_strategies(**kwargs)


# ---------------------------------------------------------------------------
# Fig 8(a) — context ablation per home
# ---------------------------------------------------------------------------


@dataclass
class ContextAblationResult:
    """Per-home accuracies for the three context configurations."""

    per_home: Dict[str, Dict[str, float]]  # home -> config -> accuracy
    overall: Dict[str, float]
    paper: Dict[str, float] = field(
        default_factory=lambda: {
            "overall": 0.951,
            "without_gestural": 0.897,
            "without_sublocation": 0.805,
        }
    )

    def render(self) -> str:
        lines = [
            "Fig 8(a) — context ablation",
            f"{'home':>8s} {'overall':>9s} {'w/o gest':>9s} {'w/o subloc':>11s}",
        ]
        for home in sorted(self.per_home):
            row = self.per_home[home]
            lines.append(
                f"{home:>8s} {row['overall'] * 100:8.1f}% "
                f"{row['without_gestural'] * 100:8.1f}% "
                f"{row['without_sublocation'] * 100:10.1f}%"
            )
        lines.append(
            f"{'ALL':>8s} {self.overall['overall'] * 100:8.1f}% "
            f"{self.overall['without_gestural'] * 100:8.1f}% "
            f"{self.overall['without_sublocation'] * 100:10.1f}%"
        )
        lines.append(
            f"paper:   overall {self.paper['overall']:.1%}, w/o gestural "
            f"{self.paper['without_gestural']:.1%}, w/o sub-location "
            f"{self.paper['without_sublocation']:.1%}"
        )
        return "\n".join(lines)


def fig8a_context_ablation(
    n_homes: int = 5,
    sessions_per_home: int = 4,
    duration_s: float = 2400.0,
    seed: RandomState = 7,
) -> ContextAblationResult:
    """Accuracy with full context, without gestural, without sub-location."""
    rng = ensure_rng(seed)
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))

    configs = {
        "overall": (train, test),
        "without_gestural": (strip_gestural(train), strip_gestural(test)),
        "without_sublocation": (strip_location(train), strip_location(test)),
    }
    per_home: Dict[str, Dict[str, float]] = {}
    overall: Dict[str, float] = {}
    for config, (cfg_train, cfg_test) in configs.items():
        engine = CaceEngine(strategy="c2", seed=rng.integers(0, 2**31))
        engine.fit(cfg_train)
        all_truth: List[str] = []
        all_pred: List[str] = []
        for seq in cfg_test.sequences:
            pred = engine.predict(seq)
            truth_home: List[str] = []
            pred_home: List[str] = []
            for rid in seq.resident_ids:
                truth_home.extend(seq.macro_labels(rid))
                pred_home.extend(pred[rid])
            home_acc = float(
                np.mean(np.array(truth_home, dtype=object) == np.array(pred_home, dtype=object))
            )
            bucket = per_home.setdefault(seq.home_id, {})
            bucket[config] = (
                home_acc if config not in bucket else 0.5 * (bucket[config] + home_acc)
            )
            all_truth.extend(truth_home)
            all_pred.extend(pred_home)
        overall[config] = float(
            np.mean(np.array(all_truth, dtype=object) == np.array(all_pred, dtype=object))
        )
    return ContextAblationResult(per_home=per_home, overall=overall)


# ---------------------------------------------------------------------------
# Fig 8(b) — precision & recall versus FP rate
# ---------------------------------------------------------------------------


@dataclass
class CostCurveResult:
    """Operating points as the decision cost (threshold) sweeps."""

    points: List[Tuple[float, float, float]]  # (fp_rate, precision, recall)

    def render(self) -> str:
        lines = ["Fig 8(b) — precision & recall vs FP rate", "   FP%   Prec%  Recall%"]
        for fp, prec, rec in self.points:
            lines.append(f"{fp * 100:6.2f} {prec * 100:7.1f} {rec * 100:7.1f}")
        return "\n".join(lines)


def fig8b_cost_curves(
    n_homes: int = 3,
    sessions_per_home: int = 4,
    duration_s: float = 2400.0,
    seed: RandomState = 7,
    thresholds: Sequence[float] = (0.0, 0.3, 0.5, 0.7, 0.85, 0.95),
) -> CostCurveResult:
    """Sweep the posterior decision threshold (the paper adjusts the
    classifier's cost function); abstentions count against recall."""
    rng = ensure_rng(seed)
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))
    engine = CaceEngine(strategy="c2", seed=rng.integers(0, 2**31))
    engine.fit(train)

    labels = list(test.macro_vocab)
    truth: List[str] = []
    scores: List[np.ndarray] = []
    for seq in test.sequences:
        marginals = engine.posterior_marginals(seq)
        for rid in seq.resident_ids:
            truth.extend(seq.macro_labels(rid))
            scores.append(marginals[rid])
    score_mat = np.vstack(scores)
    truth_arr = np.array(truth, dtype=object)

    points: List[Tuple[float, float, float]] = []
    for tau in thresholds:
        arg = np.argmax(score_mat, axis=1)
        conf = score_mat[np.arange(len(arg)), arg]
        predicted = np.array([labels[a] for a in arg], dtype=object)
        decided = conf >= tau
        tp = float(np.sum(decided & (predicted == truth_arr)))
        fp = float(np.sum(decided & (predicted != truth_arr)))
        precision = tp / max(tp + fp, 1e-9)
        recall = tp / max(len(truth_arr), 1e-9)
        # Macro-averaged one-vs-rest FP rate over decided instances.
        fp_rates = []
        for label in labels:
            negatives = truth_arr != label
            claimed = decided & (predicted == label)
            if negatives.any():
                fp_rates.append(float(np.sum(claimed & negatives)) / float(np.sum(negatives)))
        points.append((float(np.mean(fp_rates)), precision, recall))
    return CostCurveResult(points=points)


# ---------------------------------------------------------------------------
# Fig 9 — CASAS per-class results
# ---------------------------------------------------------------------------


@dataclass
class CasasResult:
    """Per-class CASAS evaluation (the paper's 15-row table)."""

    report: EvaluationReport
    shared_accuracy: float
    n_rules: int
    paper_overall: Dict[str, float] = field(
        default_factory=lambda: {
            "fp_rate": 0.014,
            "precision": 0.965,
            "recall": 0.945,
            "accuracy": 0.945,
            "shared_accuracy": 0.993,
            "n_rules": 47,
        }
    )

    def render(self) -> str:
        lines = ["Fig 9 — CASAS-style dataset, per-class metrics"]
        lines.append(self.report.render())
        lines.append(
            f"shared-activity accuracy: {self.shared_accuracy:.1%} "
            f"(paper {self.paper_overall['shared_accuracy']:.1%}); "
            f"rules after merge: {self.n_rules} (paper {self.paper_overall['n_rules']})"
        )
        return "\n".join(lines)


def fig9_casas_per_class(
    n_pairs: int = 8,
    sessions_per_pair: int = 2,
    duration_scale: float = 0.35,
    seed: RandomState = 7,
) -> CasasResult:
    """Coupled HDBN on the CASAS-style corpus (no gestural channel)."""
    rng = ensure_rng(seed)
    dataset = generate_casas_dataset(
        n_pairs=n_pairs,
        sessions_per_pair=sessions_per_pair,
        duration_scale=duration_scale,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.5, seed=rng.integers(0, 2**31))
    engine = CaceEngine(strategy="c2", seed=rng.integers(0, 2**31))
    engine.fit(train)

    truth, predicted = _flatten_predictions(test, engine.predict)
    report = evaluate_predictions(truth, predicted, list(test.macro_vocab))

    truth_arr = np.array(truth, dtype=object)
    pred_arr = np.array(predicted, dtype=object)
    shared_mask = np.isin(truth_arr, list(SHARED_TASKS))
    shared_accuracy = (
        float(np.mean(pred_arr[shared_mask] == truth_arr[shared_mask]))
        if shared_mask.any()
        else float("nan")
    )
    n_rules = engine.rule_set_.n_rules if engine.rule_set_ is not None else 0
    return CasasResult(report=report, shared_accuracy=shared_accuracy, n_rules=n_rules)


# ---------------------------------------------------------------------------
# Fig 10 — model comparison on the CACE dataset
# ---------------------------------------------------------------------------


@dataclass
class ModelComparisonResult:
    """Per-activity accuracy of the four models + CHDBN per-class metrics."""

    per_activity: Dict[str, Dict[str, float]]  # model -> activity -> accuracy
    overall: Dict[str, float]
    chdbn_report: EvaluationReport
    paper_overall: Dict[str, float] = field(
        default_factory=lambda: {"hmm": 0.75, "fcrf": 0.87, "chmm": 0.90, "chdbn": 0.951}
    )

    def render(self) -> str:
        models = ["hmm", "fcrf", "chmm", "chdbn"]
        activities = sorted(next(iter(self.per_activity.values())).keys())
        lines = ["Fig 10(a) — per-activity accuracy", "activity".rjust(18) + "".join(m.upper().rjust(8) for m in models)]
        for activity in activities:
            row = activity.rjust(18)
            for model in models:
                row += f"{self.per_activity[model].get(activity, float('nan')) * 100:7.1f}%"
            lines.append(row)
        overall_row = "OVERALL".rjust(18)
        for model in models:
            overall_row += f"{self.overall[model] * 100:7.1f}%"
        lines.append(overall_row)
        paper_row = "paper".rjust(18)
        for model in models:
            paper_row += f"{self.paper_overall[model] * 100:7.1f}%"
        lines.append(paper_row)
        lines.append("")
        lines.append("Fig 10(b) — CHDBN per-class metrics")
        lines.append(self.chdbn_report.render())
        return "\n".join(lines)


def fig10_model_comparison(
    n_homes: int = 4,
    sessions_per_home: int = 5,
    duration_s: float = 2700.0,
    seed: RandomState = 7,
) -> ModelComparisonResult:
    """HMM [9] vs FCRF [5] vs CHMM [4] vs CHDBN (CACE)."""
    rng = ensure_rng(seed)
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))

    engines = {
        "hmm": MacroHmm(),
        "fcrf": FactorialCrf(seed=rng.integers(0, 2**31)),
        "chmm": CoupledHmm(),
    }
    predict_fns = {}
    for name, model in engines.items():
        model.fit(train)
        predict_fns[name] = model.predict
    cace = CaceEngine(strategy="c2", seed=rng.integers(0, 2**31))
    cace.fit(train)
    predict_fns["chdbn"] = cace.predict

    per_activity: Dict[str, Dict[str, float]] = {}
    overall: Dict[str, float] = {}
    chdbn_report: Optional[EvaluationReport] = None
    for name, fn in predict_fns.items():
        truth, predicted = _flatten_predictions(test, fn)
        report = evaluate_predictions(truth, predicted, list(test.macro_vocab))
        per_activity[name] = {
            label: m.recall for label, m in report.per_class.items()
        }
        overall[name] = report.accuracy
        if name == "chdbn":
            chdbn_report = report
    return ModelComparisonResult(
        per_activity=per_activity, overall=overall, chdbn_report=chdbn_report
    )


# ---------------------------------------------------------------------------
# Fig 12 — incremental learning with/without initial rules
# ---------------------------------------------------------------------------


@dataclass
class IncrementalResult:
    """Accuracy/overhead/trellis-size versus training-sample fraction."""

    #: (fraction, config, accuracy, overhead_s, mean_joint_states)
    rows: List[Tuple[float, str, float, float, float]]

    def render(self) -> str:
        lines = [
            "Fig 12 — incremental performance vs sample size",
            f"{'frac':>6s} {'config':>19s} {'acc':>7s} {'overhead':>9s} {'joint/step':>11s}",
        ]
        for frac, config, acc, overhead, joint in self.rows:
            lines.append(
                f"{frac * 100:5.0f}% {config:>19s} {acc * 100:6.1f}% "
                f"{overhead:8.2f}s {joint:10.0f}"
            )
        return "\n".join(lines)


def fig12_incremental(
    n_homes: int = 3,
    sessions_per_home: int = 5,
    duration_s: float = 2400.0,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seed: RandomState = 7,
) -> IncrementalResult:
    """Sweep the training fraction, with and without seeded initial rules."""
    rng = ensure_rng(seed)
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))

    rows: List[Tuple[float, str, float, float, float]] = []
    for fraction in fractions:
        n_seqs = max(2, int(round(fraction * len(train.sequences))))
        sub_train = train.subset(train.sequences[:n_seqs], f"frac{fraction}")
        for config, seed_rules in (
            ("no_initial_rules", None),
            ("with_initial_rules", initial_rule_set()),
        ):
            engine = CaceEngine(
                strategy="c2",
                initial_rules=seed_rules,
                seed=rng.integers(0, 2**31),
            )
            engine.fit(sub_train)
            truth: List[str] = []
            predicted: List[str] = []
            joint = steps = 0.0
            for seq in test.sequences:
                pred = engine.predict(seq)
                stats = getattr(engine.model_, "last_stats", None)
                if stats is not None:
                    joint += stats.joint_states
                    steps += stats.steps
                for rid in seq.resident_ids:
                    truth.extend(seq.macro_labels(rid))
                    predicted.extend(pred[rid])
            acc = float(
                np.mean(np.array(truth, dtype=object) == np.array(predicted, dtype=object))
            )
            rows.append(
                (
                    fraction,
                    config,
                    acc,
                    engine.build_seconds + engine.decode_seconds,
                    joint / steps if steps else float("nan"),
                )
            )
    return IncrementalResult(rows=rows)


# ---------------------------------------------------------------------------
# Decode hot-path throughput (the overhaul's acceptance benchmark)
# ---------------------------------------------------------------------------


@dataclass
class PathResult:
    """One benchmark path: seed-reference vs optimised timings."""

    name: str
    steps: int
    seconds_reference: float
    seconds_optimised: float
    labels_identical: bool

    @property
    def reference_steps_per_s(self) -> float:
        """Seed-implementation throughput."""
        return self.steps / max(self.seconds_reference, 1e-12)

    @property
    def optimised_steps_per_s(self) -> float:
        """Optimised-implementation throughput."""
        return self.steps / max(self.seconds_optimised, 1e-12)

    @property
    def speedup(self) -> float:
        """Optimised vs seed reference."""
        return self.seconds_reference / max(self.seconds_optimised, 1e-12)

    def to_dict(self) -> Dict:
        """Machine-readable form (BENCH_decode.json)."""
        return {
            "name": self.name,
            "steps": self.steps,
            "seconds_reference": self.seconds_reference,
            "seconds_optimised": self.seconds_optimised,
            "speedup": self.speedup,
            "labels_identical": self.labels_identical,
        }


@dataclass
class DecodeHotpathResult:
    """Steps/sec of the optimised decode hot path vs the seed reference."""

    steps: int
    seconds_reference: float
    seconds_optimised: float
    seconds_batched: float
    workers: int
    labels_identical: bool
    #: 3-resident N-chain decode path (None when not benchmarked).
    nchain: Optional[PathResult] = None
    #: Fixed-lag smoother streaming path (None when not benchmarked).
    smoother: Optional[PathResult] = None
    #: ``predict_dataset`` wall-clock per worker count.
    fanout: Dict[int, float] = field(default_factory=dict)

    @property
    def reference_steps_per_s(self) -> float:
        """Seed-implementation throughput."""
        return self.steps / max(self.seconds_reference, 1e-12)

    @property
    def optimised_steps_per_s(self) -> float:
        """Optimised-implementation throughput (serial)."""
        return self.steps / max(self.seconds_optimised, 1e-12)

    @property
    def batched_steps_per_s(self) -> float:
        """Optimised throughput through ``predict_dataset(workers=N)``."""
        return self.steps / max(self.seconds_batched, 1e-12)

    @property
    def speedup(self) -> float:
        """Serial optimised vs seed reference."""
        return self.seconds_reference / max(self.seconds_optimised, 1e-12)

    def to_dict(self) -> Dict:
        """Machine-readable form for ``BENCH_decode.json``."""
        out = {
            "c2": {
                "name": "c2",
                "steps": self.steps,
                "seconds_reference": self.seconds_reference,
                "seconds_optimised": self.seconds_optimised,
                "speedup": self.speedup,
                "labels_identical": self.labels_identical,
            },
            "fanout": {
                str(w): {
                    "seconds": secs,
                    "steps_per_s": self.steps / max(secs, 1e-12),
                }
                for w, secs in sorted(self.fanout.items())
            },
        }
        if self.nchain is not None:
            out["nchain"] = self.nchain.to_dict()
        if self.smoother is not None:
            out["smoother"] = self.smoother.to_dict()
        return out

    def render(self) -> str:
        """Benchmark table (before vs after, plus the batched paths)."""
        rows = [
            ("c2 reference (seed)", self.seconds_reference, self.reference_steps_per_s),
            ("c2 optimised", self.seconds_optimised, self.optimised_steps_per_s),
        ]
        for w, secs in sorted(self.fanout.items()):
            rows.append(
                (f"c2 optimised x{w} workers", secs, self.steps / max(secs, 1e-12))
            )
        for path in (self.nchain, self.smoother):
            if path is None:
                continue
            rows.append(
                (
                    f"{path.name} reference (seed)",
                    path.seconds_reference,
                    path.reference_steps_per_s,
                )
            )
            rows.append(
                (
                    f"{path.name} optimised",
                    path.seconds_optimised,
                    path.optimised_steps_per_s,
                )
            )
        lines = ["decode hot path (seeded CACE corpus)"]
        lines.append(f"{'variant':<30}{'seconds':>10}{'steps/s':>12}")
        for name, secs, sps in rows:
            lines.append(f"{name:<30}{secs:>10.3f}{sps:>12.1f}")
        lines.append(
            f"c2 speedup: {self.speedup:.2f}x | labels identical: {self.labels_identical}"
        )
        for path in (self.nchain, self.smoother):
            if path is not None:
                lines.append(
                    f"{path.name} speedup: {path.speedup:.2f}x | "
                    f"labels identical: {path.labels_identical}"
                )
        return "\n".join(lines)


def _stream_labels_many(model, seq, lag: int) -> Dict[str, List[str]]:
    """Per-resident labels from streaming *seq* through ``push_many``."""
    from repro.core.smoother import OnlineSmoother

    sm = OnlineSmoother(model, lag=lag)
    sm.start(seq)
    per_step = [x for x in sm.push_many(range(len(seq))) if x is not None]
    per_step.extend(sm.flush())
    return {rid: [labels[rid] for labels in per_step] for rid in sm.residents}


def decode_hotpath_benchmark(
    n_homes: int = 2,
    sessions_per_home: int = 4,
    duration_s: float = 2400.0,
    seed: RandomState = 7,
    workers: int = 2,
    fanout_workers: Sequence[int] = (2, 4),
    include_nchain: bool = True,
    nchain_duration_s: float = 1200.0,
    include_smoother: bool = True,
    smoother_lag: int = 4,
) -> DecodeHotpathResult:
    """Time c2 decoding, seed hot path vs optimised, on one fitted model.

    Both recognisers are constructed with identical parameters and seeds
    (deterministic-annealing GMMs included); only the per-step machinery
    differs.  Emission *scores* can differ from the seed in the last ulp
    (the object channel's baseline+delta summation rounds differently
    from the seed's sequential per-object sum), so label identity is an
    empirical property at fixed seeds — exactly what
    ``labels_identical`` asserts — rather than a floating-point
    guarantee under score ties.

    Measures *steady-state* throughput: each variant decodes the test set
    once untimed first, so the optimised path's memoised candidate lists
    and rule matrices are warm — the regime a long-running recogniser
    lives in (those caches key on the small fused-candidate vocabulary
    and fill within the first session).
    """
    import time

    from repro.core.chdbn import CoupledHdbn
    from repro.core.reference import ReferenceCoupledHdbn
    from repro.mining.constraint_miner import ConstraintMiner

    rng = ensure_rng(seed)
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))
    rule_set = CorrelationMiner().mine(train.sequences)
    constraint_model = ConstraintMiner().fit(
        train.sequences,
        train.macro_vocab,
        train.postural_vocab,
        train.gestural_vocab,
        train.subloc_vocab,
    )
    model_seed = int(rng.integers(0, 2**31))
    fast = CoupledHdbn(
        constraint_model=constraint_model, rule_set=rule_set, seed=model_seed
    ).fit(train)
    reference = ReferenceCoupledHdbn(
        constraint_model=constraint_model, rule_set=rule_set, seed=model_seed
    ).fit(train)

    steps = sum(len(seq) for seq in test.sequences)

    fast_labels = [fast.decode(seq) for seq in test.sequences]  # warm-up
    t0 = time.perf_counter()
    fast_labels_timed = [fast.decode(seq) for seq in test.sequences]
    seconds_optimised = time.perf_counter() - t0

    ref_labels = [reference.decode(seq) for seq in test.sequences]  # warm-up
    t0 = time.perf_counter()
    reference_labels_timed = [reference.decode(seq) for seq in test.sequences]
    seconds_reference = time.perf_counter() - t0
    assert fast_labels_timed == fast_labels
    assert reference_labels_timed == ref_labels

    engine = CaceEngine(strategy="c2", seed=model_seed)
    engine.model_ = fast
    fanout: Dict[int, float] = {}
    try:
        for w in dict.fromkeys(tuple(fanout_workers) + (workers,)):
            engine.predict_dataset(test, workers=w)  # warm-up (pool spawn + model ship)
            t0 = time.perf_counter()
            engine.predict_dataset(test, workers=w)
            fanout[w] = time.perf_counter() - t0
    finally:
        engine.close()
    seconds_batched = fanout[workers]

    smoother_result: Optional[PathResult] = None
    if include_smoother:
        from repro.core.smoother import OnlineSmoother

        # Warm-up, then time: fast path streams through push_many (bulk
        # kernel builds), reference replays push-by-push on the seed model.
        _stream_labels_many(fast, test.sequences[0], smoother_lag)
        t0 = time.perf_counter()
        sm_fast = [
            _stream_labels_many(fast, seq, smoother_lag) for seq in test.sequences
        ]
        sm_fast_seconds = time.perf_counter() - t0

        OnlineSmoother(reference, lag=smoother_lag).run(test.sequences[0])
        t0 = time.perf_counter()
        sm_ref = [
            OnlineSmoother(reference, lag=smoother_lag).run(seq)
            for seq in test.sequences
        ]
        sm_ref_seconds = time.perf_counter() - t0
        smoother_result = PathResult(
            name="smoother",
            steps=steps,
            seconds_reference=sm_ref_seconds,
            seconds_optimised=sm_fast_seconds,
            labels_identical=sm_fast == sm_ref,
        )

    nchain_result: Optional[PathResult] = None
    if include_nchain:
        from repro.core.loosely_coupled import NChainHdbn
        from repro.core.reference import ReferenceNChainHdbn

        nc_dataset = generate_cace_dataset(
            n_homes=n_homes,
            sessions_per_home=sessions_per_home,
            duration_s=nchain_duration_s,
            residents_per_home=3,
            seed=rng.integers(0, 2**31),
        )
        nc_train, nc_test = train_test_split(
            nc_dataset, 0.7, seed=rng.integers(0, 2**31)
        )
        nc_rules = CorrelationMiner().mine(nc_train.sequences)
        nc_constraints = ConstraintMiner().fit(
            nc_train.sequences,
            nc_train.macro_vocab,
            nc_train.postural_vocab,
            nc_train.gestural_vocab,
            nc_train.subloc_vocab,
        )
        nc_seed = int(rng.integers(0, 2**31))
        nc_fast = NChainHdbn(
            constraint_model=nc_constraints, rule_set=nc_rules, seed=nc_seed
        ).fit(nc_train)
        nc_reference = ReferenceNChainHdbn(
            constraint_model=nc_constraints, rule_set=nc_rules, seed=nc_seed
        ).fit(nc_train)

        nc_fast_labels = [nc_fast.decode(seq) for seq in nc_test.sequences]  # warm-up
        t0 = time.perf_counter()
        nc_fast_timed = [nc_fast.decode(seq) for seq in nc_test.sequences]
        nc_fast_seconds = time.perf_counter() - t0

        nc_ref_labels = [nc_reference.decode(seq) for seq in nc_test.sequences]
        t0 = time.perf_counter()
        nc_ref_timed = [nc_reference.decode(seq) for seq in nc_test.sequences]
        nc_ref_seconds = time.perf_counter() - t0
        assert nc_fast_timed == nc_fast_labels
        assert nc_ref_timed == nc_ref_labels
        nchain_result = PathResult(
            name="nchain",
            steps=sum(len(seq) for seq in nc_test.sequences),
            seconds_reference=nc_ref_seconds,
            seconds_optimised=nc_fast_seconds,
            labels_identical=nc_fast_labels == nc_ref_labels,
        )

    return DecodeHotpathResult(
        steps=steps,
        seconds_reference=seconds_reference,
        seconds_optimised=seconds_optimised,
        seconds_batched=seconds_batched,
        workers=workers,
        labels_identical=fast_labels == ref_labels,
        nchain=nchain_result,
        smoother=smoother_result,
        fanout=fanout,
    )
