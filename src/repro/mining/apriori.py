"""Apriori frequent-itemset mining and rule generation.

Implements the classic levelwise Apriori algorithm (paper §V-A) with a
numpy-vectorised counting core: transactions become a boolean incidence
matrix, pair supports come from one matrix product, and larger itemsets are
counted by masking the incidence columns of their prefix.  The paper's
operating point — ``minSup = 4%``, ``minConf = 99%`` — is the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.mining.context_rules import Item
from repro.mining.rules import AssociationRule
from repro.util.validation import check_positive, check_probability


@dataclass
class FrequentItemsets:
    """Mining result: itemset -> support (fraction of transactions)."""

    supports: Dict[FrozenSet[Item], float]
    n_transactions: int

    def support(self, itemset: FrozenSet[Item]) -> float:
        """Support of *itemset* (0.0 when not frequent)."""
        return self.supports.get(itemset, 0.0)

    def of_size(self, k: int) -> List[FrozenSet[Item]]:
        """All frequent itemsets with exactly *k* elements."""
        return [s for s in self.supports if len(s) == k]


@dataclass
class Apriori:
    """Levelwise frequent-itemset miner.

    Parameters
    ----------
    min_support:
        Minimum fraction of transactions containing the itemset (paper: 4%).
    min_confidence:
        Minimum rule confidence (paper: 99%).
    max_itemset_size:
        Lattice depth cap; 3 supports the paper's rule shapes
        (two antecedent elements plus one consequent).
    """

    min_support: float = 0.04
    min_confidence: float = 0.99
    max_itemset_size: int = 3
    itemsets_: FrequentItemsets = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        check_probability("min_support", self.min_support)
        check_probability("min_confidence", self.min_confidence)
        check_positive("max_itemset_size", self.max_itemset_size)

    # -- frequent itemsets ------------------------------------------------------

    def mine_itemsets(self, transactions: Sequence[FrozenSet[Item]]) -> FrequentItemsets:
        """Find all frequent itemsets up to :attr:`max_itemset_size`."""
        n = len(transactions)
        if n == 0:
            raise ValueError("cannot mine an empty transaction list")

        # Build the item universe and boolean incidence matrix.
        universe: List[Item] = sorted({item for t in transactions for item in t})
        index = {item: i for i, item in enumerate(universe)}
        incidence = np.zeros((n, len(universe)), dtype=bool)
        for row, transaction in enumerate(transactions):
            for item in transaction:
                incidence[row, index[item]] = True

        min_count = self.min_support * n
        supports: Dict[FrozenSet[Item], float] = {}

        # L1.
        counts1 = incidence.sum(axis=0)
        frequent1 = [i for i in range(len(universe)) if counts1[i] >= min_count]
        for i in frequent1:
            supports[frozenset([universe[i]])] = counts1[i] / n

        # L2 via one matrix product over the frequent-item columns.
        level: List[Tuple[int, ...]] = []
        if self.max_itemset_size >= 2 and frequent1:
            sub = incidence[:, frequent1].astype(np.int32)
            pair_counts = sub.T @ sub
            for a in range(len(frequent1)):
                for b in range(a + 1, len(frequent1)):
                    if pair_counts[a, b] >= min_count:
                        ia, ib = frequent1[a], frequent1[b]
                        supports[frozenset([universe[ia], universe[ib]])] = (
                            pair_counts[a, b] / n
                        )
                        level.append((ia, ib))

        # L3+ : extend each frequent k-set with frequent single items.
        frequent1_set = set(frequent1)
        size = 3
        while size <= self.max_itemset_size and level:
            next_level: List[Tuple[int, ...]] = []
            seen: set = set()
            for combo in level:
                mask = np.logical_and.reduce(incidence[:, list(combo)], axis=1)
                if not mask.any():
                    continue
                ext_counts = incidence[mask].sum(axis=0)
                for j in frequent1_set:
                    if j <= combo[-1]:
                        continue
                    candidate = combo + (j,)
                    if candidate in seen:
                        continue
                    # Apriori property: all (k-1)-subsets must be frequent.
                    if not self._subsets_frequent(candidate, supports, universe):
                        continue
                    if ext_counts[j] >= min_count:
                        seen.add(candidate)
                        supports[frozenset(universe[i] for i in candidate)] = (
                            ext_counts[j] / n
                        )
                        next_level.append(candidate)
            level = next_level
            size += 1

        self.itemsets_ = FrequentItemsets(supports=supports, n_transactions=n)
        return self.itemsets_

    @staticmethod
    def _subsets_frequent(
        candidate: Tuple[int, ...],
        supports: Dict[FrozenSet[Item], float],
        universe: List[Item],
    ) -> bool:
        full = [universe[i] for i in candidate]
        for drop in range(len(full)):
            subset = frozenset(full[:drop] + full[drop + 1 :])
            if subset not in supports:
                return False
        return True

    # -- rules ---------------------------------------------------------------------

    def mine_rules(
        self,
        transactions: Sequence[FrozenSet[Item]],
        consequent_attrs: Tuple[str, ...] = ("macro",),
    ) -> List[AssociationRule]:
        """Mine rules whose consequent attribute is in *consequent_attrs*.

        Every frequent itemset of size >= 2 yields candidate rules with a
        single-item consequent; rules below :attr:`min_confidence` are
        discarded.
        """
        itemsets = self.mine_itemsets(transactions)
        rules: List[AssociationRule] = []
        for itemset, support in itemsets.supports.items():
            if len(itemset) < 2:
                continue
            for consequent in itemset:
                if consequent.attr not in consequent_attrs:
                    continue
                antecedent = frozenset(itemset - {consequent})
                ant_support = itemsets.support(antecedent)
                if ant_support <= 0:
                    continue
                confidence = support / ant_support
                if confidence >= self.min_confidence:
                    rules.append(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=support,
                            confidence=min(confidence, 1.0),
                        )
                    )
        return rules
