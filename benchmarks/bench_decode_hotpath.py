"""Bench: decode hot-path throughput — seed implementation vs overhaul.

The decode overhaul precomputes state encodings at candidate-build time,
evaluates correlation rules as per-(rule, candidate-list) boolean
matrices with per-step scalar gates, scores object evidence from an
all-off baseline, and batches sessions across workers.  This bench
measures steps/sec before (``ReferenceCoupledHdbn``, the seed's hot
path) vs after on the same fitted c2 model, asserting the contract:
>= 3x serial speedup with bit-for-bit identical decoded labels.
"""

from benchmarks.conftest import record
from repro.eval.experiments import decode_hotpath_benchmark


def test_decode_hotpath(benchmark):
    result = benchmark.pedantic(
        decode_hotpath_benchmark,
        kwargs={
            "n_homes": 2,
            "sessions_per_home": 4,
            "duration_s": 2400.0,
            "seed": 7,
            "workers": 2,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("decode_hotpath", result.render())
    # The overhaul must not change any decoded label at the same seed...
    assert result.labels_identical
    # ...and must buy at least 3x serial steps/sec on the c2 hot path.
    assert result.speedup >= 3.0
