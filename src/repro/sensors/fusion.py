"""Gradient-descent 9-axis orientation fusion (Madgwick-style).

The paper fuses each 9-axis IMU (accelerometer + gyroscope + magnetometer)
into a quaternion orientation stream before computing acceleration
trajectories (Eqn 16).  :mod:`repro.sensors.trajectory` ships a
complementary filter; this module adds the other standard estimator — the
Madgwick gradient-descent filter — which corrects gyro integration with a
single fused accelerometer+magnetometer gradient step per sample.

Both filters expose the same ``update(sample) -> Quaternion`` interface,
so the trajectory pipeline can swap estimators; the test suite checks that
they agree on clean signals and that Madgwick stays bounded under noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from repro.sensors.imu import ImuSample
from repro.sensors.quaternion import Quaternion
from repro.util.validation import check_positive


@dataclass
class MadgwickFilter:
    """Gradient-descent orientation filter over 9-axis samples.

    Parameters
    ----------
    beta:
        Gradient step weight (rad/s); trades gyro-drift correction speed
        against accelerometer-noise sensitivity.  0.05-0.2 covers typical
        wearable rates.
    sample_rate_hz:
        Nominal sampling rate used to integrate gyro increments.
    """

    beta: float = 0.1
    sample_rate_hz: float = 50.0
    _q: Quaternion = field(default_factory=Quaternion.identity, init=False)

    def __post_init__(self) -> None:
        check_positive("beta", self.beta)
        check_positive("sample_rate_hz", self.sample_rate_hz)

    @property
    def orientation(self) -> Quaternion:
        """Current orientation estimate (sensor frame -> world frame)."""
        return self._q

    def reset(self, q: Quaternion = None) -> None:
        """Restart from *q* (identity by default)."""
        self._q = q if q is not None else Quaternion.identity()

    # -- core update ----------------------------------------------------------

    def update(self, sample: ImuSample) -> Quaternion:
        """Fuse one 9-axis sample and return the new orientation."""
        dt = 1.0 / self.sample_rate_hz
        q = self._q.to_array()  # (w, x, y, z)
        gx, gy, gz = np.asarray(sample.gyro, dtype=float)

        # Quaternion derivative from angular rate.
        q_dot = 0.5 * _quat_mul(q, np.array([0.0, gx, gy, gz]))

        accel = np.asarray(sample.accel, dtype=float)
        mag = np.asarray(sample.mag, dtype=float)
        a_norm = np.linalg.norm(accel)
        m_norm = np.linalg.norm(mag)
        if a_norm > 1e-9:
            a = accel / a_norm
            if m_norm > 1e-9:
                gradient = self._gradient_marg(q, a, mag / m_norm)
            else:
                gradient = self._gradient_imu(q, a)
            g_norm = np.linalg.norm(gradient)
            if g_norm > 1e-12:
                q_dot = q_dot - self.beta * (gradient / g_norm)

        q = q + q_dot * dt
        q = q / np.linalg.norm(q)
        self._q = Quaternion.from_array(q)
        return self._q

    def run(self, samples: Iterable[ImuSample]) -> List[Quaternion]:
        """Fuse a whole sample stream, returning one orientation each."""
        return [self.update(s) for s in samples]

    # -- objective gradients ---------------------------------------------------

    @staticmethod
    def _gradient_imu(q: np.ndarray, a: np.ndarray) -> np.ndarray:
        """Gradient of the gravity-alignment objective (6-axis fallback)."""
        w, x, y, z = q
        ax, ay, az = a
        f = np.array(
            [
                2 * (x * z - w * y) - ax,
                2 * (w * x + y * z) - ay,
                2 * (0.5 - x * x - y * y) - az,
            ]
        )
        j = np.array(
            [
                [-2 * y, 2 * z, -2 * w, 2 * x],
                [2 * x, 2 * w, 2 * z, 2 * y],
                [0.0, -4 * x, -4 * y, 0.0],
            ]
        )
        return j.T @ f

    @staticmethod
    def _gradient_marg(q: np.ndarray, a: np.ndarray, m: np.ndarray) -> np.ndarray:
        """Gradient of the joint gravity + magnetic-field objective."""
        w, x, y, z = q
        # Reference magnetic field in the earth frame: project the measured
        # field through the current orientation and keep only (horizontal,
        # vertical) components, removing the unknowable declination.
        h = _quat_rotate(q, m)
        bx = float(np.hypot(h[0], h[1]))
        bz = float(h[2])

        grad = MadgwickFilter._gradient_imu(q, a)

        mx, my, mz = m
        f_m = np.array(
            [
                2 * bx * (0.5 - y * y - z * z) + 2 * bz * (x * z - w * y) - mx,
                2 * bx * (x * y - w * z) + 2 * bz * (w * x + y * z) - my,
                2 * bx * (w * y + x * z) + 2 * bz * (0.5 - x * x - y * y) - mz,
            ]
        )
        j_m = np.array(
            [
                [-2 * bz * y, 2 * bz * z, -4 * bx * y - 2 * bz * w, -4 * bx * z + 2 * bz * x],
                [-2 * bx * z + 2 * bz * x, 2 * bx * y + 2 * bz * w, 2 * bx * x + 2 * bz * z, -2 * bx * w + 2 * bz * y],
                [2 * bx * y, 2 * bx * z - 4 * bz * x, 2 * bx * w - 4 * bz * y, 2 * bx * x],
            ]
        )
        return grad + j_m.T @ f_m


def _quat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamilton product on (w, x, y, z) arrays."""
    w1, x1, y1, z1 = a
    w2, x2, y2, z2 = b
    return np.array(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ]
    )


def _quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate vector *v* by quaternion *q* (w, x, y, z)."""
    qv = np.array([0.0, v[0], v[1], v[2]])
    conj = np.array([q[0], -q[1], -q[2], -q[3]])
    return _quat_mul(_quat_mul(q, qv), conj)[1:]
