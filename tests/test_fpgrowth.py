"""FP-Growth: equivalence with Apriori and structural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.apriori import Apriori
from repro.mining.context_rules import Item, encode_dataset
from repro.mining.fpgrowth import FpGrowth
from repro.mining.rule_metrics import (
    evaluate_rule,
    evaluate_rules,
    rule_table,
    transitive_reduction_stats,
)
from repro.mining.rules import AssociationRule, merge_redundant

#: A tiny item universe keeps random transactions dense enough to produce
#: frequent itemsets.
_UNIVERSE = [
    Item("u1", "t", "macro", v) for v in ("a", "b", "c")
] + [
    Item("u1", "t", "subloc", v) for v in ("x", "y")
] + [Item("amb", "t", "room", "r")]


@st.composite
def transaction_lists(draw):
    n = draw(st.integers(min_value=8, max_value=40))
    out = []
    for _ in range(n):
        members = draw(
            st.lists(st.sampled_from(_UNIVERSE), min_size=1, max_size=5, unique=True)
        )
        out.append(frozenset(members))
    return out


class TestEquivalenceWithApriori:
    @given(transaction_lists(), st.sampled_from([0.05, 0.1, 0.25]))
    @settings(max_examples=60, deadline=None)
    def test_same_itemsets_and_supports(self, transactions, min_support):
        apriori = Apriori(min_support=min_support, max_itemset_size=3)
        fp = FpGrowth(min_support=min_support, max_itemset_size=3)
        a = apriori.mine_itemsets(transactions)
        f = fp.mine_itemsets(transactions)
        assert set(a.supports) == set(f.supports)
        for itemset, support in a.supports.items():
            assert f.supports[itemset] == pytest.approx(support)

    def test_equivalent_on_real_cace_transactions(self):
        from repro.datasets.cace import generate_cace_dataset

        ds = generate_cace_dataset(
            n_homes=1, sessions_per_home=2, duration_s=1200.0, seed=31
        )
        transactions = encode_dataset(ds.sequences)
        a = Apriori(min_support=0.04, max_itemset_size=3).mine_itemsets(transactions)
        f = FpGrowth(min_support=0.04, max_itemset_size=3).mine_itemsets(transactions)
        assert set(a.supports) == set(f.supports)
        for itemset, support in a.supports.items():
            assert f.supports[itemset] == pytest.approx(support)


class TestFpGrowthProperties:
    @given(transaction_lists())
    @settings(max_examples=40, deadline=None)
    def test_support_antimonotone(self, transactions):
        result = FpGrowth(min_support=0.05).mine_itemsets(transactions)
        for itemset, support in result.supports.items():
            for item in itemset:
                smaller = itemset - {item}
                if smaller:
                    assert result.supports[smaller] >= support - 1e-12

    @given(transaction_lists())
    @settings(max_examples=40, deadline=None)
    def test_supports_match_direct_count(self, transactions):
        result = FpGrowth(min_support=0.05).mine_itemsets(transactions)
        n = len(transactions)
        for itemset, support in result.supports.items():
            direct = sum(1 for t in transactions if itemset <= t) / n
            assert support == pytest.approx(direct)

    def test_respects_max_itemset_size(self):
        transactions = [frozenset(_UNIVERSE)] * 10
        result = FpGrowth(min_support=0.5, max_itemset_size=2).mine_itemsets(transactions)
        assert max(len(s) for s in result.supports) == 2

    def test_empty_transactions(self):
        result = FpGrowth().mine_itemsets([])
        assert result.supports == {}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FpGrowth(min_support=1.5)
        with pytest.raises(ValueError):
            FpGrowth(max_itemset_size=0)


class TestRuleMetrics:
    @pytest.fixture
    def corpus(self):
        a = Item("u1", "t", "subloc", "SR1")
        b = Item("u1", "t", "posture", "cycling")
        c = Item("u1", "t", "macro", "exercising")
        other = Item("u1", "t", "macro", "dining")
        transactions = []
        transactions += [frozenset([a, b, c])] * 40  # rule holds
        transactions += [frozenset([a, other])] * 5  # antecedent, no consequent
        transactions += [frozenset([other])] * 55
        return a, b, c, transactions

    def test_confidence_and_support(self, corpus):
        a, b, c, transactions = corpus
        rule = AssociationRule(
            antecedent=frozenset([a]), consequent=c, support=0.0, confidence=0.0
        )
        quality = evaluate_rule(rule, transactions)
        assert quality.support == pytest.approx(0.4)
        assert quality.confidence == pytest.approx(40 / 45)
        assert quality.lift == pytest.approx((40 / 45) / 0.4)
        assert quality.leverage == pytest.approx(0.4 - 0.45 * 0.4)
        assert quality.conviction == pytest.approx((1 - 0.4) / (1 - 40 / 45))

    def test_exceptionless_rule_has_infinite_conviction(self, corpus):
        a, b, c, transactions = corpus
        rule = AssociationRule(
            antecedent=frozenset([a, b]), consequent=c, support=0.0, confidence=0.0
        )
        quality = evaluate_rule(rule, transactions)
        assert quality.confidence == pytest.approx(1.0)
        assert quality.conviction == float("inf")
        assert "inf" in quality.row()

    def test_evaluate_rules_sorted_by_lift(self, corpus):
        a, b, c, transactions = corpus
        strong = AssociationRule(frozenset([a, b]), c, 0.0, 0.0)
        weak = AssociationRule(frozenset([a]), c, 0.0, 0.0)
        ranked = evaluate_rules([weak, strong], transactions)
        assert ranked[0].rule == strong

    def test_rule_table_renders(self, corpus):
        a, b, c, transactions = corpus
        rule = AssociationRule(frozenset([a]), c, 0.0, 0.0)
        table = rule_table([rule], transactions)
        assert "lift" in table and "sup=" in table

    def test_zero_transactions_rejected(self, corpus):
        a, _, c, _ = corpus
        rule = AssociationRule(frozenset([a]), c, 0.0, 0.0)
        with pytest.raises(ValueError):
            evaluate_rule(rule, [])

    def test_reduction_stats(self):
        a = Item("u1", "t", "subloc", "SR1")
        b = Item("u1", "t", "posture", "cycling")
        c = Item("u1", "t", "macro", "exercising")
        general = AssociationRule(frozenset([a]), c, 0.1, 1.0)
        specific = AssociationRule(frozenset([a, b]), c, 0.05, 1.0)
        merged = merge_redundant([general, specific])
        stats = transitive_reduction_stats([general, specific], merged)
        assert stats["rules_before"] == 2
        assert stats["rules_after"] == 1
        assert stats["compression"] == pytest.approx(0.5)
