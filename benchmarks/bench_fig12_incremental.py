"""Bench: Fig 12 — incremental performance vs training-sample size.

Paper: accuracy climbs from ~83% at a 30% sample to ~95%+ at full data;
overhead grows with sample size; user-seeded initial rules improve both,
most visibly in the low-data regime.
"""

from repro.eval.experiments import fig12_incremental
from benchmarks.conftest import record


def test_fig12_incremental(benchmark):
    result = benchmark.pedantic(
        fig12_incremental,
        kwargs={
            "n_homes": 2,
            "sessions_per_home": 5,
            "duration_s": 2700.0,
            "fractions": (0.3, 0.6, 1.0),
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("fig12", result.render())
    rows = result.rows
    by_config = {}
    for frac, config, acc, overhead, joint in rows:
        by_config.setdefault(config, []).append((frac, acc, overhead, joint))
    for config, series in by_config.items():
        series.sort()
        # More data should not hurt accuracy much (allow small noise).
        assert series[-1][1] >= series[0][1] - 0.05, config
    # Initial rules help (or at least do not hurt) in the low-data regime:
    # accuracy stays level and the seeded rules shrink the joint trellis
    # before any rules could be mined.
    low_no = next(r for r in rows if r[0] == 0.3 and r[1] == "no_initial_rules")
    low_with = next(r for r in rows if r[0] == 0.3 and r[1] == "with_initial_rules")
    assert low_with[2] >= low_no[2] - 0.05
    assert low_with[4] <= low_no[4] * 1.05
