"""Madgwick fusion filter: convergence, drift rejection, agreement."""

import numpy as np
import pytest

from repro.sensors.fusion import MadgwickFilter
from repro.sensors.imu import ImuSample, ImuSimulator, POSTURAL_SIGNATURES
from repro.sensors.quaternion import Quaternion
from repro.sensors.trajectory import OrientationFilter

_GRAVITY = 9.81
_NORTH = np.array([22.0, 0.0, -42.0])  # typical inclination field, uT


def _static_sample(t: float, q: Quaternion, gyro=None) -> ImuSample:
    """A stationary sample for a body at orientation *q* (body->world)."""
    if gyro is None:
        gyro = np.zeros(3)
    inv = q.inverse()
    accel = inv.rotate(np.array([0.0, 0.0, _GRAVITY]))
    mag = inv.rotate(_NORTH)
    return ImuSample(t=t, accel=accel, gyro=np.asarray(gyro, float), mag=mag)


class TestMadgwick:
    def test_identity_is_fixed_point(self):
        filt = MadgwickFilter(sample_rate_hz=50.0)
        q = Quaternion.identity()
        for i in range(100):
            out = filt.update(_static_sample(i / 50.0, q))
        assert out.angular_distance(q) < 0.05

    def test_converges_to_static_orientation(self):
        true_q = Quaternion.from_euler(0.25, -0.4, 0.0)
        filt = MadgwickFilter(beta=0.3, sample_rate_hz=50.0)
        for i in range(800):
            out = filt.update(_static_sample(i / 50.0, true_q))
        assert out.angular_distance(true_q) < 0.12

    def test_tracks_constant_rotation(self):
        # Rotating at a constant rate about z; gyro carries the full signal.
        rate = 0.8  # rad/s
        filt = MadgwickFilter(beta=0.05, sample_rate_hz=100.0)
        q = Quaternion.identity()
        for i in range(400):
            q = (q * Quaternion.from_axis_angle([0, 0, 1], rate / 100.0)).normalized()
            out = filt.update(_static_sample(i / 100.0, q, gyro=[0.0, 0.0, rate]))
        assert out.angular_distance(q) < 0.2

    def test_gyro_bias_rejected(self):
        # A constant gyro bias must not wind the estimate up: the gradient
        # correction anchors gravity/north.
        true_q = Quaternion.identity()
        filt = MadgwickFilter(beta=0.3, sample_rate_hz=50.0)
        for i in range(1000):
            out = filt.update(
                _static_sample(i / 50.0, true_q, gyro=[0.03, -0.02, 0.01])
            )
        assert out.angular_distance(true_q) < 0.15

    def test_output_stays_normalised(self):
        rng = np.random.default_rng(3)
        filt = MadgwickFilter(sample_rate_hz=50.0)
        for i in range(200):
            sample = ImuSample(
                t=i / 50.0,
                accel=rng.normal(0, 3, 3) + [0, 0, _GRAVITY],
                gyro=rng.normal(0, 0.5, 3),
                mag=rng.normal(0, 5, 3) + _NORTH,
            )
            out = filt.update(sample)
            assert out.norm() == pytest.approx(1.0, abs=1e-9)

    def test_six_axis_fallback_without_mag(self):
        true_q = Quaternion.from_euler(0.3, 0.0, 0.0)
        filt = MadgwickFilter(beta=0.3, sample_rate_hz=50.0)
        for i in range(800):
            s = _static_sample(i / 50.0, true_q)
            s = ImuSample(t=s.t, accel=s.accel, gyro=s.gyro, mag=np.zeros(3))
            out = filt.update(s)
        # Without a magnetometer, roll/pitch still converge (yaw is
        # unobservable): compare gravity directions instead of quaternions.
        g_est = out.inverse().rotate([0.0, 0.0, 1.0])
        g_true = true_q.inverse().rotate([0.0, 0.0, 1.0])
        assert np.dot(g_est, g_true) > 0.99

    def test_reset(self):
        filt = MadgwickFilter()
        filt.update(_static_sample(0.0, Quaternion.from_euler(0.5, 0.2, 0.1)))
        filt.reset()
        assert filt.orientation.angular_distance(Quaternion.identity()) < 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MadgwickFilter(beta=0.0)
        with pytest.raises(ValueError):
            MadgwickFilter(sample_rate_hz=-1.0)

    def test_agreement_with_complementary_filter(self):
        # Both estimators fuse the same rendered stream; their gravity
        # estimates should agree closely on clean postural data.
        sim = ImuSimulator(seed=11)
        samples = sim.render(POSTURAL_SIGNATURES["sitting"], duration_s=4.0)
        madgwick = MadgwickFilter(beta=0.2, sample_rate_hz=50.0)
        complementary = OrientationFilter(sample_rate_hz=50.0, correction_gain=0.1)
        for sample in samples:
            qm = madgwick.update(sample)
            qc = complementary.update(sample)
        gm = qm.inverse().rotate([0.0, 0.0, 1.0])
        gc = qc.inverse().rotate([0.0, 0.0, 1.0])
        assert np.dot(gm, gc) > 0.95

    def test_run_returns_one_orientation_per_sample(self):
        sim = ImuSimulator(seed=5)
        samples = sim.render(POSTURAL_SIGNATURES["standing"], duration_s=1.0)
        out = MadgwickFilter().run(samples)
        assert len(out) == len(samples)
