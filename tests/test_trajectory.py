"""Unit tests for sensor fusion and trajectory generation."""

import numpy as np
import pytest

from repro.sensors.imu import POSTURAL_SIGNATURES, ImuSimulator
from repro.sensors.trajectory import (
    OrientationFilter,
    absolute_acceleration,
    high_pass,
    relative_trajectory,
    trajectory_orientations,
)


class TestHighPass:
    def test_removes_dc_offset(self):
        t = np.arange(500) / 50.0
        signal = 5.0 + np.sin(2 * np.pi * 3.0 * t)
        filtered = high_pass(signal, 50.0, cutoff_hz=0.5)
        assert abs(np.mean(filtered[100:])) < 0.05

    def test_preserves_high_frequency_amplitude(self):
        t = np.arange(1000) / 50.0
        signal = np.sin(2 * np.pi * 5.0 * t)
        filtered = high_pass(signal, 50.0, cutoff_hz=0.3)
        assert np.std(filtered[200:]) == pytest.approx(np.std(signal[200:]), rel=0.1)

    def test_multichannel(self):
        data = np.random.default_rng(0).normal(size=(100, 3)) + 10.0
        filtered = high_pass(data, 50.0)
        assert filtered.shape == (100, 3)
        assert np.all(np.abs(filtered.mean(axis=0)) < 1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            high_pass(np.zeros(10), 0.0)
        with pytest.raises(ValueError):
            high_pass(np.zeros(10), 50.0, cutoff_hz=0.0)


class TestOrientationFilter:
    def test_static_convergence(self):
        imu = ImuSimulator(seed=4)
        samples = imu.render(POSTURAL_SIGNATURES["standing"], 5.0)
        filt = OrientationFilter()
        for s in samples:
            q = filt.update(s)
        up_est = q.rotate(samples[-1].accel / np.linalg.norm(samples[-1].accel))
        # The estimated world-frame "up" should be close to +z.
        assert up_est[2] > 0.9

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            OrientationFilter(correction_gain=1.5)


class TestAbsoluteAcceleration:
    def test_static_posture_is_near_zero(self):
        imu = ImuSimulator(seed=5)
        samples = imu.render(POSTURAL_SIGNATURES["lying"], 4.0)
        traj = absolute_acceleration(samples)
        assert traj.shape == (len(samples), 3)
        # After gravity removal + high-pass, static lying is near zero.
        assert np.abs(traj[100:]).mean() < 0.5

    def test_walking_energy_visible(self):
        imu = ImuSimulator(seed=6)
        walk = absolute_acceleration(imu.render(POSTURAL_SIGNATURES["walking"], 4.0))
        lie = absolute_acceleration(imu.render(POSTURAL_SIGNATURES["lying"], 4.0))
        assert np.var(walk[100:]) > 5 * np.var(lie[100:])


class TestRelativeTrajectory:
    def test_orientation_count_preserved(self):
        imu = ImuSimulator(seed=7)
        samples = imu.render(POSTURAL_SIGNATURES["sitting"], 1.0)
        qs = trajectory_orientations(samples)
        traj = relative_trajectory(qs)
        assert len(qs) == len(samples)
        assert traj.shape == (len(samples), 3)
        assert np.allclose(np.linalg.norm(traj, axis=1), 1.0, atol=1e-9)
