"""Unit tests for layout, activities, behaviour engine, and simulator."""

import networkx as nx
import numpy as np
import pytest

from repro.home import (
    GESTURAL_ACTIVITIES,
    MACRO_ACTIVITIES,
    POSTURAL_ACTIVITIES,
    BehaviorEngine,
    HomeSimulator,
    activity_profile,
    default_layout,
)
from repro.home.activities import all_profiles
from repro.home.behavior import _POSTURE_GRAPH, segment_at, slice_at
from repro.home.layout import OBJECT_PLACEMENT, SUB_REGIONS


class TestLayout:
    def test_fourteen_sub_regions(self):
        assert len(SUB_REGIONS) == 14
        assert [sr.sr_id for sr in SUB_REGIONS] == [f"SR{i}" for i in range(1, 15)]

    def test_default_layout_sensor_complement(self):
        layout = default_layout(seed=1)
        assert len(layout.pir_sensors) == 6  # one per room
        assert len(layout.object_sensors) == 8
        assert len(layout.beacons) == 9

    def test_object_placement_valid(self):
        layout = default_layout(seed=1)
        ids = set(layout.sub_region_ids)
        for sr_id in OBJECT_PLACEMENT.values():
            assert sr_id in ids

    def test_room_lookup(self):
        layout = default_layout(seed=1)
        assert layout.room_of("SR9") == "bathroom"
        assert layout.room_of("SR10") == "kitchen"
        with pytest.raises(KeyError):
            layout.room_of("SR99")

    def test_sample_position_within_radius(self):
        layout = default_layout(seed=1)
        rng = np.random.default_rng(0)
        sr = layout.sub_region("SR4")
        for _ in range(50):
            x, y = layout.sample_position("SR4", rng)
            assert np.hypot(x - sr.center[0], y - sr.center[1]) <= sr.radius + 1e-9

    def test_nearest_sub_region(self):
        layout = default_layout(seed=1)
        sr = layout.nearest_sub_region((1.2, 1.2))
        assert sr.sr_id == "SR1"

    def test_neighbors_sorted_by_distance(self):
        layout = default_layout(seed=1)
        neighbors = layout.neighbors("SR2", k=3)
        assert len(neighbors) == 3
        assert "SR2" not in neighbors


class TestActivities:
    def test_eleven_macro_activities(self):
        assert len(MACRO_ACTIVITIES) == 11
        assert len(POSTURAL_ACTIVITIES) == 5
        assert len(GESTURAL_ACTIVITIES) == 5

    def test_profiles_are_valid_distributions(self):
        for name, profile in all_profiles().items():
            assert sum(profile.sublocations.values()) == pytest.approx(1.0, abs=1e-6), name
            assert sum(profile.postural.values()) == pytest.approx(1.0, abs=1e-6), name
            assert sum(profile.gestural.values()) == pytest.approx(1.0, abs=1e-6), name
            lo, hi = profile.duration_range_s
            assert 0 < lo < hi

    def test_profile_vocabulary_consistency(self):
        for profile in all_profiles().values():
            assert set(profile.postural) <= set(POSTURAL_ACTIVITIES)
            assert set(profile.gestural) <= set(GESTURAL_ACTIVITIES)

    def test_unknown_activity_raises(self):
        with pytest.raises(KeyError):
            activity_profile("skydiving")

    def test_bathrooming_is_exclusive(self):
        assert activity_profile("bathrooming").exclusive
        assert activity_profile("dining").shareable


class TestBehaviorEngine:
    def _session(self, seed=3, duration=2000.0):
        engine = BehaviorEngine(layout=default_layout(seed), seed=seed)
        return engine.generate_session(("a", "b"), duration), duration

    def test_timelines_tile_the_session(self):
        timelines, duration = self._session()
        for segments in timelines.values():
            assert segments[0].start == 0.0
            for prev, cur in zip(segments[:-1], segments[1:]):
                assert cur.start == pytest.approx(prev.end)
            assert segments[-1].end <= duration + 1e-6

    def test_postural_continuity_follows_graph(self):
        timelines, _ = self._session(seed=9)
        for segments in timelines.values():
            slices = [sl for seg in segments for sl in seg.slices]
            for prev, cur in zip(slices[:-1], slices[1:]):
                if prev.posture != cur.posture:
                    assert _POSTURE_GRAPH.has_edge(prev.posture, cur.posture), (
                        prev.posture,
                        cur.posture,
                    )

    def test_bathroom_never_shared(self):
        timelines, duration = self._session(seed=11, duration=3000.0)
        for t in np.arange(0, duration, 10.0):
            in_bath = 0
            for segments in timelines.values():
                seg = segment_at(segments, t)
                if seg is not None and seg.activity == "bathrooming":
                    in_bath += 1
            assert in_bath <= 1

    def test_micro_slices_cover_segments(self):
        timelines, _ = self._session(seed=13)
        for segments in timelines.values():
            for seg in segments:
                assert seg.slices[0].start == pytest.approx(seg.start)
                assert seg.slices[-1].end == pytest.approx(seg.end, abs=1e-6)

    def test_slice_at_lookup(self):
        timelines, _ = self._session(seed=5)
        segments = timelines["a"]
        mid = 0.5 * (segments[0].start + segments[0].end)
        sl = slice_at(segments, mid)
        assert sl is not None
        assert sl.start <= mid < sl.end or sl is segments[0].slices[-1]

    def test_posture_graph_is_connected(self):
        assert nx.is_connected(_POSTURE_GRAPH)


class TestSimulator:
    def test_session_outputs(self):
        sim = HomeSimulator(seed=21, sensor_tick_s=2.0)
        result = sim.run_session(duration_s=600.0)
        assert result.duration_s == 600.0
        assert set(result.resident_ids) == {"resident_a", "resident_b"}
        assert len(result.beacon_fixes["resident_a"]) > 0
        # All events stamped within (slightly beyond for latency jitter).
        for event in result.events:
            assert 0.0 <= event.t <= 601.0

    def test_truth_defined_mid_session(self):
        sim = HomeSimulator(seed=22, sensor_tick_s=2.0)
        result = sim.run_session(duration_s=600.0)
        truth = result.truth_at("resident_a", 300.0)
        assert truth is not None
        macro, posture, gesture, subloc = truth
        assert macro in MACRO_ACTIVITIES
        assert posture in POSTURAL_ACTIVITIES
        assert subloc.startswith("SR")

    def test_pir_events_reference_rooms(self):
        sim = HomeSimulator(seed=23, sensor_tick_s=2.0)
        result = sim.run_session(duration_s=400.0)
        rooms = {sr.room for sr in result.layout.sub_regions}
        for event in result.events.of_kind("pir"):
            assert event.value in rooms

    def test_three_residents_supported(self):
        sim = HomeSimulator(seed=24, sensor_tick_s=2.0)
        result = sim.run_session(resident_ids=("a", "b", "c"), duration_s=400.0)
        assert set(result.timelines) == {"a", "b", "c"}
