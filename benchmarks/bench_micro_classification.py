"""Bench: micro-level activity classification (paper §VII-E text numbers).

Paper: postural 98.6% accuracy / 0.6% FP; oral-gestural 95.3% / 1.8%.
"""

from repro.eval.experiments import micro_level_results
from benchmarks.conftest import record


def test_micro_level_classification(benchmark):
    result = benchmark.pedantic(
        micro_level_results,
        kwargs={"seconds_per_class": 30.0, "seed": 11},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("micro_level", result.render())
    # Shape: both classifiers in the 90s, postural the stronger one.
    assert result.reports["postural"].accuracy > 0.9
    assert result.reports["gestural"].accuracy > 0.85
    assert (
        result.reports["postural"].accuracy >= result.reports["gestural"].accuracy - 0.02
    )
