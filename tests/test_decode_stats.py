"""DecodeStats accounting fixes + hot-path equivalence regression tests.

Covers the decode-overhaul PR's guarantees:

* ``pruned_joint_states`` counts only joint candidates *actually removed*
  by correlation pruning (the all-pruned fallback reports zero), and the
  emission-score cap is accounted separately in ``capped_joint_states``;
* the streaming :class:`~repro.core.smoother.OnlineSmoother` performs the
  same accounting as offline decoding;
* the optimised hot path (precomputed encodings, rule matrices, object
  baseline) reproduces the seed implementation bit-for-bit on labels and
  to 1e-10 on posterior marginals (:mod:`repro.core.reference` is the
  seed's executable spec);
* single-user rule pruning is slot-invariant: resident 2 is pruned
  against the same canonicalised rules as resident 1.
"""

import numpy as np
import pytest

from repro.core.chdbn import CoupledHdbn, DecodeStats
from repro.core.engine import CaceEngine
from repro.core.reference import ReferenceCoupledHdbn
from repro.core.smoother import OnlineSmoother
from repro.mining.context_rules import Item
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.mining.rules import AssociationRule


@pytest.fixture(scope="module")
def fitted(cace_split, constraint_model, rule_set):
    train, _ = cace_split
    model = CoupledHdbn(
        constraint_model=constraint_model,
        rule_set=rule_set,
        max_states_per_user=20,
        seed=3,
    )
    model.fit(train)
    return model


@pytest.fixture(scope="module")
def reference(cace_split, constraint_model, rule_set):
    train, _ = cace_split
    model = ReferenceCoupledHdbn(
        constraint_model=constraint_model,
        rule_set=rule_set,
        max_states_per_user=20,
        seed=3,
    )
    model.fit(train)
    return model


class TestPrunedCountAccounting:
    def test_all_pruned_fallback_counts_zero(self, cace_split, fitted, monkeypatch):
        """When every pair fails the rules, nothing is dropped — and the
        counter must say so (the seed inflated the Fig 11 metric here)."""
        _, test = cace_split
        seq = test.sequences[0].slice(0, 5)
        monkeypatch.setattr(
            type(fitted),
            "_cross_prune_mask",
            lambda self, step, c1, c2, gates=None: np.zeros(
                (len(c1), len(c2)), dtype=bool
            ),
        )
        fitted.decode(seq)
        assert fitted.last_stats.pruned_joint_states == 0
        assert fitted.last_stats.joint_states > 0

    def test_partial_prune_counts_removed_pairs(self, cace_split, fitted, monkeypatch):
        """The counter equals the number of pairs the mask removed."""
        _, test = cace_split
        seq = test.sequences[0].slice(0, 1)
        dropped = {}

        def half_mask(self, step, c1, c2, gates=None):
            keep = np.ones((len(c1), len(c2)), dtype=bool)
            keep[0, :] = False  # drop every pair involving candidate 0 of u1
            dropped["n"] = int((~keep).sum())
            return keep

        monkeypatch.setattr(type(fitted), "_cross_prune_mask", half_mask)
        fitted.decode(seq)
        assert fitted.last_stats.pruned_joint_states == dropped["n"]

    def test_cap_accounted_separately(self, cace_split, fitted):
        _, test = cace_split
        seq = test.sequences[0].slice(0, 10)
        fitted.decode(seq)
        stats = fitted.last_stats
        # Survivors + cap drops add up to the post-rule-pruning pool.
        assert stats.capped_joint_states >= 0
        assert stats.joint_states <= stats.steps * fitted.max_joint_states_pruned

    def test_merge_accumulates_every_field(self):
        a = DecodeStats(2, 10, 100, 3, 1)
        b = DecodeStats(1, 5, 50, 2, 4)
        a.merge(b)
        assert (a.steps, a.joint_states, a.transition_entries) == (3, 15, 150)
        assert (a.pruned_joint_states, a.capped_joint_states) == (5, 5)


class TestSmootherAccounting:
    def test_streaming_stats_match_offline(self, cace_split, fitted):
        """push() must perform the same accounting _prepare/decode do."""
        _, test = cace_split
        seq = test.sequences[0].slice(0, 25)
        fitted.decode(seq)
        offline = fitted.last_stats
        smoother = OnlineSmoother(fitted, lag=4)
        smoother.run(seq)
        online = fitted.last_stats
        assert online.steps == offline.steps == len(seq)
        assert online.joint_states == offline.joint_states
        assert online.transition_entries == offline.transition_entries
        assert online.pruned_joint_states == offline.pruned_joint_states
        assert online.capped_joint_states == offline.capped_joint_states

    def test_streaming_mean_joint_states_positive(self, cace_split, fitted):
        _, test = cace_split
        seq = test.sequences[0].slice(0, 12)
        smoother = OnlineSmoother(fitted, lag=3)
        smoother.run(seq)
        assert fitted.last_stats.steps == len(seq)
        assert fitted.last_stats.mean_joint_states > 1


class TestHotPathEquivalence:
    def test_decode_labels_identical(self, cace_split, fitted, reference):
        _, test = cace_split
        for seq in test.sequences:
            assert fitted.decode(seq) == reference.decode(seq)
            assert fitted.last_stats == reference.last_stats

    def test_posterior_marginals_close(self, cace_split, fitted, reference):
        _, test = cace_split
        seq = test.sequences[0].slice(0, 30)
        fast = fitted.posterior_marginals(seq)
        ref = reference.posterior_marginals(seq)
        for rid in ref:
            np.testing.assert_allclose(fast[rid], ref[rid], atol=1e-10)

    def test_unpruned_decode_identical(self, cace_split, constraint_model):
        """The NCS configuration (no rules) must match too."""
        train, test = cace_split
        fast = CoupledHdbn(
            constraint_model=constraint_model, rule_set=None,
            max_states_per_user=20, seed=3,
        ).fit(train)
        ref = ReferenceCoupledHdbn(
            constraint_model=constraint_model, rule_set=None,
            max_states_per_user=20, seed=3,
        ).fit(train)
        seq = test.sequences[0].slice(0, 40)
        assert fast.decode(seq) == ref.decode(seq)


class TestSlotInvariance:
    def _u2_rule_set(self):
        rule = AssociationRule(
            antecedent=frozenset([Item("u2", "t", "subloc", "SR1")]),
            consequent=Item("u2", "t", "macro", "exercising"),
            support=0.5,
            confidence=1.0,
        )
        return CorrelationRuleSet(forcing_rules=[rule], exclusions=[])

    def test_single_user_canonicalises_slots_to_u1(self):
        """single_user() rewrites every user slot to u1, so checking both
        residents' hypotheses against slot-u1 items is correct."""
        single = self._u2_rule_set().single_user()
        assert len(single.forcing_rules) == 1
        rule = single.forcing_rules[0]
        assert {i.slot for i in rule.antecedent} == {"u1"}
        assert rule.consequent.slot == "u1"

    def test_both_residents_pruned_identically(self, cace_split, fitted):
        """With identical observations, resident 2's candidates are pruned
        exactly like resident 1's — no u1-only bias."""
        _, test = cace_split
        seq = test.sequences[0]
        rids = seq.resident_ids[:2]
        # Make resident 2's observation identical to resident 1's.
        import dataclasses

        step = seq.steps[0]
        obs = step.observations[rids[0]]
        twin_step = dataclasses.replace(
            step, observations={rids[0]: obs, rids[1]: obs}
        )
        twin = type(seq)(
            home_id=seq.home_id,
            resident_ids=seq.resident_ids,
            step_s=seq.step_s,
            steps=[twin_step],
            truths=seq.truths[:1],
        )
        c1 = fitted._user_candidates(twin, rids[0], 0)
        c2 = fitted._user_candidates(twin, rids[1], 0)
        assert c1.states == c2.states
        np.testing.assert_array_equal(c1.m, c2.m)
        np.testing.assert_array_equal(c1.emissions, c2.emissions)


class TestNcrPosteriorMarginals:
    def test_engine_exposes_ncr_marginals(self, cace_split):
        train, test = cace_split
        engine = CaceEngine(strategy="ncr", max_states_per_user=16, seed=9)
        engine.fit(train)
        seq = test.sequences[0].slice(0, 15)
        marginals = engine.posterior_marginals(seq)
        assert set(marginals) == set(seq.resident_ids)
        for gamma in marginals.values():
            assert gamma.shape == (len(seq), len(train.macro_vocab))
            assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-6)
            assert (gamma >= 0).all()

    def test_temporal_chain_marginals_normalised(self, cace_split, constraint_model, rule_set):
        from repro.core.hdbn import SingleUserHdbn

        train, test = cace_split
        model = SingleUserHdbn(
            constraint_model=constraint_model, rule_set=rule_set,
            temporal=True, max_states_per_user=16, seed=5,
        ).fit(train)
        seq = test.sequences[0].slice(0, 15)
        marginals = model.posterior_marginals(seq)
        for gamma in marginals.values():
            assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-6)


class TestBatchedDecode:
    def test_serial_aggregates_stats(self, cace_split):
        train, test = cace_split
        engine = CaceEngine(strategy="c2", max_states_per_user=16, seed=9)
        engine.fit(train)
        out = engine.predict_dataset(test)
        assert len(out) == len(test.sequences)
        assert engine.batch_stats_.steps == test.total_steps

    def test_workers_match_serial(self, cace_split):
        train, test = cace_split
        engine = CaceEngine(strategy="c2", max_states_per_user=16, seed=9)
        engine.fit(train)
        serial = engine.predict_dataset(test)
        serial_stats = engine.batch_stats_
        parallel = engine.predict_dataset(test, workers=2)
        assert parallel == serial
        assert engine.batch_stats_ == serial_stats
