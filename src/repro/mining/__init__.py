"""Context mining: association rules, correlations, constraints (§V).

The pipeline's "pruning engine": training traces are encoded as
transactions over 94 context elements (47 per time slice, two slices),
Apriori extracts high-confidence association rules, and two miners distil
them into the structures the loosely-coupled HDBN consumes —

* :class:`~repro.mining.correlation_miner.CorrelationRuleSet` —
  deterministic *must / must-not* relationships used to prune joint states;
* :class:`~repro.mining.constraint_miner.ConstraintModel` — probabilistic
  end-of-sequence and transition statistics implementing the blocking /
  termination semantics (Eqns 3-6).
"""

from repro.mining.apriori import Apriori, FrequentItemsets
from repro.mining.constraint_miner import ConstraintMiner, ConstraintModel
from repro.mining.context_rules import (
    Item,
    encode_sequence,
    encode_step,
    state_items,
)
from repro.mining.correlation_miner import CorrelationMiner, CorrelationRuleSet
from repro.mining.initial_rules import initial_rule_set, table_iv_rules
from repro.mining.rules import AssociationRule, ExclusionRule, merge_redundant

__all__ = [
    "Apriori",
    "FrequentItemsets",
    "ConstraintMiner",
    "ConstraintModel",
    "Item",
    "encode_sequence",
    "encode_step",
    "state_items",
    "CorrelationMiner",
    "CorrelationRuleSet",
    "initial_rule_set",
    "table_iv_rules",
    "AssociationRule",
    "ExclusionRule",
    "merge_redundant",
]
