"""CASAS-style multi-resident task recognition (ambient + postural only).

Mirrors the paper's second evaluation corpus: resident pairs performing 15
scripted ADL tasks (two performed jointly), observed by motion sensors and
the phone's postural channel — no oral gestures, no iBeacons.  Compares the
per-user HMM baseline against the full CACE engine and breaks out the
shared tasks, where inter-user coupling shines.

Run:  python examples/casas_multi_resident.py
"""

import numpy as np

from repro.core import CaceEngine
from repro.datasets import generate_casas_dataset, train_test_split
from repro.datasets.casas import SHARED_TASKS
from repro.eval.metrics import evaluate_predictions
from repro.models import MacroHmm


def flatten(test, predict_fn):
    truth, predicted = [], []
    for seq in test.sequences:
        pred = predict_fn(seq)
        for rid in seq.resident_ids:
            truth.extend(seq.macro_labels(rid))
            predicted.extend(pred[rid])
    return truth, predicted


def main() -> None:
    print("Generating a CASAS-style corpus (6 pairs x 2 sessions, 15 tasks)...")
    dataset = generate_casas_dataset(
        n_pairs=6, sessions_per_pair=2, duration_scale=0.35, seed=99
    )
    train, test = train_test_split(dataset, 0.5, seed=4)
    print(f"  {len(train)} training / {len(test)} test sessions; gestural data: "
          f"{dataset.has_gestural}")

    print("\nTraining per-user HMM baseline [9] and CACE (C2)...")
    hmm = MacroHmm().fit(train)
    cace = CaceEngine(strategy="c2", seed=17)
    cace.fit(train)

    for name, fn in (("HMM", hmm.predict), ("CACE", cace.predict)):
        truth, predicted = flatten(test, fn)
        report = evaluate_predictions(truth, predicted, list(dataset.macro_vocab))
        truth_arr = np.array(truth, dtype=object)
        pred_arr = np.array(predicted, dtype=object)
        shared = np.isin(truth_arr, list(SHARED_TASKS))
        shared_acc = float(np.mean(pred_arr[shared] == truth_arr[shared]))
        print(f"\n{name}: overall accuracy {report.accuracy:.1%}, "
              f"shared tasks (move furniture / play checkers) {shared_acc:.1%}")
        if name == "CACE":
            print(report.render())


if __name__ == "__main__":
    main()
