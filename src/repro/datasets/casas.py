"""CASAS-style multi-resident dataset generation.

The paper's second corpus is the WSU CASAS multi-resident ADL dataset
(Singla et al. [9]): 26 resident pairs drawn from 40 volunteers, each pair
performing 15 scripted ADL tasks in a smart apartment instrumented with
motion sensors — two of the tasks (*Move Furniture*, *Play Checkers*) are
performed jointly, and there is **no oral-gestural channel**.

The public download is unavailable offline, so this module generates a
corpus with the same published shape: the 15-task script below approximates
the WSU task list; pairs re-use a shared pool of 40 user identities; the
joint tasks are synchronised across both residents; observations carry
postural + ambient context only (``use_beacons=False``, no gestures).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.discretize import Discretizer
from repro.datasets.observation import MicroObservationModel
from repro.datasets.trace import Dataset
from repro.home.activities import ActivityProfile, POSTURAL_ACTIVITIES
from repro.home.behavior import BehaviorEngine, MacroSegment
from repro.home.layout import casas_layout, default_layout
from repro.home.simulator import HomeSimulator
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_positive

#: The 15 scripted tasks (approximating the WSU ADLMR task list); the two
#: shared tasks are performed by both residents simultaneously.
CASAS_TASKS: Tuple[str, ...] = (
    "fill_medication_dispenser",
    "hang_up_clothes",
    "move_furniture",
    "read_magazine",
    "water_plants",
    "sweep_floor",
    "play_checkers",
    "prepare_dinner",
    "set_table",
    "read_book",
    "pay_bills",
    "pack_picnic",
    "retrieve_dishes",
    "pack_supplies",
    "gather_laundry",
)

SHARED_TASKS: Tuple[str, ...] = ("move_furniture", "play_checkers")


def _profile(
    name: str,
    sublocations: Dict[str, float],
    postural: Dict[str, float],
    duration: Tuple[float, float],
    mobility: float,
    objects: Optional[Dict[str, float]] = None,
    shareable: bool = False,
) -> ActivityProfile:
    return ActivityProfile(
        name=name,
        sublocations=sublocations,
        postural=postural,
        gestural={"silent": 0.9, "talking": 0.1},
        duration_range_s=duration,
        objects=objects or {},
        mobility=mobility,
        shareable=shareable,
    )


CASAS_PROFILES: Dict[str, ActivityProfile] = {
    "fill_medication_dispenser": _profile(
        "fill_medication_dispenser",
        {"SR10": 0.9, "SR4": 0.1},
        {"standing": 0.75, "sitting": 0.15, "walking": 0.1},
        (180, 420),
        0.3,
        objects={"medication_dispenser": 0.8},
    ),
    "hang_up_clothes": _profile(
        "hang_up_clothes",
        {"SR6": 0.8, "SR14": 0.2},
        {"standing": 0.6, "walking": 0.4},
        (120, 360),
        0.5,
        objects={"wardrobe": 0.7},
    ),
    "move_furniture": _profile(
        "move_furniture",
        {"SR12": 0.7, "SR2": 0.3},
        {"walking": 0.55, "standing": 0.45},
        (180, 420),
        0.8,
        objects={"furniture": 0.75},
        shareable=True,
    ),
    "read_magazine": _profile(
        "read_magazine",
        {"SR2": 0.85, "SR3": 0.15},
        {"sitting": 0.92, "standing": 0.08},
        (300, 900),
        0.05,
        objects={"magazine_rack": 0.6},
    ),
    "water_plants": _profile(
        "water_plants",
        {"SR11": 0.75, "SR12": 0.25},
        {"standing": 0.6, "walking": 0.4},
        (120, 300),
        0.55,
        objects={"watering_can": 0.8},
    ),
    "sweep_floor": _profile(
        "sweep_floor",
        {"SR10": 0.6, "SR12": 0.4},
        {"walking": 0.6, "standing": 0.4},
        (240, 600),
        0.7,
        objects={"broom": 0.8},
    ),
    "play_checkers": _profile(
        "play_checkers",
        {"SR4": 1.0},
        {"sitting": 0.95, "standing": 0.05},
        (600, 1200),
        0.04,
        objects={"checkers_box": 0.7},
        shareable=True,
    ),
    "prepare_dinner": _profile(
        "prepare_dinner",
        {"SR10": 0.92, "SR4": 0.08},
        {"standing": 0.6, "walking": 0.36, "sitting": 0.04},
        (600, 1500),
        0.55,
        objects={"stove": 0.8, "dishes_cabinet": 0.25},
    ),
    "set_table": _profile(
        "set_table",
        {"SR4": 0.8, "SR10": 0.2},
        {"standing": 0.55, "walking": 0.45},
        (120, 300),
        0.6,
        objects={"dishes_cabinet": 0.6},
    ),
    "read_book": _profile(
        "read_book",
        {"SR7": 0.9, "SR14": 0.1},
        {"sitting": 0.94, "standing": 0.06},
        (300, 900),
        0.05,
        objects={"study_book": 0.6},
    ),
    "pay_bills": _profile(
        "pay_bills",
        {"SR4": 0.55, "SR7": 0.45},
        {"sitting": 0.88, "standing": 0.12},
        (300, 700),
        0.08,
        objects={"bills_folder": 0.7},
    ),
    "pack_picnic": _profile(
        "pack_picnic",
        {"SR10": 0.85, "SR4": 0.15},
        {"standing": 0.55, "walking": 0.45},
        (300, 600),
        0.5,
        objects={"picnic_basket": 0.8},
    ),
    "retrieve_dishes": _profile(
        "retrieve_dishes",
        {"SR10": 0.9, "SR4": 0.1},
        {"walking": 0.55, "standing": 0.45},
        (120, 300),
        0.65,
        objects={"dishes_cabinet": 0.8},
    ),
    "pack_supplies": _profile(
        "pack_supplies",
        {"SR14": 0.6, "SR8": 0.4},
        {"standing": 0.55, "walking": 0.45},
        (240, 480),
        0.5,
        objects={"supplies_box": 0.8},
    ),
    "gather_laundry": _profile(
        "gather_laundry",
        {"SR14": 0.55, "SR6": 0.45},
        {"walking": 0.6, "standing": 0.4},
        (120, 360),
        0.65,
        objects={"laundry_basket": 0.8},
    ),
}


def _make_pairs(n_users: int, n_pairs: int, rng: np.random.Generator) -> List[Tuple[str, str]]:
    """Form resident pairs from a shared user pool (as in CASAS: 40 -> 26)."""
    users = [f"U{i:02d}" for i in range(1, n_users + 1)]
    pairs: List[Tuple[str, str]] = []
    # First use all users once (disjoint pairs), then re-pair random users.
    order = list(users)
    rng.shuffle(order)
    for i in range(0, len(order) - 1, 2):
        pairs.append((order[i], order[i + 1]))
        if len(pairs) == n_pairs:
            return pairs
    while len(pairs) < n_pairs:
        a, b = rng.choice(users, size=2, replace=False)
        if (a, b) not in pairs and (b, a) not in pairs:
            pairs.append((str(a), str(b)))
    return pairs


def _scripted_timelines(
    pair: Tuple[str, str],
    engine: BehaviorEngine,
    rng: np.random.Generator,
    duration_scale: float,
) -> Tuple[Dict[str, List[MacroSegment]], float]:
    """Script one session: individual tasks interleaved with two joint tasks."""
    individual = [t for t in CASAS_TASKS if t not in SHARED_TASKS]

    def sample_duration(task: str) -> float:
        lo, hi = CASAS_PROFILES[task].duration_range_s
        return duration_scale * float(np.exp(rng.uniform(np.log(lo), np.log(hi))))

    # Each resident gets their own order over the individual tasks, split
    # into halves around the two synchronised joint tasks.
    orders = {}
    for rid in pair:
        tasks = list(individual)
        rng.shuffle(tasks)
        orders[rid] = tasks
    halves = {rid: (orders[rid][: len(orders[rid]) // 2], orders[rid][len(orders[rid]) // 2 :]) for rid in pair}

    timelines: Dict[str, List[MacroSegment]] = {rid: [] for rid in pair}
    clocks: Dict[str, float] = {rid: 0.0 for rid in pair}
    postures: Dict[str, str] = {rid: "standing" for rid in pair}

    def run_block(rid: str, tasks: List[str]) -> None:
        for task in tasks:
            dur = sample_duration(task)
            seg, postures[rid] = engine.expand_segment(
                task, clocks[rid], clocks[rid] + dur, postures[rid]
            )
            timelines[rid].append(seg)
            clocks[rid] += dur

    def sync_and_share(task: str) -> None:
        # Stretch the faster resident's last segment so both are free.
        t_sync = max(clocks.values())
        for rid in pair:
            if clocks[rid] < t_sync and timelines[rid]:
                last = timelines[rid][-1]
                seg, postures[rid] = engine.expand_segment(
                    last.activity, last.start, t_sync, postures[rid]
                )
                timelines[rid][-1] = seg
            clocks[rid] = t_sync
        dur = sample_duration(task)
        for rid in pair:
            seg, postures[rid] = engine.expand_segment(
                task, t_sync, t_sync + dur, postures[rid]
            )
            timelines[rid].append(seg)
            clocks[rid] = t_sync + dur

    for rid in pair:
        run_block(rid, halves[rid][0])
    sync_and_share(SHARED_TASKS[0])
    for rid in pair:
        run_block(rid, halves[rid][1])
    sync_and_share(SHARED_TASKS[1])

    total = max(clocks.values())
    # Pad the shorter timeline's tail (possible only if expansion rounded).
    return timelines, total


def generate_casas_dataset(
    n_pairs: int = 26,
    n_users: int = 40,
    sessions_per_pair: int = 2,
    duration_scale: float = 1.0,
    step_s: float = 15.0,
    observation_model: Optional[MicroObservationModel] = None,
    seed: RandomState = None,
) -> Dataset:
    """Generate the CASAS-style corpus (ambient + postural only).

    ``duration_scale`` uniformly scales task durations; 0.3-0.5 gives quick
    test corpora, 1.0 approximates real task lengths (sessions ~1.5 h).
    """
    check_positive("n_pairs", n_pairs)
    check_positive("sessions_per_pair", sessions_per_pair)
    rng = ensure_rng(seed)
    pairs = _make_pairs(n_users, n_pairs, rng)

    sequences = []
    for idx, pair in enumerate(pairs, start=1):
        home_id = f"pair{idx:02d}"
        layout = casas_layout(seed=rng.integers(0, 2**31))
        engine = BehaviorEngine(
            layout=layout, profiles=CASAS_PROFILES, seed=rng.integers(0, 2**31)
        )
        simulator = HomeSimulator(
            home_id=home_id,
            layout=layout,
            behavior=engine,
            sensor_tick_s=2.0,
            seed=rng.integers(0, 2**31),
        )
        discretizer = Discretizer(
            step_s=step_s,
            use_beacons=False,
            observation_model=observation_model,
            seed=rng.integers(0, 2**31),
        )
        for _ in range(sessions_per_pair):
            timelines, total = _scripted_timelines(pair, engine, rng, duration_scale)
            sim = simulator.run_timelines(timelines, duration_s=total, with_neck_tag=False)
            sequences.append(discretizer.discretize(sim, with_gestural=False))

    layout = default_layout()
    return Dataset(
        name="casas",
        sequences=sequences,
        macro_vocab=CASAS_TASKS,
        postural_vocab=POSTURAL_ACTIVITIES,
        gestural_vocab=(),
        subloc_vocab=tuple(layout.sub_region_ids),
        has_gestural=False,
        metadata={
            "n_pairs": n_pairs,
            "n_users": n_users,
            "sessions_per_pair": sessions_per_pair,
            "duration_scale": duration_scale,
            "step_s": step_s,
        },
    )
