"""Resident agents: the people wearing the sensors.

A :class:`Resident` binds an identity to its wearable complement — pocket
smartphone (postural IMU + iBeacon receiver) and neck-mounted SensorTag
(gestural IMU) — and tracks a physical position inside the apartment while
the simulator advances time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.home.layout import ApartmentLayout
from repro.sensors.ibeacon import BeaconReceiver
from repro.sensors.imu import ImuSimulator
from repro.util.rng import RandomState, ensure_rng


@dataclass
class Resident:
    """One inhabitant with their personal sensing devices.

    Parameters
    ----------
    resident_id:
        Stable identifier, e.g. ``"home1:alice"``.
    has_phone / has_neck_tag:
        Device availability; the CASAS-style ablation runs without the neck
        tag (no gestural channel).
    """

    resident_id: str
    layout: ApartmentLayout
    has_phone: bool = True
    has_neck_tag: bool = True
    walk_speed_mps: float = 1.1
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _position: Tuple[float, float] = field(init=False)
    _current_subloc: Optional[str] = field(default=None, init=False)
    phone_imu: Optional[ImuSimulator] = field(default=None, init=False, repr=False)
    neck_imu: Optional[ImuSimulator] = field(default=None, init=False, repr=False)
    beacon_receiver: Optional[BeaconReceiver] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        self._position = (
            float(np.mean([self.layout.bounds[0], self.layout.bounds[2]])),
            float(np.mean([self.layout.bounds[1], self.layout.bounds[3]])),
        )
        if self.has_phone:
            self.phone_imu = ImuSimulator(seed=self._rng.integers(0, 2**31))
            if self.layout.beacons:
                # Beacon-free deployments (the CASAS testbed) have no
                # phone-side localisation; localize() then returns None.
                self.beacon_receiver = BeaconReceiver(
                    beacons=self.layout.beacons, seed=self._rng.integers(0, 2**31)
                )
        if self.has_neck_tag:
            self.neck_imu = ImuSimulator(seed=self._rng.integers(0, 2**31))

    # -- position tracking -----------------------------------------------------

    @property
    def position(self) -> Tuple[float, float]:
        """Current 2-D position in apartment coordinates."""
        return self._position

    def move_to_subloc(self, sr_id: str) -> None:
        """Teleport to a random point inside sub-region *sr_id*.

        Called when the ground-truth timeline says the resident has settled
        in a new sub-location; within-region jitter is applied per tick by
        :meth:`jitter`.
        """
        if sr_id != self._current_subloc:
            self._position = self.layout.sample_position(sr_id, self._rng)
            self._current_subloc = sr_id
            self._anchor = self._position

    def jitter(self, scale: float = 0.15, reversion: float = 0.25) -> None:
        """Within-region wander: mean-reverting toward the settling point.

        An Ornstein-Uhlenbeck step keeps the resident near where they
        settled in the sub-region instead of random-walking across the
        apartment (which would wreck iBeacon localisation fidelity).
        """
        xmin, ymin, xmax, ymax = self.layout.bounds
        ax, ay = getattr(self, "_anchor", self._position)
        x = self._position[0] + reversion * (ax - self._position[0]) + self._rng.normal(0, scale)
        y = self._position[1] + reversion * (ay - self._position[1]) + self._rng.normal(0, scale)
        self._position = (float(np.clip(x, xmin, xmax)), float(np.clip(y, ymin, ymax)))

    def localize(self) -> Optional[np.ndarray]:
        """iBeacon trilateration fix for the phone, or None (no phone/fix)."""
        if self.beacon_receiver is None:
            return None
        return self.beacon_receiver.localize(self._position)
