"""Shared utilities: seeded randomness, validation, and timing."""

from repro.util.rng import RandomState, derive_rng, ensure_rng
from repro.util.timer import Stopwatch, timed
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_prob_vector,
    check_shape,
)

__all__ = [
    "RandomState",
    "derive_rng",
    "ensure_rng",
    "Stopwatch",
    "timed",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_prob_vector",
    "check_shape",
]
