"""Association-rule quality measures beyond support/confidence.

The paper filters on support >= 4% and confidence >= 99% (§V-A).  When
analysing rule sets (Table IV) or merging redundant rules (the CASAS 47),
secondary measures help rank and diagnose:

* **lift** — confidence over the consequent's base rate; 1.0 means the
  antecedent carries no information, >> 1 a strong association;
* **leverage** — absolute difference between the joint support and the
  independence expectation;
* **conviction** — ratio of the expected to the observed error rate; it
  diverges to infinity for exceptionless (confidence 1.0) rules.

All measures are computed from transaction counts, so they work on any
rule regardless of which miner produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.mining.context_rules import Item
from repro.mining.rules import AssociationRule


@dataclass(frozen=True)
class RuleQuality:
    """All quality measures for one rule against a transaction corpus."""

    rule: AssociationRule
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def row(self) -> str:
        """Render one table row (Table IV-style analysis output)."""
        conv = "inf" if self.conviction == float("inf") else f"{self.conviction:5.2f}"
        return (
            f"sup={self.support:.3f} conf={self.confidence:.3f} "
            f"lift={self.lift:5.2f} lev={self.leverage:+.3f} conv={conv}  {self.rule}"
        )


def _count(transactions: Sequence[FrozenSet[Item]], items: FrozenSet[Item]) -> int:
    return sum(1 for t in transactions if items <= t)


def evaluate_rule(
    rule: AssociationRule, transactions: Sequence[FrozenSet[Item]]
) -> RuleQuality:
    """Recompute every quality measure for *rule* on *transactions*."""
    n = len(transactions)
    if n == 0:
        raise ValueError("cannot evaluate a rule on zero transactions")
    antecedent = frozenset(rule.antecedent)
    both = antecedent | {rule.consequent}
    n_ant = _count(transactions, antecedent)
    n_cons = _count(transactions, frozenset([rule.consequent]))
    n_both = _count(transactions, both)

    support = n_both / n
    confidence = n_both / n_ant if n_ant else 0.0
    base = n_cons / n
    lift = confidence / base if base > 0 else float("inf")
    leverage = support - (n_ant / n) * base
    if confidence >= 1.0:
        conviction = float("inf")
    else:
        conviction = (1.0 - base) / (1.0 - confidence)
    return RuleQuality(
        rule=rule,
        support=support,
        confidence=confidence,
        lift=lift,
        leverage=leverage,
        conviction=conviction,
    )


def evaluate_rules(
    rules: Iterable[AssociationRule], transactions: Sequence[FrozenSet[Item]]
) -> List[RuleQuality]:
    """Quality measures for every rule, sorted by descending lift."""
    out = [evaluate_rule(rule, transactions) for rule in rules]
    out.sort(key=lambda q: (-q.lift, -q.support))
    return out


def rule_table(
    rules: Iterable[AssociationRule],
    transactions: Sequence[FrozenSet[Item]],
    limit: int = 20,
) -> str:
    """Human-readable quality table for the strongest rules."""
    rows = [q.row() for q in evaluate_rules(rules, transactions)[:limit]]
    return "\n".join(rows)


def transitive_reduction_stats(
    before: Sequence[AssociationRule], after: Sequence[AssociationRule]
) -> Dict[str, float]:
    """How much the redundant-rule merge compressed a rule set.

    The paper reports 47 CASAS rules after merging "redundant (e.g.,
    transitive) rules"; this summarises the same reduction for reporting.
    """
    n_before = len(list(before))
    n_after = len(list(after))
    return {
        "rules_before": float(n_before),
        "rules_after": float(n_after),
        "removed": float(n_before - n_after),
        "compression": (n_before - n_after) / n_before if n_before else 0.0,
    }
