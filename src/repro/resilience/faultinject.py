"""Deterministic fault injection for the chaos suite and CI.

A :class:`FaultPlan` maps session keys to :class:`Fault` specs — worker
crashes, decode delays, raised exceptions — injected on attempts
``1..times`` so bounded retries can be exercised end to end.  Plans are
built either explicitly (tests that assert exact accounting) or from a
seed (:meth:`FaultPlan.hashed` — every key draws its fault from a stable
hash, so no key list is needed up front; the CI chaos job drives this
through the ``REPRO_FAULT_SEED`` environment variable).

Activation is process-global: :func:`activate` installs a plan in this
process and, by default, exports it through ``REPRO_FAULT_PLAN`` so
worker processes spawned *afterwards* inherit it (the engine's pool
initializer marks workers, which is what arms real ``os._exit`` crashes
— in the parent process a "crash" fault degrades to a raised
:class:`InjectedFault` so the test runner itself never dies).

:func:`corrupt_step` builds deterministically malformed
:class:`~repro.datasets.trace.ContextStep` objects (NaN features, empty
observations, alien resident ids) for the serving-path chaos tests.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.resilience.policy import stable_unit

#: Environment variables the harness reads (exported to pool workers).
ENV_PLAN = "REPRO_FAULT_PLAN"
ENV_SEED = "REPRO_FAULT_SEED"

FAULT_KINDS = ("crash", "delay", "error")


class InjectedFault(RuntimeError):
    """An exception injected by the harness (never a real decode bug)."""

    def __init__(self, message: str, kind: str = "error") -> None:
        super().__init__(message)
        self.kind = kind

    def __reduce__(self):
        # Survive the pickle round-trip from worker to parent intact.
        return (InjectedFault, (self.args[0], self.kind))


@dataclass(frozen=True)
class Fault:
    """One session's injected failure mode.

    ``times`` is how many (1-based) attempts the fault fires on: with
    ``times=1`` the first retry succeeds; with ``times >= max_attempts``
    the session exhausts its retries and lands in the FailureReport.
    """

    kind: str  # "crash" | "delay" | "error"
    times: int = 1
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "times": self.times, "delay_s": self.delay_s}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Fault":
        return cls(
            kind=str(d["kind"]),
            times=int(d.get("times", 1)),
            delay_s=float(d.get("delay_s", 0.05)),
        )


class FaultPlan:
    """Which sessions fail, how, and on which attempts — all by seed."""

    def __init__(self, faults: Dict[str, Fault], seed: int = 0) -> None:
        self.faults = dict(faults)
        self.seed = seed

    @classmethod
    def from_seed(
        cls,
        seed: int,
        keys: Iterable[str],
        n_crash: int = 0,
        n_delay: int = 0,
        n_error: int = 0,
        times: int = 1,
        delay_s: float = 0.05,
    ) -> "FaultPlan":
        """Assign disjoint fault subsets over *keys*, ordered by a stable
        per-key hash of *seed* (no live RNG: the same seed and key set
        always produce the same plan, in any process)."""
        ordered = sorted(keys, key=lambda k: stable_unit(seed, k))
        want = n_crash + n_delay + n_error
        if want > len(ordered):
            raise ValueError(
                f"plan wants {want} faulted sessions but only {len(ordered)} keys"
            )
        faults: Dict[str, Fault] = {}
        i = 0
        for kind, n in (("crash", n_crash), ("delay", n_delay), ("error", n_error)):
            for key in ordered[i : i + n]:
                faults[key] = Fault(kind, times=times, delay_s=delay_s)
            i += n
        return cls(faults, seed=seed)

    @classmethod
    def hashed(
        cls,
        seed: int,
        crash_rate: float = 0.25,
        delay_rate: float = 0.10,
        error_rate: float = 0.10,
        delay_s: float = 0.02,
    ) -> "_HashedPlan":
        """A key-list-free plan: each key draws ``stable_unit(seed, key)``
        and falls into a fault band by rate.  All faults fire once
        (``times=1``) so the engine's default retries recover — this is
        the ``REPRO_FAULT_SEED`` CI mode, which must leave results
        bit-identical while still exercising crash recovery."""
        return _HashedPlan(seed, crash_rate, delay_rate, error_rate, delay_s)

    def fault_for(self, key: str) -> Optional[Fault]:
        return self.faults.get(key)

    def keys_with(self, kind: str) -> List[str]:
        """Session keys carrying a *kind* fault, sorted."""
        return sorted(k for k, f in self.faults.items() if f.kind == kind)

    def expected_failures(self, max_attempts: int) -> List[str]:
        """Keys whose fault outlives *max_attempts* (sorted): exactly the
        sessions a ``partial=True`` run must report as failed."""
        return sorted(
            k
            for k, f in self.faults.items()
            if f.times >= max_attempts and f.kind != "delay"
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": {k: f.to_dict() for k, f in self.faults.items()},
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        d = json.loads(text)
        return cls(
            {k: Fault.from_dict(f) for k, f in d["faults"].items()},
            seed=int(d.get("seed", 0)),
        )


class _HashedPlan(FaultPlan):
    """Rate-based plan: the fault for a key is derived on demand."""

    def __init__(
        self,
        seed: int,
        crash_rate: float,
        delay_rate: float,
        error_rate: float,
        delay_s: float,
    ) -> None:
        super().__init__({}, seed=seed)
        self.crash_rate = crash_rate
        self.delay_rate = delay_rate
        self.error_rate = error_rate
        self.delay_s = delay_s

    def fault_for(self, key: str) -> Optional[Fault]:
        u = stable_unit(self.seed, key)
        if u < self.crash_rate:
            return Fault("crash", times=1)
        if u < self.crash_rate + self.delay_rate:
            return Fault("delay", times=1, delay_s=self.delay_s)
        if u < self.crash_rate + self.delay_rate + self.error_rate:
            return Fault("error", times=1)
        return None


# -- process-global activation ---------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ENV_CACHE: Optional[FaultPlan] = None
_ENV_CACHE_KEY: Optional[str] = None
_IN_WORKER = False


def activate(plan: FaultPlan, export_env: bool = True) -> None:
    """Install *plan* in this process; with *export_env* (default) also
    export it so worker pools created afterwards inherit it."""
    global _ACTIVE
    _ACTIVE = plan
    if export_env and not isinstance(plan, _HashedPlan):
        os.environ[ENV_PLAN] = plan.to_json()


def deactivate() -> None:
    """Remove any active plan (including the environment export)."""
    global _ACTIVE, _ENV_CACHE, _ENV_CACHE_KEY
    _ACTIVE = None
    _ENV_CACHE = None
    _ENV_CACHE_KEY = None
    os.environ.pop(ENV_PLAN, None)


class injected:
    """``with injected(plan):`` — activate for a block, always deactivate."""

    def __init__(self, plan: FaultPlan, export_env: bool = True) -> None:
        self._plan = plan
        self._export = export_env

    def __enter__(self) -> FaultPlan:
        activate(self._plan, export_env=self._export)
        return self._plan

    def __exit__(self, *exc) -> None:
        deactivate()


def mark_worker() -> None:
    """Called by pool initializers: arms real ``os._exit`` crashes (the
    parent process only ever simulates a crash by raising)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


def current_plan() -> Optional[FaultPlan]:
    """The plan in effect: explicit activation, else the environment
    (``REPRO_FAULT_PLAN`` wins over ``REPRO_FAULT_SEED``), else None."""
    global _ENV_CACHE, _ENV_CACHE_KEY
    if _ACTIVE is not None:
        return _ACTIVE
    env_plan = os.environ.get(ENV_PLAN)
    env_seed = os.environ.get(ENV_SEED)
    cache_key = env_plan if env_plan is not None else (
        f"seed:{env_seed}" if env_seed is not None else None
    )
    if cache_key is None:
        return None
    if cache_key != _ENV_CACHE_KEY:
        if env_plan is not None:
            _ENV_CACHE = FaultPlan.from_json(env_plan)
        else:
            _ENV_CACHE = FaultPlan.hashed(int(env_seed))
        _ENV_CACHE_KEY = cache_key
    return _ENV_CACHE


def maybe_inject(key: str, attempt: int = 1) -> None:
    """Fire *key*'s planned fault for (1-based) *attempt*, if any.

    Called from the decode attempt paths (worker body and the serial
    loop).  A no-op without an active plan, so the production hot path
    pays one global read and a None check.
    """
    plan = current_plan()
    if plan is None:
        return
    fault = plan.fault_for(key)
    if fault is None or attempt > fault.times:
        return
    if fault.kind == "delay":
        time.sleep(fault.delay_s)
        return
    if fault.kind == "crash" and _IN_WORKER:
        os._exit(86)  # a real worker death, not an exception
    raise InjectedFault(
        f"injected {fault.kind} for session {key!r} (attempt {attempt})",
        kind=fault.kind,
    )


# -- corrupted observations ------------------------------------------------------


def corrupt_step(step, mode: str = "nan", seed: int = 0):
    """A deterministically malformed copy of a ContextStep.

    Modes: ``"nan"`` poisons one resident's feature vector with NaNs,
    ``"empty"`` drops every observation, ``"alien"`` relabels one
    resident with an id the session has never seen.  Which resident is
    hit is a stable function of *seed*.
    """
    from dataclasses import replace

    if mode == "empty":
        return replace(step, observations={})
    rids = sorted(step.observations)
    if not rids:
        raise ValueError("step has no observations to corrupt")
    victim = rids[int(stable_unit(seed, *rids) * len(rids))]
    obs = dict(step.observations)
    if mode == "nan":
        bad = replace(
            obs[victim], features=tuple(float("nan") for _ in obs[victim].features)
        )
        obs[victim] = bad
    elif mode == "alien":
        obs[f"intruder-{seed}"] = obs.pop(victim)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return replace(step, observations=obs)
