"""Expectation-Maximisation training for Gaussian-emission HMMs.

The paper trains its DBN models with EM (§III-A step 6).  Our datasets are
labelled, so models initialise from supervised counts; this module provides
the EM refinement loop that re-estimates transition matrices and Gaussian
emission parameters from *unlabelled* feature sequences — used both to
polish supervised estimates and in tests demonstrating likelihood ascent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.models.viterbi import forward_backward
from repro.util.validation import check_positive


@dataclass
class HmmParameters:
    """Flat HMM parameters with Gaussian emissions."""

    prior: np.ndarray  # (S,)
    trans: np.ndarray  # (S, S)
    means: np.ndarray  # (S, D)
    covs: np.ndarray  # (S, D, D)

    @property
    def n_states(self) -> int:
        """Number of hidden states."""
        return self.prior.shape[0]


def _gaussian_log_emissions(x: np.ndarray, means: np.ndarray, covs: np.ndarray) -> np.ndarray:
    """(T, S) log N(x_t; mu_s, Sigma_s)."""
    t_len, dim = x.shape
    n_states = means.shape[0]
    out = np.zeros((t_len, n_states))
    for s in range(n_states):
        cov = covs[s] + 1e-6 * np.eye(dim)
        sign, logdet = np.linalg.slogdet(cov)
        inv = np.linalg.inv(cov)
        diff = x - means[s]
        quad = np.einsum("td,de,te->t", diff, inv, diff)
        out[:, s] = -0.5 * (dim * np.log(2 * np.pi) + logdet + quad)
    return out


def em_fit_hmm(
    sequences: Sequence[np.ndarray],
    init: HmmParameters,
    n_iters: int = 20,
    tol: float = 1e-4,
    min_covar: float = 1e-4,
) -> Tuple[HmmParameters, List[float]]:
    """Baum-Welch on feature sequences, starting from *init*.

    Returns the refined parameters and the per-iteration total
    log-likelihood trace (monotonically non-decreasing up to numerics).
    """
    check_positive("n_iters", n_iters)
    if not sequences:
        raise ValueError("need at least one sequence")
    n_states = init.n_states
    dim = init.means.shape[1]
    prior = init.prior.copy()
    trans = init.trans.copy()
    means = init.means.copy()
    covs = init.covs.copy()

    history: List[float] = []
    for _ in range(n_iters):
        prior_acc = np.zeros(n_states)
        trans_acc = np.zeros((n_states, n_states))
        mean_acc = np.zeros((n_states, dim))
        weight_acc = np.zeros(n_states)
        cov_acc = np.zeros((n_states, dim, dim))
        total_ll = 0.0

        for seq in sequences:
            x = np.atleast_2d(np.asarray(seq, dtype=float))
            log_e = _gaussian_log_emissions(x, means, covs)
            gamma, xi_sum, ll = forward_backward(np.log(prior), np.log(trans), log_e)
            total_ll += ll
            prior_acc += gamma[0]
            trans_acc += xi_sum
            weight_acc += gamma.sum(axis=0)
            mean_acc += gamma.T @ x
            for s in range(n_states):
                diff = x - means[s]
                cov_acc[s] += (gamma[:, s][:, None] * diff).T @ diff

        prior = prior_acc / prior_acc.sum()
        row = trans_acc.sum(axis=1, keepdims=True)
        trans = np.where(row > 0, trans_acc / np.where(row > 0, row, 1.0), 1.0 / n_states)
        safe_w = np.maximum(weight_acc, 1e-9)
        means = mean_acc / safe_w[:, None]
        for s in range(n_states):
            covs[s] = cov_acc[s] / safe_w[s] + min_covar * np.eye(dim)

        history.append(total_ll)
        if len(history) >= 2 and abs(history[-1] - history[-2]) < tol * (abs(history[-2]) + 1.0):
            break

    return HmmParameters(prior=prior, trans=trans, means=means, covs=covs), history


def gaussian_log_emissions(x: np.ndarray, params: HmmParameters) -> np.ndarray:
    """Public wrapper: (T, S) emission log-likelihood matrix."""
    return _gaussian_log_emissions(np.atleast_2d(np.asarray(x, dtype=float)), params.means, params.covs)
