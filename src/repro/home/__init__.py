"""Smart-home substrate: floor plan, ADL catalogue, residents, simulator.

Reproduces the paper's PogoPlug testbed as a discrete-event simulation: a
one-bedroom apartment partitioned into 14 sub-regions (SR1-SR14), the
Table III activity vocabulary (11 macro ADLs, 5 postural and 5 oral-gestural
micro activities), and a *coupled* two-resident behaviour engine that
generates ground-truth timelines exhibiting the paper's Propositions 1-4
(intra/inter-user spatiotemporal correlations and constraints).
"""

from repro.home.activities import (
    ActivityProfile,
    GESTURAL_ACTIVITIES,
    MACRO_ACTIVITIES,
    POSTURAL_ACTIVITIES,
    SHAREABLE_ACTIVITIES,
    activity_profile,
)
from repro.home.behavior import BehaviorEngine, MacroSegment, MicroSlice
from repro.home.layout import ApartmentLayout, SubRegion, default_layout
from repro.home.resident import Resident
from repro.home.simulator import HomeSimulator, SimulationResult

__all__ = [
    "ActivityProfile",
    "GESTURAL_ACTIVITIES",
    "MACRO_ACTIVITIES",
    "POSTURAL_ACTIVITIES",
    "SHAREABLE_ACTIVITIES",
    "activity_profile",
    "BehaviorEngine",
    "MacroSegment",
    "MicroSlice",
    "ApartmentLayout",
    "SubRegion",
    "default_layout",
    "Resident",
    "HomeSimulator",
    "SimulationResult",
]
