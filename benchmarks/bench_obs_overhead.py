"""Bench: observability overhead — instrumented vs disabled decode.

The obs subsystem promises that enabling metrics + tracing costs < 3% on
the decode hot paths (off-by-default flags, instrument handles cached at
construction, per-decode/per-push granularity).  This bench enforces the
invariant: it fits a c2 engine on a small simulated corpus, then runs
interleaved min-of-N timing rounds of the same workload with obs fully
disabled and fully enabled (metrics and tracing), for both offline decode
and fixed-lag streaming.  The min over rounds discounts scheduler noise
on shared runners; interleaving the two modes keeps thermal/cache drift
from biasing either side.

Decoded labels must be bit-identical across modes, and the enabled-mode
metrics snapshot is written to ``benchmarks/out/metrics.json`` (with run
provenance) so CI can archive it as a build artifact.

Run with ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.engine import CaceEngine
from repro.core.smoother import OnlineSmoother
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import train_test_split
from repro.obs import provenance
from repro.obs import runtime as obs


def _decode_workload(model, sequences):
    """Offline decode of every session; returns labels for bit-identity."""
    return [model.decode(seq) for seq in sequences]


def _stream_workload(model, sequences, lag):
    """Fixed-lag streaming of every session through a fresh smoother
    (fresh per call so instrument handles resolve under the current
    enable/disable state, as serving would)."""
    return [OnlineSmoother(model, lag=lag).run(seq) for seq in sequences]


def _time_modes(workload, rounds):
    """Interleaved min-of-N wall-clock for obs-off vs obs-on.

    Returns ``(t_off, t_on, labels_off, labels_on)``; every round runs
    both modes back to back so slow-machine drift hits them equally.
    """
    t_off = float("inf")
    t_on = float("inf")
    labels_off = labels_on = None
    for _ in range(rounds):
        obs.disable()
        t0 = time.perf_counter()
        labels_off = workload()
        t_off = min(t_off, time.perf_counter() - t0)

        obs.enable(metrics=True, tracing=True)
        t0 = time.perf_counter()
        labels_on = workload()
        t_on = min(t_on, time.perf_counter() - t0)
    return t_off, t_on, labels_off, labels_on


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.03,
        help="max allowed fractional overhead (default 0.03 = 3%%)",
    )
    # The workload must be big enough that per-run timing noise (easily
    # a few ms on shared runners) stays well under the 3% budget.
    parser.add_argument("--rounds", type=int, default=7, help="timing rounds per mode")
    parser.add_argument("--homes", type=int, default=1)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--duration", type=float, default=3600.0)
    parser.add_argument("--lag", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--metrics-out",
        default=str(Path(__file__).parent / "out" / "metrics.json"),
        help="where to write the enabled-mode metrics snapshot",
    )
    args = parser.parse_args(argv)

    dataset = generate_cace_dataset(
        n_homes=args.homes,
        sessions_per_home=args.sessions,
        duration_s=args.duration,
        seed=args.seed,
    )
    train, test = train_test_split(dataset, 0.5, seed=args.seed)
    obs.disable()  # fit untimed and uninstrumented
    engine = CaceEngine(strategy="c2", seed=args.seed).fit(train)
    model = engine.model_
    sequences = test.sequences

    failures = []
    rows = []
    try:
        # Warm each path once (lazy imports, memoised candidate lists).
        _decode_workload(model, sequences[:1])
        _stream_workload(model, sequences[:1], args.lag)

        workloads = [
            ("offline_decode", lambda: _decode_workload(model, sequences)),
            ("stream_lag", lambda: _stream_workload(model, sequences, args.lag)),
        ]
        results = {}
        for name, workload in workloads:
            t_off, t_on, labels_off, labels_on = _time_modes(workload, args.rounds)
            overhead = t_on / t_off - 1.0
            results[name] = {
                "off_seconds": t_off,
                "on_seconds": t_on,
                "overhead_fraction": overhead,
            }
            rows.append(
                f"{name:>16s}: off {t_off:.4f}s  on {t_on:.4f}s  "
                f"overhead {overhead * 100:+.2f}%"
            )
            if labels_off != labels_on:
                failures.append(f"{name}: labels differ with instrumentation on")
            if overhead > args.threshold:
                failures.append(
                    f"{name}: overhead {overhead * 100:.2f}% exceeds "
                    f"{args.threshold * 100:.1f}%"
                )

        # Snapshot the enabled-mode registry (run the workloads once more
        # against a fresh registry so counts describe exactly one pass).
        obs.reset()
        obs.enable(metrics=True, tracing=True)
        _decode_workload(model, sequences)
        _stream_workload(model, sequences, args.lag)
        snapshot = {
            "results": results,
            "metrics": obs.get_registry().snapshot(),
            "trace_roots": len(obs.get_tracer().roots()),
            "provenance": provenance(),
        }
    finally:
        obs.disable()

    out = Path(args.metrics_out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")

    print("\n".join(rows))
    print(f"metrics snapshot -> {out}")
    for failure in failures:
        print(f"OBS OVERHEAD FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
