"""repro — a reproduction of CACE (Alam, Roy, Misra, Taylor; ICDCS 2016).

CACE recognises the *macro* activities (cooking, dining, watching TV, ...)
of multiple residents in a smart home from postural/oral-gestural wearable
sensing plus ambient context, by (a) modelling the residents jointly with a
loosely-coupled Hierarchical Dynamic Bayesian Network and (b) pruning the
coupled model's joint state space with data-mined behavioural correlations
and constraints.

Typical use::

    from repro import CaceEngine, generate_cace_dataset, train_test_split

    dataset = generate_cace_dataset(n_homes=2, sessions_per_home=3, seed=1)
    train, test = train_test_split(dataset, 0.7, seed=2)
    engine = CaceEngine(strategy="c2").fit(train)
    labels = engine.predict(test.sequences[0])

Packages
--------
``repro.sensors``   wearable + ambient sensing substrate (IMU, PIR, iBeacon)
``repro.home``      smart-home simulator with coupled resident behaviour
``repro.datasets``  CACE / CASAS-style corpus generation and containers
``repro.micro``     micro-activity recognition (features, RF, DA clustering)
``repro.mining``    Apriori, correlation miner, constraint miner
``repro.models``    baselines: per-user HMM, coupled HMM, factorial CRF
``repro.core``      the CACE contribution: (C)HDBN + pruning + engine
``repro.eval``      metrics and per-table/figure experiment drivers
``repro.obs``       observability: metrics, tracing, provenance (off by default)
"""

from repro.core import CaceEngine, CoupledHdbn, SingleUserHdbn
from repro.core.loosely_coupled import NChainHdbn
from repro.core.smoother import OnlineSmoother
from repro.datasets import (
    Dataset,
    LabeledSequence,
    generate_cace_dataset,
    generate_casas_dataset,
    train_test_split,
)
from repro.mining import ConstraintMiner, CorrelationMiner
from repro.models import CoupledHmm, FactorialCrf, MacroHmm
from repro.util.serialization import (
    load_dataset,
    load_rule_set,
    save_dataset,
    save_rule_set,
)

__version__ = "1.0.0"

__all__ = [
    "CaceEngine",
    "CoupledHdbn",
    "SingleUserHdbn",
    "NChainHdbn",
    "OnlineSmoother",
    "Dataset",
    "LabeledSequence",
    "generate_cace_dataset",
    "generate_casas_dataset",
    "train_test_split",
    "ConstraintMiner",
    "CorrelationMiner",
    "CoupledHmm",
    "FactorialCrf",
    "MacroHmm",
    "save_dataset",
    "load_dataset",
    "save_rule_set",
    "load_rule_set",
    "__version__",
]
