"""Unit + integration tests for the CACE core (state space, HDBNs, engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CaceEngine,
    CoupledHdbn,
    PruningStrategy,
    STRATEGIES,
    SingleUserHdbn,
    StateSpaceBuilder,
    UserState,
    duration_error,
    extract_segments,
    match_segments,
)
from repro.core.duration import Segment
from repro.mining.initial_rules import initial_rule_set


class TestStateSpaceBuilder:
    def test_candidates_cover_truth(self, cace_split, constraint_model):
        train, _ = cace_split
        builder = StateSpaceBuilder(constraint_model, max_states_per_user=120)
        seq = train.sequences[0]
        rid = seq.resident_ids[0]
        hits = total = 0
        for step, truth in zip(seq.steps, seq.truths):
            states = builder.candidate_states(step.observations[rid])
            total += 1
            hits += UserState(truth[rid].macro, truth[rid].subloc) in states
        assert hits / total > 0.9

    def test_candidates_never_empty(self, cace_split, constraint_model):
        train, _ = cace_split
        builder = StateSpaceBuilder(constraint_model, max_states_per_user=30)
        seq = train.sequences[0]
        for step in seq.steps:
            for rid in seq.resident_ids:
                assert builder.candidate_states(step.observations[rid])

    def test_cap_respected(self, cace_split, constraint_model):
        # The builder guarantees one state per macro, so the effective cap
        # is max(max_states_per_user, n_macro).
        train, _ = cace_split
        builder = StateSpaceBuilder(constraint_model, max_states_per_user=10)
        seq = train.sequences[0]
        obs = seq.steps[0].observations[seq.resident_ids[0]]
        states = builder.candidate_states(obs)
        assert len(states) <= max(10, constraint_model.n_macro)

    def test_every_macro_represented(self, cace_split, constraint_model):
        # A macro must never be silently unreachable: PIR misses would
        # otherwise cap attainable accuracy from the candidate stage alone.
        train, _ = cace_split
        builder = StateSpaceBuilder(constraint_model, max_states_per_user=30)
        seq = train.sequences[0]
        for step in seq.steps[:20]:
            for rid in seq.resident_ids:
                macros = {s.macro for s in builder.candidate_states(step.observations[rid])}
                assert macros == set(constraint_model.macro_index.labels)

    def test_item_sets_include_state_and_observation(self, cace_split, constraint_model):
        train, _ = cace_split
        builder = StateSpaceBuilder(constraint_model)
        seq = train.sequences[0]
        obs = seq.steps[0].observations[seq.resident_ids[0]]
        items = builder.state_item_set("u1", UserState("dining", "SR4"), obs)
        attrs = {i.attr for i in items}
        assert {"macro", "posture", "subloc", "room"} <= attrs
        values = {i.value for i in items}
        assert "dining" in values and "SR4" in values


class TestDuration:
    def test_paper_example(self):
        # Cooking 10:05-10:35 true vs 10:10-10:39 predicted -> 9/30 = 30%.
        truth = [Segment("cooking", 300.0, 2100.0)]
        predicted = [Segment("cooking", 600.0, 2340.0)]
        matches = match_segments(truth, predicted)
        true_seg, match = matches[0]
        err = (abs(match.start - true_seg.start) + abs(match.end - true_seg.end)) / true_seg.duration
        assert err == pytest.approx(0.3)

    def test_extract_segments(self):
        labels = ["a", "a", "b", "b", "b", "a"]
        segments = extract_segments(labels, 15.0)
        assert segments == [
            Segment("a", 0.0, 30.0),
            Segment("b", 30.0, 75.0),
            Segment("a", 75.0, 90.0),
        ]

    def test_perfect_prediction_zero_error(self):
        labels = ["a"] * 5 + ["b"] * 5
        assert duration_error(labels, labels, 15.0, exclude=()) == 0.0

    def test_unmatched_segment_counts_as_miss(self):
        truth = ["a"] * 4 + ["b"] * 4
        predicted = ["a"] * 4 + ["c"] * 4
        err = duration_error(truth, predicted, 15.0, exclude=())
        assert err == pytest.approx(0.5)  # "a" perfect, "b" fully missed

    def test_overrun_prediction_penalised(self):
        truth = ["a"] * 4 + ["b"] * 4
        predicted = ["a"] * 8  # "a" overruns by the whole "b" segment
        err = duration_error(truth, predicted, 15.0, exclude=())
        assert err == pytest.approx(1.0)

    def test_random_class_excluded(self):
        truth = ["random"] * 4
        predicted = ["a"] * 4
        assert duration_error(truth, predicted, 15.0) == 0.0

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_identity_has_zero_error(self, labels):
        assert duration_error(labels, labels, 15.0, exclude=()) == 0.0

    def test_misaligned_sequences_rejected(self):
        with pytest.raises(ValueError):
            duration_error(["a"], ["a", "b"], 15.0)


class TestPruningStrategy:
    def test_all_strategies_valid(self):
        for name in STRATEGIES:
            PruningStrategy(name)

    def test_capabilities(self):
        assert PruningStrategy("c2").uses_correlations
        assert PruningStrategy("c2").uses_constraints
        assert PruningStrategy("ncs").coupled
        assert not PruningStrategy("ncr").coupled
        assert not PruningStrategy("nh").uses_correlations

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            PruningStrategy("magic")


class TestCoupledHdbn:
    @pytest.fixture(scope="class")
    def fitted(self, cace_split, constraint_model, rule_set):
        train, _ = cace_split
        model = CoupledHdbn(
            constraint_model=constraint_model,
            rule_set=rule_set,
            max_states_per_user=20,
            seed=3,
        )
        model.fit(train)
        return model

    def test_decode_outputs_valid_labels(self, cace_split, fitted):
        _, test = cace_split
        seq = test.sequences[0]
        pred = fitted.decode(seq)
        for rid in seq.resident_ids[:2]:
            assert len(pred[rid]) == len(seq)
            assert set(pred[rid]) <= set(fitted.constraint_model.macro_index.labels)

    def test_stats_populated(self, cace_split, fitted):
        _, test = cace_split
        fitted.decode(test.sequences[0])
        stats = fitted.last_stats
        assert stats.steps == len(test.sequences[0])
        assert stats.joint_states > 0
        assert stats.mean_joint_states > 1

    def test_pruning_shrinks_the_trellis(self, cace_split, constraint_model, rule_set):
        train, test = cace_split
        pruned = CoupledHdbn(
            constraint_model=constraint_model, rule_set=rule_set,
            max_states_per_user=20, seed=3,
        ).fit(train)
        unpruned = CoupledHdbn(
            constraint_model=constraint_model, rule_set=None,
            max_states_per_user=20, seed=3,
        ).fit(train)
        seq = test.sequences[0]
        pruned.decode(seq)
        unpruned.decode(seq)
        assert pruned.last_stats.joint_states <= unpruned.last_stats.joint_states

    def test_posterior_marginals_normalised(self, cace_split, fitted):
        _, test = cace_split
        seq = test.sequences[0].slice(0, 25)
        marginals = fitted.posterior_marginals(seq)
        for gamma in marginals.values():
            assert gamma.shape == (25, 11)
            assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-6)

    def test_single_resident_rejected(self, cace_split, fitted):
        _, test = cace_split
        seq = test.sequences[0]
        lone = type(seq)(
            home_id=seq.home_id,
            resident_ids=seq.resident_ids[:1],
            step_s=seq.step_s,
            steps=seq.steps,
            truths=seq.truths,
        )
        with pytest.raises(ValueError):
            fitted.decode(lone)


class TestSingleUserHdbn:
    def test_decode_all_residents(self, cace_split, constraint_model, rule_set):
        train, test = cace_split
        model = SingleUserHdbn(
            constraint_model=constraint_model, rule_set=rule_set,
            max_states_per_user=20, seed=5,
        ).fit(train)
        seq = test.sequences[0]
        pred = model.decode(seq)
        assert set(pred) == set(seq.resident_ids)
        for labels in pred.values():
            assert len(labels) == len(seq)

    def test_frame_wise_mode(self, cace_split, constraint_model, rule_set):
        train, test = cace_split
        model = SingleUserHdbn(
            constraint_model=constraint_model, rule_set=rule_set,
            temporal=False, max_states_per_user=20, seed=5,
        ).fit(train)
        seq = test.sequences[0]
        labels = model.decode_user(seq, seq.resident_ids[0])
        assert len(labels) == len(seq)


class TestEngine:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_runs(self, cace_split, strategy):
        train, test = cace_split
        engine = CaceEngine(strategy=strategy, max_states_per_user=16, seed=9)
        engine.fit(train)
        seq = test.sequences[0]
        pred = engine.predict(seq)
        for rid in pred:
            assert len(pred[rid]) == len(seq)
        assert engine.build_seconds > 0
        assert engine.decode_seconds > 0

    def test_c2_beats_nh(self, cace_split):
        train, test = cace_split

        def accuracy(strategy):
            engine = CaceEngine(strategy=strategy, max_states_per_user=16, seed=9)
            engine.fit(train)
            hits = total = 0
            for seq in test.sequences:
                pred = engine.predict(seq)
                for rid in pred:
                    gold = seq.macro_labels(rid)
                    hits += sum(p == g for p, g in zip(pred[rid], gold))
                    total += len(gold)
            return hits / total

        # On the scaled-down fixture corpus the flat HMM can get lucky, so
        # the ordering is asserted with a small tolerance; the full-shape
        # claim (C2 >> NH by ~20 points) is benchmarked in fig11.
        assert accuracy("c2") > accuracy("nh") - 0.02

    def test_initial_rules_accepted(self, cace_split):
        train, test = cace_split
        engine = CaceEngine(
            strategy="c2", initial_rules=initial_rule_set(),
            max_states_per_user=16, seed=9,
        )
        engine.fit(train)
        assert engine.rule_set_ is not None
        assert engine.rule_set_.n_rules >= initial_rule_set().n_rules
        engine.predict(test.sequences[0])

    def test_predict_before_fit_raises(self, cace_split):
        _, test = cace_split
        with pytest.raises(RuntimeError):
            CaceEngine().predict(test.sequences[0])

    def test_posterior_for_c2(self, cace_split):
        train, test = cace_split
        engine = CaceEngine(strategy="c2", max_states_per_user=16, seed=9)
        engine.fit(train)
        seq = test.sequences[0].slice(0, 20)
        marginals = engine.posterior_marginals(seq)
        for gamma in marginals.values():
            assert np.allclose(gamma.sum(axis=1), 1.0, atol=1e-6)

    def test_casas_mode_no_gestural(self, casas_dataset):
        from repro.datasets import train_test_split

        train, test = train_test_split(casas_dataset, 0.5, seed=3)
        engine = CaceEngine(strategy="c2", max_states_per_user=16, seed=9)
        engine.fit(train)
        pred = engine.predict(test.sequences[0])
        for labels in pred.values():
            assert set(labels) <= set(casas_dataset.macro_vocab)
