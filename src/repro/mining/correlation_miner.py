"""Correlation mining: deterministic must / must-not relationships (§V-B).

Runs Apriori over context transactions and distils two deterministic
structures used to prune the coupled model's joint state space:

* **forcing rules** — high-confidence association rules whose consequent is
  a hidden attribute at time t (e.g. ``U1:posture=cycling & U1:subloc=SR1
  => U1:macro=exercising``): a joint state hypothesis that fires a rule's
  antecedent but contradicts its consequent is infeasible;
* **exclusion rules** — frequent element pairs across users that *never*
  co-occur despite ample expected opportunity (e.g. both residents in the
  single-occupancy bathroom): any joint state containing both is pruned.

Both kinds are indexed by trigger item so per-candidate consistency checks
stay cheap at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datasets.trace import LabeledSequence
from repro.mining.apriori import Apriori
from repro.mining.context_rules import Item, encode_dataset
from repro.mining.rules import AssociationRule, ExclusionRule, merge_redundant


@dataclass
class CorrelationRuleSet:
    """Mined deterministic correlations with fast consistency checking."""

    forcing_rules: List[AssociationRule] = field(default_factory=list)
    exclusions: List[ExclusionRule] = field(default_factory=list)
    _forcing_by_trigger: Dict[Item, List[AssociationRule]] = field(
        default_factory=dict, repr=False
    )
    _exclusion_partners: Dict[Item, Set[Item]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.reindex()

    def reindex(self) -> None:
        """Rebuild trigger indexes after mutating the rule lists."""
        self._forcing_by_trigger = {}
        for rule in self.forcing_rules:
            trigger = min(rule.antecedent)
            self._forcing_by_trigger.setdefault(trigger, []).append(rule)
        self._exclusion_partners = {}
        for excl in self.exclusions:
            if not excl.hard:
                continue  # soft exclusions penalise, they never prune
            self._exclusion_partners.setdefault(excl.a, set()).add(excl.b)
            self._exclusion_partners.setdefault(excl.b, set()).add(excl.a)

    @property
    def hard_exclusions(self):
        """Exclusions safe to prune on (physically grounded)."""
        return [e for e in self.exclusions if e.hard]

    @property
    def soft_exclusions(self):
        """Behavioural exclusions, applied as log penalties."""
        return [e for e in self.exclusions if not e.hard]

    @property
    def n_rules(self) -> int:
        """Total rule count (forcing + exclusion)."""
        return len(self.forcing_rules) + len(self.exclusions)

    def is_consistent(self, items: FrozenSet[Item]) -> bool:
        """Can this joint assignment coexist with every mined rule?"""
        for item in items:
            partners = self._exclusion_partners.get(item)
            if partners and not partners.isdisjoint(items):
                return False
        for item in items:
            for rule in self._forcing_by_trigger.get(item, ()):
                if not rule.satisfied_by(items):
                    return False
        return True

    def single_user(self) -> "CorrelationRuleSet":
        """Rules involving a single user slot (plus ambient context).

        Used both for per-user state pruning and by the NCR strategy, which
        must not see any cross-user relationship.  Rules phrased on other
        user slots (symmetrised mirrors) are canonicalised to ``u1`` and
        deduplicated.
        """

        def _canon(item: Item) -> Item:
            return Item("u1", item.time, item.attr, item.value) if item.slot != "amb" else item

        seen = set()
        forcing = []
        for rule in self.forcing_rules:
            user_slots = {i.slot for i in rule.antecedent if i.slot != "amb"} | {
                rule.consequent.slot
            }
            user_slots.discard("amb")
            if len(user_slots) != 1:
                continue
            canonical = AssociationRule(
                antecedent=frozenset(_canon(i) for i in rule.antecedent),
                consequent=_canon(rule.consequent),
                support=rule.support,
                confidence=rule.confidence,
            )
            key = (canonical.antecedent, canonical.consequent)
            if key not in seen:
                seen.add(key)
                forcing.append(canonical)
        return CorrelationRuleSet(forcing_rules=forcing, exclusions=[])

    def cross_user(self) -> "CorrelationRuleSet":
        """Rules that relate different user slots (plus all exclusions)."""
        forcing = [
            r
            for r in self.forcing_rules
            if len({i.slot for i in r.antecedent if i.slot != "amb"} | {r.consequent.slot}) > 1
        ]
        return CorrelationRuleSet(forcing_rules=forcing, exclusions=list(self.exclusions))

    def merge(self, other: "CorrelationRuleSet") -> "CorrelationRuleSet":
        """Union of two rule sets (used to add user-supplied initial rules)."""
        seen_f = {(r.antecedent, r.consequent) for r in self.forcing_rules}
        forcing = list(self.forcing_rules)
        for rule in other.forcing_rules:
            if (rule.antecedent, rule.consequent) not in seen_f:
                forcing.append(rule)
        seen_e = {frozenset((e.a, e.b)) for e in self.exclusions}
        exclusions = list(self.exclusions)
        for excl in other.exclusions:
            if frozenset((excl.a, excl.b)) not in seen_e:
                exclusions.append(excl)
        return CorrelationRuleSet(forcing_rules=forcing, exclusions=exclusions)

    def describe(self, limit: Optional[int] = None) -> str:
        """Human-readable rule dump (Table IV style)."""
        lines = [str(r) for r in self.forcing_rules]
        lines.extend(str(e) for e in self.exclusions)
        if limit is not None:
            lines = lines[:limit]
        return "\n".join(lines)


@dataclass
class CorrelationMiner:
    """Mines a :class:`CorrelationRuleSet` from labelled sequences.

    Parameters
    ----------
    min_support / min_confidence:
        Apriori thresholds; the paper's operating point is 4% / 99%.
    hidden_attrs:
        Consequent attributes worth forcing (hidden state components).
    min_expected_cooccurrence:
        An exclusion is only claimed when the two elements were expected to
        co-occur at least this many times under independence — guards
        against declaring "must not" from sparse data.
    """

    min_support: float = 0.04
    min_confidence: float = 0.99
    max_itemset_size: int = 3
    hidden_attrs: Tuple[str, ...] = ("macro", "subloc")
    min_expected_cooccurrence: float = 10.0
    symmetrize: bool = True

    def mine(self, sequences: Sequence[LabeledSequence]) -> CorrelationRuleSet:
        """Run the full pipeline: encode, Apriori, filter, index."""
        transactions = encode_dataset(sequences, symmetrize=self.symmetrize)
        return self.mine_transactions(transactions)

    def mine_transactions(
        self, transactions: Sequence[FrozenSet[Item]]
    ) -> CorrelationRuleSet:
        """Mine from pre-encoded transactions."""
        apriori = Apriori(
            min_support=self.min_support,
            min_confidence=self.min_confidence,
            max_itemset_size=self.max_itemset_size,
        )
        raw_rules = apriori.mine_rules(transactions, consequent_attrs=self.hidden_attrs)
        forcing = merge_redundant(self._filter_forcing(raw_rules))
        exclusions = self._mine_exclusions(transactions, apriori)
        return CorrelationRuleSet(forcing_rules=forcing, exclusions=exclusions)

    # -- filters --------------------------------------------------------------------

    def _filter_forcing(self, rules: Iterable[AssociationRule]) -> List[AssociationRule]:
        """Keep same-time rules usable for state pruning.

        The antecedent must live entirely in the current slice and concern a
        single user (plus optionally ambient evidence); the consequent must
        be a hidden attribute of a user at time t.  Rules whose antecedent
        already contains the consequent's attribute are tautological.
        """
        kept: List[AssociationRule] = []
        for rule in rules:
            if rule.consequent.time != "t" or rule.consequent.slot == "amb":
                continue
            if any(item.time != "t" for item in rule.antecedent):
                continue
            ant_attrs = {
                (item.slot, item.attr) for item in rule.antecedent if item.slot != "amb"
            }
            if (rule.consequent.slot, rule.consequent.attr) in ant_attrs:
                continue
            # Room items duplicate sub-location information; a rule whose
            # antecedent is only the enclosing room of the consequent is
            # uninformative for pruning.
            if all(item.attr == "room" for item in rule.antecedent):
                continue
            kept.append(rule)
        return kept

    def _mine_exclusions(
        self, transactions: Sequence[FrozenSet[Item]], apriori: Apriori
    ) -> List[ExclusionRule]:
        """Frequent cross-user element pairs that never co-occur."""
        n = len(transactions)
        itemsets = apriori.itemsets_
        singles = {next(iter(s)): sup for s, sup in itemsets.supports.items() if len(s) == 1}
        # Candidate pairs: same attribute + value, different user slots,
        # current slice (the "two people in one bathroom" shape), plus
        # cross-user macro pairs (the "sleeping vs vacuuming" shape).
        items = [i for i in singles if i.slot.startswith("u") and i.time == "t"]
        pair_count: Dict[Tuple[Item, Item], int] = {}
        candidates: List[Tuple[Item, Item]] = []
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                if a.slot == b.slot:
                    continue
                same_place = a.attr == b.attr == "subloc" and a.value == b.value
                macro_pair = a.attr == b.attr == "macro"
                if not (same_place or macro_pair):
                    continue
                expected = singles[a] * singles[b] * n
                if expected < self.min_expected_cooccurrence:
                    continue
                candidates.append((a, b))
                pair_count[(a, b)] = 0
        if not candidates:
            return []
        for transaction in transactions:
            for pair in candidates:
                if pair[0] in transaction and pair[1] in transaction:
                    pair_count[pair] += 1
        # "A => not B" holds at the miner's confidence level when the
        # observed co-occurrence rate P(B | A) stays below 1 - minConf.
        # Requiring literally zero co-occurrences is brittle: a single
        # mislabelled step (or a hand-off through a doorway) would erase a
        # true exclusion such as the single-occupancy bathroom.
        #
        # Same-place pairs are *hard* (two residents genuinely cannot both
        # occupy the bathroom); macro-macro pairs are *soft* — "we never saw
        # them watch TV while the other played games" is behaviour, not
        # physics, and the recognisers penalise rather than prune it.
        tolerance = 1.0 - self.min_confidence
        exclusions = []
        for (a, b) in candidates:
            occurrences = min(singles[a], singles[b]) * n
            if pair_count[(a, b)] <= tolerance * occurrences:
                exclusions.append(
                    ExclusionRule(
                        a=a,
                        b=b,
                        support_a=singles[a],
                        support_b=singles[b],
                        hard=(a.attr == "subloc"),
                    )
                )
        return exclusions
