"""End-to-end CACE engine (the Fig 2 pipeline).

``CaceEngine.fit`` runs the context miners appropriate to the selected
pruning strategy and assembles the recogniser; ``predict`` decodes macro
activities for a session.  Build and decode wall-clock times are recorded
in a :class:`~repro.util.timer.Stopwatch` — the paper's computational-
overhead metric (Fig 11b, "total time required to build entire model").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.chdbn import CoupledHdbn
from repro.core.hdbn import SingleUserHdbn
from repro.core.loosely_coupled import NChainHdbn
from repro.core.pruning import PruningStrategy
from repro.datasets.trace import Dataset, LabeledSequence
from repro.mining.constraint_miner import ConstraintMiner
from repro.mining.correlation_miner import CorrelationMiner, CorrelationRuleSet
from repro.models.hmm import MacroHmm
from repro.util.rng import RandomState, ensure_rng
from repro.util.timer import Stopwatch


@dataclass
class CaceEngine:
    """High-level recogniser with pluggable pruning strategy.

    Parameters
    ----------
    strategy:
        ``"nh"`` / ``"ncr"`` / ``"ncs"`` / ``"c2"`` (the CACE default).
    min_support / min_confidence:
        Apriori thresholds for the correlation miner (paper: 4% / 99%).
    initial_rules:
        Optional user-seeded rules (Base application, Fig 12); merged with
        mined rules for correlation-using strategies.
    """

    strategy: str = "c2"
    min_support: float = 0.04
    min_confidence: float = 0.99
    initial_rules: Optional[CorrelationRuleSet] = None
    gmm_components: int = 4
    max_states_per_user: int = 36
    seed: RandomState = None
    stopwatch: Stopwatch = field(default_factory=Stopwatch, init=False)
    rule_set_: Optional[CorrelationRuleSet] = field(default=None, init=False)
    model_: object = field(default=None, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._strategy = PruningStrategy(self.strategy)
        self._rng = ensure_rng(self.seed)

    # -- training ------------------------------------------------------------------

    def fit(self, train: Dataset) -> "CaceEngine":
        """Mine rules/constraints per the strategy and build the model."""
        self.stopwatch = Stopwatch()
        strategy = self._strategy

        if strategy.name == "nh":
            with self.stopwatch.phase("train"):
                self.model_ = MacroHmm().fit(train)
            return self

        rule_set: Optional[CorrelationRuleSet] = None
        if strategy.uses_correlations:
            with self.stopwatch.phase("correlation_mining"):
                miner = CorrelationMiner(
                    min_support=self.min_support, min_confidence=self.min_confidence
                )
                rule_set = miner.mine(train.sequences)
                if self.initial_rules is not None:
                    rule_set = rule_set.merge(self.initial_rules)
        elif self.initial_rules is not None:
            rule_set = self.initial_rules
        self.rule_set_ = rule_set

        with self.stopwatch.phase("constraint_mining"):
            constraint_model = ConstraintMiner().fit(
                train.sequences,
                train.macro_vocab,
                train.postural_vocab,
                train.gestural_vocab if train.has_gestural else (),
                train.subloc_vocab,
            )

        n_residents = max(
            (len(seq.resident_ids) for seq in train.sequences), default=2
        )
        with self.stopwatch.phase("train"):
            if strategy.name == "ncr":
                model = SingleUserHdbn(
                    constraint_model=constraint_model,
                    rule_set=rule_set,
                    gmm_components=self.gmm_components,
                    max_states_per_user=self.max_states_per_user,
                    temporal=False,
                    seed=self._rng.integers(0, 2**31),
                )
            elif n_residents > 2:
                # The paper's 3-4 occupant conjecture: the N-chain model.
                model = NChainHdbn(
                    constraint_model=constraint_model,
                    rule_set=rule_set if strategy.name == "c2" else None,
                    gmm_components=self.gmm_components,
                    seed=self._rng.integers(0, 2**31),
                )
            else:  # ncs / c2 on a resident pair
                model = CoupledHdbn(
                    constraint_model=constraint_model,
                    rule_set=rule_set if strategy.name == "c2" else None,
                    gmm_components=self.gmm_components,
                    max_states_per_user=self.max_states_per_user,
                    seed=self._rng.integers(0, 2**31),
                )
            model.fit(train)
            self.model_ = model
        return self

    # -- inference ------------------------------------------------------------------

    def predict(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Per-resident macro labels for one session."""
        if self.model_ is None:
            raise RuntimeError("engine is not fitted")
        with self.stopwatch.phase("decode"):
            if isinstance(self.model_, MacroHmm):
                return self.model_.predict(seq)
            return self.model_.decode(seq)

    def predict_dataset(self, dataset: Dataset) -> Dict[str, Dict[str, List[str]]]:
        """Predictions keyed by a per-sequence identifier."""
        out: Dict[str, Dict[str, List[str]]] = {}
        for i, seq in enumerate(dataset.sequences):
            out[f"{seq.home_id}:{i}"] = self.predict(seq)
        return out

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Posterior macro marginals per resident (scores for ROC/PRC)."""
        if isinstance(self.model_, MacroHmm):
            return self.model_.predict_proba(seq)
        if isinstance(self.model_, (CoupledHdbn, NChainHdbn)):
            return self.model_.posterior_marginals(seq)
        raise NotImplementedError(
            f"posterior marginals unavailable for strategy {self.strategy!r}"
        )

    @property
    def build_seconds(self) -> float:
        """Mining + training wall-clock (the paper's overhead metric)."""
        return sum(
            secs for name, secs in self.stopwatch.phases.items() if name != "decode"
        )

    @property
    def decode_seconds(self) -> float:
        """Accumulated decoding wall-clock."""
        return self.stopwatch.phases.get("decode", 0.0)
