"""Serving facade: interleaved sessions, eviction, and stats isolation.

The key invariant: arbitrary interleavings of ``push`` across sessions
commit exactly the labels a sequential one-session-at-a-time replay
would, because every session has its own smoother (and the smoother
re-pins the shared model's ``last_stats`` on every push).
"""

import pytest

from repro.core.api import DecodeStats
from repro.core.engine import CaceEngine
from repro.serve import SessionRouter


@pytest.fixture(scope="module")
def engine(cace_split):
    train, _ = cace_split
    return CaceEngine(strategy="c2", seed=11).fit(train)


@pytest.fixture(scope="module")
def test_seqs(cace_split):
    _, test = cace_split
    return test.sequences[:2]


def _sequential_reference(engine, seqs, lag):
    out = []
    for seq in seqs:
        out.append(engine.step_filter(lag=lag).run(seq))
    return out


class TestInterleaving:
    def test_interleaved_equals_sequential(self, engine, test_seqs):
        lag = 3
        reference = _sequential_reference(engine, test_seqs, lag)
        router = SessionRouter(engine, lag=lag)
        horizon = max(len(seq) for seq in test_seqs)
        for t in range(horizon):
            for i, seq in enumerate(test_seqs):
                if t < len(seq):
                    router.push(f"s{i}", seq.steps[t])
        labels = router.close_all()
        for i, expected in enumerate(reference):
            assert labels[f"s{i}"] == expected

    def test_lag_zero_is_pure_filtering(self, engine, test_seqs):
        seq = test_seqs[0]
        router = SessionRouter(engine, lag=0)
        committed = [router.push("s", step) for step in seq.steps]
        # With no lag every push commits its own step immediately.
        assert all(labels is not None for labels in committed)
        final = router.close_session("s")
        for rid in seq.resident_ids:
            assert final[rid] == [labels[rid] for labels in committed]

    def test_stats_isolated_per_session(self, engine, test_seqs):
        router = SessionRouter(engine, lag=2)
        for t in range(4):
            router.push("a", test_seqs[0].steps[t])
            router.push("b", test_seqs[1].steps[t])
        a, b = router.session("a").stats, router.session("b").stats
        assert a is not b
        assert a.steps == 4 and b.steps == 4
        solo = engine.step_filter(lag=2)
        solo.start(test_seqs[0])
        for t in range(4):
            solo.push(t)
        assert (a.joint_states, a.transition_entries) == (
            solo.stats.joint_states,
            solo.stats.transition_entries,
        )


class TestLifecycle:
    def test_eviction_frees_state_and_merges_stats(self, engine, test_seqs):
        router = SessionRouter(engine, lag=1, max_sessions=1)
        router.push("old", test_seqs[0].steps[0])
        router.push("old", test_seqs[0].steps[1])
        assert router.aggregate_stats == DecodeStats()
        router.push("new", test_seqs[1].steps[0])
        assert "old" not in router
        assert "new" in router
        assert len(router) == 1
        assert router.evicted == 1
        # The evicted session's full accounting landed in the aggregate.
        assert router.aggregate_stats.steps == 2

    def test_close_session_returns_full_labels(self, engine, test_seqs):
        seq = test_seqs[0]
        router = SessionRouter(engine, lag=5)
        for step in seq.steps[:8]:
            router.push("s", step)
        labels = router.close_session("s")
        for rid in seq.resident_ids:
            assert len(labels[rid]) == 8
        assert "s" not in router
        with pytest.raises(KeyError):
            router.close_session("s")

    def test_push_auto_opens_with_sorted_residents(self, engine, test_seqs):
        router = SessionRouter(engine, lag=1)
        router.push("s", test_seqs[0].steps[0])
        state = router.session("s")
        assert state.seq.resident_ids == tuple(
            sorted(test_seqs[0].steps[0].observations)
        )
        assert state.pushed == 1

    def test_invalid_configuration_rejected(self, engine):
        with pytest.raises(ValueError, match="lag"):
            SessionRouter(engine, lag=-1)
        with pytest.raises(ValueError, match="max_sessions"):
            SessionRouter(engine, max_sessions=0)
        with pytest.raises(ValueError, match="not fitted"):
            SessionRouter(CaceEngine(strategy="c2"))

    def test_double_open_rejected(self, engine, test_seqs):
        router = SessionRouter(engine, lag=1)
        router.push("s", test_seqs[0].steps[0])
        with pytest.raises(ValueError, match="already open"):
            router.open_session("s", resident_ids=("r1", "r2"))


class TestEvictionAccounting:
    """LRU eviction must finalize a session's stats into the aggregate
    counters — exactly the solo-run numbers, never another session's."""

    def _solo_stats(self, engine, seq, lag, n):
        solo = engine.step_filter(lag=lag)
        solo.start(seq)
        for t in range(n):
            solo.push(t)
        solo.flush()
        return solo.stats

    def test_eviction_merges_exact_solo_stats(self, engine, test_seqs):
        router = SessionRouter(engine, lag=2, max_sessions=1)
        for t in range(5):
            router.push("old", test_seqs[0].steps[t])
        router.push("new", test_seqs[1].steps[0])  # evicts "old"
        assert "old" not in router
        solo = self._solo_stats(engine, test_seqs[0], lag=2, n=5)
        agg = router.aggregate_stats
        assert (agg.steps, agg.joint_states, agg.transition_entries) == (
            solo.steps,
            solo.joint_states,
            solo.transition_entries,
        )

    def test_interleaved_eviction_never_mixes_counters(self, engine, test_seqs):
        router = SessionRouter(engine, lag=1, max_sessions=2)
        for t in range(4):
            router.push("a", test_seqs[0].steps[t])
            router.push("b", test_seqs[1].steps[t])
        router.push("c", test_seqs[0].steps[0])  # evicts LRU "a"
        assert "a" not in router and "b" in router and "c" in router
        # The aggregate holds exactly "a"'s solo accounting...
        solo_a = self._solo_stats(engine, test_seqs[0], lag=1, n=4)
        agg = router.aggregate_stats
        assert (agg.steps, agg.joint_states, agg.transition_entries) == (
            solo_a.steps,
            solo_a.joint_states,
            solo_a.transition_entries,
        )
        # ...while the surviving session's counters are untouched by the
        # interleaving and the eviction.
        solo_b = self._solo_stats(engine, test_seqs[1], lag=1, n=4)
        b = router.session("b").stats
        assert (b.steps, b.joint_states, b.transition_entries) == (
            solo_b.steps,
            solo_b.joint_states,
            solo_b.transition_entries,
        )

    def test_eviction_metrics_and_snapshot(self, engine, test_seqs):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        router = SessionRouter(engine, lag=1, max_sessions=1, metrics=reg)
        router.push("a", test_seqs[0].steps[0])
        router.push("a", test_seqs[0].steps[1])
        router.push("b", test_seqs[1].steps[0])  # evicts "a"
        assert reg.counter("router.sessions_evicted").value == 1
        assert reg.counter("router.sessions_opened").value == 2
        assert reg.gauge("router.sessions_active").value == 1
        assert reg.counter("router.steps").value == 3
        snap = router.metrics_snapshot()
        assert snap["router"] == router.describe_dict()
        assert snap["router"]["evicted"] == 1
        assert snap["router"]["open_sessions"] == 1
        assert snap["router"]["sessions"] == {"b": {"pushed": 1, "committed": 0}}
        assert 0.0 < snap["derived"]["smoother_trans_cache_hit_rate"] <= 1.0
        assert snap["metrics"]["smoother.push_seconds"]["count"] == 3
        assert snap["metrics"]["router.push_seconds"]["count"] == 3

    def test_describe_renders_from_describe_dict(self, engine, test_seqs):
        router = SessionRouter(engine, lag=3, max_sessions=2)
        router.push("s", test_seqs[0].steps[0])
        d = router.describe_dict()
        assert router.describe() == (
            f"SessionRouter(lag={d['lag']}, "
            f"{d['open_sessions']}/{d['max_sessions']} sessions, "
            f"{d['evicted']} evicted): {d['model']}"
        )


class TestPushMany:
    def test_push_many_equals_step_by_step_push(self, engine, test_seqs):
        seq = test_seqs[0]
        lag = 3
        stepwise = SessionRouter(engine, lag=lag)
        single = [stepwise.push("s", step) for step in seq.steps]
        single_final = stepwise.close_session("s")
        batched_router = SessionRouter(engine, lag=lag)
        batched = list(batched_router.push_many("s", list(seq.steps[:5])))
        batched.extend(batched_router.push_many("s", list(seq.steps[5:])))
        batched_final = batched_router.close_session("s")
        assert batched == single
        assert batched_final == single_final

    def test_push_many_empty_batch_is_a_noop(self, engine):
        router = SessionRouter(engine, lag=1)
        assert router.push_many("s", []) == []
        assert "s" not in router

    def test_push_many_auto_opens(self, engine, test_seqs):
        router = SessionRouter(engine, lag=1)
        router.push_many("s", list(test_seqs[0].steps[:2]))
        state = router.session("s")
        assert state.pushed == 2
        assert state.seq.resident_ids == tuple(
            sorted(test_seqs[0].steps[0].observations)
        )

    def test_push_many_unknown_session_id_opens_fresh(self, engine, test_seqs):
        """A batch for a never-seen session id is served from a fresh
        session, not an error — same contract as single-step push."""
        router = SessionRouter(engine, lag=1)
        router.push_many("a", list(test_seqs[0].steps[:2]))
        out = router.push_many("never-seen", list(test_seqs[1].steps[:3]))
        assert len(out) == 3
        assert router.session("never-seen").pushed == 3
        assert router.metrics.counter("router.sessions_opened").value == 2

    def test_push_many_after_eviction_reopens_from_scratch(
        self, engine, test_seqs
    ):
        """A session evicted mid-stream that pushes again gets a brand-new
        session (empty buffer, fresh smoother), and the opened counter
        reflects the reopen."""
        seq = test_seqs[0]
        router = SessionRouter(engine, lag=1, max_sessions=1)
        router.push_many("a", list(seq.steps[:4]))
        router.push_many("b", list(test_seqs[1].steps[:2]))  # evicts "a"
        assert "a" not in router
        assert router.evicted == 1
        out = router.push_many("a", list(seq.steps[4:6]))  # mid-stream resume
        assert len(out) == 2
        state = router.session("a")
        assert state.pushed == 2  # no memory of the evicted buffer
        assert state.stats.steps == 2
        assert router.metrics.counter("router.sessions_opened").value == 3


class TestWorkerPoolLifecycle:
    def test_serial_predict_dataset_creates_no_pool(self, engine, cace_split):
        _, test = cace_split
        engine.predict_dataset(test, workers=1)
        assert engine._pool is None

    def test_model_ships_once_per_pool_lifetime(self, engine, cace_split):
        _, test = cace_split
        base = engine.model_ship_count_
        try:
            first = engine.predict_dataset(test, workers=2)
            second = engine.predict_dataset(test, workers=2)
        finally:
            engine.close()
        # Two batched calls, one pool: the model was serialised exactly
        # once (the pool initializer loads it once per worker).
        assert engine.model_ship_count_ == base + 1
        assert first == second

    def test_parallel_matches_serial(self, engine, cace_split):
        _, test = cace_split
        serial = engine.predict_dataset(test, workers=1)
        serial_stats = engine.batch_stats_
        try:
            parallel = engine.predict_dataset(test, workers=2)
        finally:
            engine.close()
        assert parallel == serial
        assert engine.batch_stats_ == serial_stats

    def test_workers_clamped_to_session_count(self, engine, cace_split):
        _, test = cace_split
        try:
            engine.predict_dataset(test, workers=32)
            assert engine._pool_workers == len(test.sequences)
        finally:
            engine.close()

    def test_close_is_idempotent_and_safe_prefit(self):
        engine = CaceEngine(strategy="c2")
        engine.close()
        engine.close()
        fitted_free = CaceEngine(strategy="c2")
        with fitted_free:
            pass  # context-manager exit closes an engine with no pool
