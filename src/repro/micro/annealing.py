"""Deterministic annealing clustering (Rose's algorithm).

Augmentation 4 fits multivariate-Gaussian observation models per micro
state; the paper (following Muncaster & Ma [8]) discovers representative
low-level states by deterministic annealing: soft k-means run over a
decreasing temperature schedule, splitting effective clusters as the
temperature crosses critical values.  DA is far less initialisation-
sensitive than plain k-means, which matters when cluster sizes are skewed
(e.g. long sleeping episodes vs brief yawns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_in_range, check_positive


@dataclass
class DeterministicAnnealing:
    """Deterministic-annealing soft clustering.

    Parameters
    ----------
    n_clusters:
        Maximum number of clusters (codebook size).
    t_start / t_min:
        Initial and final temperatures, as multiples of the data variance.
    cooling:
        Geometric cooling factor per outer iteration (0 < cooling < 1).
    """

    n_clusters: int = 8
    t_start: float = 2.0
    t_min: float = 0.02
    cooling: float = 0.8
    max_inner_iters: int = 60
    tol: float = 1e-5
    seed: RandomState = None
    centers_: Optional[np.ndarray] = field(default=None, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("n_clusters", self.n_clusters)
        check_positive("t_start", self.t_start)
        check_positive("t_min", self.t_min)
        check_in_range("cooling", self.cooling, 1e-6, 0.999999)
        self._rng = ensure_rng(self.seed)

    def fit(self, x: np.ndarray) -> "DeterministicAnnealing":
        """Cluster ``(n, d)`` points; centres land in :attr:`centers_`."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n, d = x.shape
        if n == 0:
            raise ValueError("cannot cluster an empty dataset")
        k = min(self.n_clusters, n)

        data_var = float(np.mean(np.var(x, axis=0))) + 1e-12
        temperature = self.t_start * data_var
        t_floor = self.t_min * data_var

        # Start from the global centroid, with tiny symmetric perturbations:
        # clusters "split" naturally as the temperature drops.
        centers = np.tile(x.mean(axis=0), (k, 1))
        centers += self._rng.normal(0.0, 1e-4 * np.sqrt(data_var), centers.shape)

        while temperature > t_floor:
            for _ in range(self.max_inner_iters):
                old = centers.copy()
                # Soft assignments (Gibbs distribution at this temperature).
                d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
                d2 -= d2.min(axis=1, keepdims=True)
                weights = np.exp(-d2 / max(temperature, 1e-12))
                weights /= weights.sum(axis=1, keepdims=True)
                mass = weights.sum(axis=0)
                for j in range(k):
                    if mass[j] > 1e-12:
                        centers[j] = (weights[:, j] @ x) / mass[j]
                if np.max(np.abs(centers - old)) < self.tol:
                    break
            # Perturb coincident centres so they can split at lower T.
            centers += self._rng.normal(0.0, 1e-4 * np.sqrt(temperature), centers.shape)
            temperature *= self.cooling

        self.centers_ = self._dedupe(centers)
        return self

    def _dedupe(self, centers: np.ndarray) -> np.ndarray:
        """Merge centres that never separated (within numerical wobble)."""
        kept: list = []
        for c in centers:
            if all(np.linalg.norm(c - k) > 1e-3 for k in kept):
                kept.append(c)
        return np.array(kept)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard assignments to the nearest centre."""
        if self.centers_ is None:
            raise RuntimeError("not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        d2 = ((x[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d2, axis=1)

    def fit_gaussians(self, x: np.ndarray, min_points: int = 2) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fit one Gaussian per discovered cluster.

        Returns ``(means, covariances, assignments)``; clusters with fewer
        than *min_points* members inherit the pooled covariance.
        """
        self.fit(x)
        x = np.atleast_2d(np.asarray(x, dtype=float))
        labels = self.predict(x)
        k = self.centers_.shape[0]
        d = x.shape[1]
        pooled = np.cov(x.T) if x.shape[0] > 1 else np.eye(d)
        pooled = np.atleast_2d(pooled) + 1e-6 * np.eye(d)
        means = np.zeros((k, d))
        covs = np.zeros((k, d, d))
        for j in range(k):
            members = x[labels == j]
            means[j] = members.mean(axis=0) if len(members) else self.centers_[j]
            if len(members) >= min_points:
                covs[j] = np.atleast_2d(np.cov(members.T)) + 1e-6 * np.eye(d)
            else:
                covs[j] = pooled
        return means, covs, labels
