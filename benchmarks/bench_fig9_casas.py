"""Bench: Fig 9 — CASAS-style per-class table.

Paper: overall accuracy ~94.5% (FP 1.4%, precision 96.5%, recall 94.5%)
with ~99.3% on the shared tasks (Move Furniture, Play Checkers); 47 merged
rules.  Our corpus is a synthetic stand-in with the same published shape
(15 scripted tasks, two joint, no gestural channel).
"""

from repro.eval.experiments import fig9_casas_per_class
from benchmarks.conftest import record


def test_fig9_casas_per_class(benchmark):
    # The paper ran 26 pairs with full-length tasks; 12 pairs at 0.6x task
    # durations is the largest workload that keeps this bench in tens of
    # seconds.  Accuracy rises monotonically toward the paper's 94.5% as
    # pairs/durations grow (see EXPERIMENTS.md).
    result = benchmark.pedantic(
        fig9_casas_per_class,
        kwargs={
            "n_pairs": 12,
            "sessions_per_pair": 2,
            "duration_scale": 0.6,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("fig9", result.render())
    assert result.report.accuracy > 0.75
    # Shared tasks benefit from coupling: at or above overall accuracy.
    assert result.shared_accuracy >= result.report.accuracy - 0.05
    assert result.n_rules > 0
