"""Binary passive-infrared (PIR) motion sensors.

The testbed deploys one PIR per room; a firing means "this room currently
contains at least one *moving* person" — crucially it cannot attribute the
motion to a specific resident, which is the identity-ambiguity problem CACE's
coupled model resolves.  The simulation models detection probability,
stationary-subject misses, a refractory hold-off, and rare false alarms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import check_non_negative, check_probability


@dataclass
class PirSensor:
    """A single binary PIR covering one room.

    Parameters
    ----------
    sensor_id:
        Unique identifier, e.g. ``"pir:livingroom"``.
    room:
        Room name the sensor covers.
    detect_prob:
        Probability a moving occupant triggers the sensor in a polling tick.
    stationary_detect_prob:
        Probability a stationary occupant still triggers it (PIRs mostly
        miss non-moving subjects; a small value models residual flicker).
    false_alarm_prob:
        Probability of firing in an empty room (thermal noise, pets, sun).
    refractory_s:
        Minimum spacing between firings (hardware hold-off).
    """

    sensor_id: str
    room: str
    detect_prob: float = 0.95
    stationary_detect_prob: float = 0.15
    false_alarm_prob: float = 0.002
    refractory_s: float = 1.0
    seed: RandomState = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _last_fire: float = field(default=-np.inf, init=False, repr=False)

    def __post_init__(self) -> None:
        check_probability("detect_prob", self.detect_prob)
        check_probability("stationary_detect_prob", self.stationary_detect_prob)
        check_probability("false_alarm_prob", self.false_alarm_prob)
        check_non_negative("refractory_s", self.refractory_s)
        self._rng = ensure_rng(self.seed)

    def poll(self, t: float, occupants_moving: int, occupants_still: int = 0) -> Optional[bool]:
        """Poll the sensor at time *t*; returns True on a firing, else False.

        *occupants_moving* / *occupants_still* count people currently in the
        covered room.  During the refractory window the sensor is silent.
        """
        if t - self._last_fire < self.refractory_s:
            return False
        fire = False
        if occupants_moving > 0:
            # Independent detection chance per moving occupant.
            miss = (1.0 - self.detect_prob) ** occupants_moving
            fire = self._rng.random() > miss
        if not fire and occupants_still > 0:
            miss = (1.0 - self.stationary_detect_prob) ** occupants_still
            fire = self._rng.random() > miss
        if not fire and occupants_moving == 0 and occupants_still == 0:
            fire = self._rng.random() < self.false_alarm_prob
        if fire:
            self._last_fire = t
        return fire

    def reset(self) -> None:
        """Clear the refractory state (new simulation run)."""
        self._last_fire = -np.inf


def rooms_covered(sensors: Sequence[PirSensor]) -> set:
    """The set of rooms observed by a sensor array."""
    return {s.room for s in sensors}
