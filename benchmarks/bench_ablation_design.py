"""Ablation bench: the design choices behind the coupled model.

DESIGN.md calls out three load-bearing choices beyond the paper's text:
(a) the joint explaining-away (coverage) term, (b) the feature-GMM channel
(Augmentation 4), and (c) the pruned joint-trellis cap.  This bench
toggles each on a fixed corpus so their individual contributions stay
visible as the code evolves.
"""

from benchmarks.conftest import record, workload
from repro.core.engine import CaceEngine
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import train_test_split
from repro.util.rng import ensure_rng


def _accuracy(model, test) -> float:
    correct = n = 0
    for seq in test.sequences:
        pred = model.decode(seq)
        for rid in seq.resident_ids:
            truth = seq.macro_labels(rid)
            correct += sum(a == b for a, b in zip(truth, pred[rid]))
            n += len(truth)
    return correct / n


def run_ablation(n_homes, sessions_per_home, duration_s, seed=7):
    rng = ensure_rng(seed)
    dataset = generate_cace_dataset(
        n_homes=n_homes,
        sessions_per_home=sessions_per_home,
        duration_s=duration_s,
        seed=rng.integers(0, 2**31),
    )
    train, test = train_test_split(dataset, 0.7, seed=rng.integers(0, 2**31))
    engine = CaceEngine(strategy="c2", seed=rng.integers(0, 2**31))
    engine.fit(train)
    model = engine.model_

    rows = {}
    rows["full model"] = _accuracy(model, test)

    model.unexplained_subloc_penalty = 0.0
    model.unexplained_room_penalty = 0.0
    rows["no coverage term"] = _accuracy(model, test)
    model.unexplained_subloc_penalty = -4.5
    model.unexplained_room_penalty = -2.5

    model.use_feature_gmm = False
    rows["no feature GMM"] = _accuracy(model, test)
    model.use_feature_gmm = True

    model.max_joint_states_pruned = 30
    rows["joint cap 30"] = _accuracy(model, test)
    model.max_joint_states_pruned = 100

    model.soft_exclusion_penalty = -5.0
    rows["hard-ish soft exclusions (-5)"] = _accuracy(model, test)
    model.soft_exclusion_penalty = 0.0
    return rows


def test_design_ablations(benchmark):
    params = workload()
    rows = benchmark.pedantic(
        run_ablation,
        kwargs={
            "n_homes": params["n_homes"],
            "sessions_per_home": params["sessions_per_home"],
            "duration_s": params["duration_s"],
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    lines = ["Design ablations (C2 on the CACE corpus)"]
    for name, acc in rows.items():
        lines.append(f"  {name:>30s}: {acc * 100:5.1f}%")
    text = "\n".join(lines)
    print("\n" + text)
    record("ablation_design", text)

    # The full model must not lose to its own ablations by a wide margin.
    full = rows["full model"]
    assert full > 0.85
    for name, acc in rows.items():
        assert acc <= full + 0.02, f"{name} unexpectedly beats the full model"
    # The coverage term is load-bearing for cross-room attribution.
    assert rows["no coverage term"] <= full + 1e-9
