"""Streaming-path resilience: step validation and degraded-mode serving.

The serving router guards a live smoother with two layers.
:func:`validate_step` rejects malformed :class:`ContextStep` objects
(wrong type, empty or mismatched observations, non-finite features)
before they can poison a trellis.  When a session is quarantined —
because a step failed validation or its smoother raised — it keeps
emitting labels through a :class:`DegradedStepFilter`: the cheap
fallback recogniser (e.g. a :class:`~repro.models.hmm.MacroHmm`) decides
each step on its own, and if even that fails the filter falls back to
the model's prior-argmax macro label, which cannot fail.  Every commit
from this path is a :class:`DegradedLabels` dict, so downstream
consumers can tell full-model labels from degraded ones without any
shape change.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.api import DecodeStats, Recognizer
from repro.datasets.trace import ContextStep, LabeledSequence


class StepValidationError(ValueError):
    """An incoming step is malformed for its session."""


def validate_step(
    step: ContextStep, resident_ids: Optional[Tuple[str, ...]] = None
) -> None:
    """Raise :class:`StepValidationError` if *step* cannot be served.

    Checks the step type, that observations are present, that they cover
    exactly the session's residents (when known), and that every feature
    value is finite — NaN/inf features would silently corrupt every
    downstream Gaussian emission score.
    """
    if not isinstance(step, ContextStep):
        raise StepValidationError(
            f"expected a ContextStep, got {type(step).__name__}"
        )
    if not step.observations:
        raise StepValidationError("step has no resident observations")
    if resident_ids is not None and set(step.observations) != set(resident_ids):
        raise StepValidationError(
            f"step observes {sorted(step.observations)}, session expects "
            f"{sorted(resident_ids)}"
        )
    for rid, obs in step.observations.items():
        for value in obs.features:
            if not math.isfinite(value):
                raise StepValidationError(
                    f"non-finite feature for resident {rid!r}"
                )


class DegradedLabels(dict):
    """A committed-labels dict produced in degraded mode.

    Equal to (and substitutable for) a plain dict; the ``degraded``
    attribute is the tag — ``getattr(labels, "degraded", False)`` is
    False for every healthy commit.
    """

    degraded = True


def prior_macro_label(model: Recognizer) -> str:
    """The model's prior-argmax macro label — the last-resort emission.

    Works across every family: the HDBN models carry the mined
    constraint model's macro prior, the flat HMM its own ``prior_``.
    """
    cm = getattr(model, "constraint_model", None)
    if cm is not None and getattr(cm, "macro_prior", None) is not None:
        return cm.macro_index.label(int(np.argmax(cm.macro_prior)))
    prior = getattr(model, "prior_", None)
    index = getattr(model, "macro_index", None)
    if prior is not None and index is not None:
        return index.label(int(np.argmax(prior)))
    raise TypeError(
        f"{type(model).__name__} exposes no macro prior for degraded serving"
    )


class DegradedStepFilter:
    """Per-step labelling for a quarantined session.

    Each push decodes the single step with the *fallback* recogniser when
    one is configured (a length-1 sequence — cheap for a flat model, and
    stateless so one bad step never poisons the next), else emits the
    prior-argmax label.  Any fallback failure also drops to the prior
    label: this filter never raises from :meth:`push_step`.
    """

    def __init__(
        self,
        model: Recognizer,
        resident_ids: Tuple[str, ...],
        fallback: Optional[Recognizer] = None,
        step_s: float = 15.0,
    ) -> None:
        self.resident_ids = tuple(resident_ids)
        self.fallback = fallback
        self.step_s = step_s
        self.stats = DecodeStats()
        self._prior_label = prior_macro_label(fallback if fallback is not None else model)

    def push_step(self, step: ContextStep) -> DegradedLabels:
        """Labels for one step; never raises."""
        self.stats.steps += 1
        labels: Optional[Dict[str, str]] = None
        if self.fallback is not None:
            try:
                validate_step(step, self.resident_ids)
                seq = LabeledSequence(
                    home_id="degraded",
                    resident_ids=self.resident_ids,
                    step_s=self.step_s,
                    steps=[step],
                    truths=[{}],
                )
                decoded = self.fallback.decode(seq)
                labels = {rid: decoded[rid][0] for rid in self.resident_ids}
            except Exception:
                labels = None  # any fallback failure → prior-only below
        if labels is None:
            labels = {rid: self._prior_label for rid in self.resident_ids}
        return DegradedLabels(labels)
