"""Coupled Hierarchical Dynamic Bayesian Network (the CACE model).

Implements the loosely-coupled HDBN of §IV/§VI over the hidden joint state
``(m1, l1, m2, l2)`` (macro activity + sub-location per resident), with:

* **End-of-sequence-marker semantics (Eqns 3-6).**  A macro state may only
  change when its micro sequence terminates (blocking), and a micro
  sequence cannot outlive its macro (termination).  Flattened, this yields:
  within a macro, the sub-location chain evolves by the mined per-macro
  micro transition with per-step end probability; on a macro change the
  micro chain *resets* from the new macro's prior (Augmentations 1-3).
* **Coupled macro transitions** ``P(m' | m, partner_m)`` (Augmentation 3),
  shrunk toward the uncoupled table where data is sparse.
* **Gaussian-mixture emissions** per macro over the continuous feature
  vector, with components discovered by deterministic annealing
  (Augmentation 4), alongside CPTs for the observed postural/gestural
  micro context, iBeacon soft location evidence, and PIR room
  compatibility.
* **Correlation pruning.**  When a rule set is supplied, per-user candidate
  states are filtered by single-user rules and joint candidates by
  cross-user rules/exclusions — the paper's state-space reduction, and the
  source of its ~16x overhead gain.

Decoding is exact joint Viterbi over the per-step candidate trellis with
numpy-vectorised transition blocks; posterior marginals use the same
machinery with sum-product.

The per-step hot path is fully vectorised: candidate lists arrive from the
builder with their dense ``(macro, subloc)`` encodings precomputed (no
per-pair label lookups), correlation rules are evaluated as boolean
vectors over candidate lists (:mod:`repro.core.rule_kernel`) with the
per-step evidence shared between the cross-prune mask, the soft-exclusion
penalty and per-user pruning, and object evidence comes from a
precomputed all-off baseline plus a fired-object correction
(:class:`~repro.core.emissions.ObjectEvidenceTable`).  The seed's
straight-line implementation is preserved in :mod:`repro.core.reference`
as the executable specification; equivalence is asserted by
``tests/test_decode_stats.py`` and ``benchmarks/bench_decode_hotpath.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import DecodeStats, TrellisPiece, make_step_filter
from repro.core.emissions import ObjectEvidenceTable, user_state_emissions
from repro.obs import runtime as obs
from repro.core.kernels import (
    SequenceKernel,
    _lse,
    backward_betas,
    forward_alphas,
    viterbi_path,
)
from repro.core.rule_kernel import (
    CompiledRules,
    CrossRulePruner,
    SingleRulePruner,
    StepItems,
    soft_exclusion_matrix,
)
from repro.core.state_space import CandidateSet, StateSpaceBuilder
from repro.datasets.trace import Dataset, LabeledSequence
from repro.micro.annealing import DeterministicAnnealing
from repro.mining.constraint_miner import ConstraintModel
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.util.rng import RandomState, ensure_rng

_TINY = 1e-12
#: Log penalty for hypothesising a sub-location whose room shows no PIR
#: activity while other rooms do (PIRs miss stationary residents).
_PIR_MISS_PENALTY = -1.5


def chain_block(
    macro_table: np.ndarray,
    loc_table: np.ndarray,
    log_subloc_prior: np.ndarray,
    m_prev: np.ndarray,
    l_prev: np.ndarray,
    partner_prev: np.ndarray,
    m_cur: np.ndarray,
    l_cur: np.ndarray,
) -> np.ndarray:
    """One coupled chain's (P, C) contribution to the joint transition.

    Two gathers from the precomputed log tables plus one branch on the
    macro-change mask — no per-step transcendentals on (P, C) blocks.
    Shared by the pair and N-chain models.
    """
    macro_term = macro_table[m_prev[:, None], partner_prev[:, None], m_cur[None, :]]
    same = m_prev[:, None] == m_cur[None, :]
    cont = loc_table[m_cur[None, :], l_prev[:, None], l_cur[None, :]]
    reset = log_subloc_prior[m_cur, l_cur][None, :]
    return macro_term + np.where(same, cont, reset)




@dataclass
class _MacroGmm:
    """Per-macro Gaussian mixture over emission features (Augmentation 4)."""

    weights: np.ndarray
    means: np.ndarray
    inv_covs: np.ndarray
    logdets: np.ndarray

    def log_pdf(self, x: np.ndarray) -> float:
        d = x.shape[0]
        diffs = x[None, :] - self.means  # (K, d)
        quads = np.einsum("ki,kij,kj->k", diffs, self.inv_covs, diffs)
        comps = (
            np.log(self.weights + _TINY)
            - 0.5 * (d * np.log(2 * np.pi) + self.logdets + quads)
        )
        m = comps.max()
        return float(m + np.log(np.exp(comps - m).sum()))


class GmmBank:
    """Every macro's mixture components stacked for one-shot evaluation.

    One einsum over all components replaces one einsum per macro per step;
    per-macro log-sum-exp then runs on slices of the shared component
    vector (same values, same reduction order as :meth:`_MacroGmm.log_pdf`).
    """

    def __init__(self, gmms: Dict[int, "_MacroGmm"]) -> None:
        self._order = sorted(gmms)
        self._slices: Dict[int, Tuple[int, int]] = {}
        if not self._order:
            return
        start = 0
        for m in self._order:
            k = gmms[m].weights.shape[0]
            self._slices[m] = (start, start + k)
            start += k
        self.log_weights = np.log(
            np.concatenate([gmms[m].weights for m in self._order]) + _TINY
        )
        self.means = np.concatenate([gmms[m].means for m in self._order])
        self.inv_covs = np.concatenate([gmms[m].inv_covs for m in self._order])
        self.logdets = np.concatenate([gmms[m].logdets for m in self._order])

    def log_pdfs(self, x: np.ndarray) -> Dict[int, float]:
        """``{macro_idx: log p(x | macro)}`` for every fitted macro."""
        if not self._slices:
            return {}
        d = x.shape[0]
        diffs = x[None, :] - self.means
        quads = np.einsum("ki,kij,kj->k", diffs, self.inv_covs, diffs)
        comps = self.log_weights - 0.5 * (d * np.log(2 * np.pi) + self.logdets + quads)
        out: Dict[int, float] = {}
        for m, (s, e) in self._slices.items():
            c = comps[s:e]
            mx = c.max()
            out[m] = float(mx + np.log(np.exp(c - mx).sum()))
        return out

    def log_pdf_rows(self, x_rows: np.ndarray, n_macro: int) -> np.ndarray:
        """(T, n_macro) log densities for a stacked batch of observations.

        One einsum over all steps and components; each row reduces with
        the same slicing and log-sum-exp order as :meth:`log_pdfs`, so
        every entry is bit-identical to the per-step result.  Columns of
        macros without a fitted mixture stay 0.0 (the scalar path adds
        nothing for them either).
        """
        out = np.zeros((x_rows.shape[0], n_macro))
        if not self._slices:
            return out
        d = x_rows.shape[1]
        diffs = x_rows[:, None, :] - self.means[None, :, :]
        quads = np.einsum("tki,kij,tkj->tk", diffs, self.inv_covs, diffs)
        comps = self.log_weights[None, :] - 0.5 * (
            d * np.log(2 * np.pi) + self.logdets[None, :] + quads
        )
        for m, (s, e) in self._slices.items():
            c = comps[:, s:e]
            mx = c.max(axis=1)
            out[:, m] = mx + np.log(np.exp(c - mx[:, None]).sum(axis=1))
        return out


def fit_object_cpt(
    train: Dataset, constraint_model: ConstraintModel, alpha: float = 1.0
) -> Tuple[Dict[str, int], np.ndarray]:
    """Bernoulli object-evidence model ``P(object fires | macro)``.

    Object sensors are unattributed — the partner's stove firing counts
    against *my* macro too — but the counted statistics absorb that
    confound and still separate e.g. cooking (stove) from prepare_food
    (kettle), the two activities the paper reports as hardest.

    Returns ``(object_index, log_table)`` with ``log_table[m, o, fired]``.
    """
    objects = sorted(
        {obj for seq in train.sequences for step in seq.steps for obj in step.objects_fired}
    )
    object_index = {obj: i for i, obj in enumerate(objects)}
    n_m = constraint_model.n_macro
    counts = np.full((n_m, max(len(objects), 1), 2), alpha, dtype=float)
    for seq in train.sequences:
        for rid in seq.resident_ids:
            for step, truth in zip(seq.steps, seq.truths):
                m = constraint_model.macro_index.index(truth[rid].macro)
                for obj, o in object_index.items():
                    counts[m, o, 1 if obj in step.objects_fired else 0] += 1
    probs = counts / counts.sum(axis=2, keepdims=True)
    return object_index, np.log(probs)


def fit_macro_gmms(
    train: Dataset,
    constraint_model: ConstraintModel,
    n_components: int,
    rng: np.random.Generator,
) -> Dict[int, _MacroGmm]:
    """Per-macro Gaussian mixtures with DA-discovered means.

    Component means come from deterministic annealing (Augmentation 4's
    low-level state discovery); all components of a macro share the pooled
    within-macro covariance.  Session-level feature drift means test points
    land *between* narrow DA clusters, and the shared broad covariance
    keeps the feature channel honest about that uncertainty instead of
    issuing catastrophic log penalties.
    """
    by_macro: Dict[int, List[np.ndarray]] = {}
    for seq in train.sequences:
        for rid in seq.resident_ids:
            for step, truth in zip(seq.steps, seq.truths):
                m = constraint_model.macro_index.index(truth[rid].macro)
                by_macro.setdefault(m, []).append(
                    np.asarray(step.observations[rid].features, dtype=float)
                )
    gmms: Dict[int, _MacroGmm] = {}
    for m, rows in by_macro.items():
        x = np.vstack(rows)
        da = DeterministicAnnealing(
            n_clusters=min(n_components, x.shape[0]),
            seed=rng.integers(0, 2**31),
        )
        means, covs, labels = da.fit_gaussians(x)
        counts = np.bincount(labels, minlength=means.shape[0]).astype(float)
        weights = counts / counts.sum()
        dim = x.shape[1]
        pooled = np.atleast_2d(np.cov(x.T)) if x.shape[0] > 1 else np.eye(dim)
        pooled = pooled + 1e-4 * np.eye(dim)
        inv_pooled = np.linalg.inv(pooled)
        logdet = np.linalg.slogdet(pooled)[1]
        inv_covs = np.broadcast_to(inv_pooled, covs.shape).copy()
        logdets = np.full(means.shape[0], logdet)
        gmms[m] = _MacroGmm(weights, means, inv_covs, logdets)
    return gmms


def build_transition_tables(
    p_change: np.ndarray,
    change_trans: np.ndarray,
    micro_end: np.ndarray,
    subloc_trans: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Precomputed transition log tables shared by all HDBN variants.

    Returns ``(macro_table, loc_table)`` such that the per-step chain
    blocks are pure gathers (log of a gathered entry equals the gathered
    entry of the logged table, bit for bit): the stay/change branch is
    baked into the macro table's ``m_prev == m_cur`` diagonal, and the
    micro continue/jump branch into the loc table's ``l_prev == l_cur``
    diagonal.  ``change_trans`` may be coupled ``(M, M, M)`` or uncoupled
    ``(M, M)``.
    """
    log_stay = np.log1p(-p_change)
    log_go = np.log(p_change)
    idx = np.arange(p_change.shape[0])
    if change_trans.ndim == 3:
        macro_table = log_go[:, None, None] + np.log(change_trans + _TINY)
        macro_table[idx, :, idx] = log_stay[:, None]
    else:
        macro_table = log_go[:, None] + np.log(change_trans + _TINY)
        macro_table[idx, idx] = log_stay
    e = micro_end[:, None, None]
    loc_table = np.log(e * subloc_trans + _TINY)
    jdx = np.arange(subloc_trans.shape[1])
    loc_cont = np.log((1.0 - e) + e * subloc_trans + _TINY)
    loc_table[:, jdx, jdx] = loc_cont[:, jdx, jdx]
    return macro_table, loc_table


def fit_emission_tables(model, train: Dataset) -> None:
    """Shared ``fit`` body for the HDBN family: DA Gaussian mixtures,
    object-evidence CPT, and their precomputed hot-path banks."""
    model.gmms_ = fit_macro_gmms(
        train, model.constraint_model, model.gmm_components, model._rng
    )
    model._object_index, model._log_obj = fit_object_cpt(train, model.constraint_model)
    model._obj_evidence = ObjectEvidenceTable(model._object_index, model._log_obj)
    model._gmm_bank = GmmBank(model.gmms_)


def build_candidate_set(
    model,
    seq: LabeledSequence,
    rid: str,
    t: int,
    prune_per_user: bool = True,
    kern: Optional[SequenceKernel] = None,
) -> CandidateSet:
    """One resident's evidence-truncated candidates for one step.

    Shared by the coupled pair model and the N-chain model: fetch the
    memoised encoded list, apply single-user rule pruning (the rules are
    canonicalised to slot u1 by ``CorrelationRuleSet.single_user()``, so
    the same matrix is correct for every resident — slot-invariance is
    regression-tested in ``tests/test_decode_stats.py``), score
    emissions, and keep the best ``max_states_per_user``.  When a
    :class:`~repro.core.kernels.SequenceKernel` is supplied, rule gates
    and emission scores come from its precomputed per-sequence tables.
    """
    step = seq.steps[t]
    obs = step.observations[rid]
    key = obs.subloc_candidates
    full_states, full_m, full_l = model.builder.candidate_states_encoded(obs)
    states, m, l = full_states, full_m, full_l
    idx = np.arange(len(full_states))
    if model._single_pruner is not None and prune_per_user:
        if kern is not None:
            amb = kern.step_items(t)
            gates = kern.single_gates(rid, t)
        else:
            amb = StepItems(step)
            gates = None
        keep = model._single_pruner.keep(key, full_m, full_l, obs, amb, gates)
        if keep.any() and not keep.all():
            idx = np.flatnonzero(keep)
            states = [states[i] for i in idx]
            m = m[idx]
            l = l[idx]
    if kern is not None:
        emissions = kern.emissions(rid, t, m, l)
    else:
        emissions = user_state_emissions(model, seq, rid, t, states, m, l)
    candidates = CandidateSet(
        states=states, m=m, l=l, emissions=emissions, obs=obs,
        src_key=key, src_idx=idx, src_m=full_m, src_l=full_l,
    )
    if len(candidates) > model.max_states_per_user:
        top = np.argsort(emissions)[::-1][: model.max_states_per_user]
        candidates = candidates.take(top)
    return candidates


class _PairTrellis:
    """Incremental-forward adapter over the coupled pair trellis.

    One joint session covering both residents; pieces carry the pruned
    joint candidates, their evidence scores and dense encodings, so the
    generic smoother reproduces ``_prepare``/``posterior_marginals``
    numerics exactly.
    """

    def __init__(self, model: "CoupledHdbn", seq: LabeledSequence, rids: Tuple[str, str]):
        self.model = model
        self.seq = seq
        self.rids = rids
        self._kern = model._make_kernel(seq, rids)

    def prepare(self, t0: int, t1: int) -> None:
        """Batch-build the per-sequence evidence tables for ``[t0, t1)``
        ahead of the per-step ``piece`` calls (used by bulk pushes)."""
        if self._kern is not None:
            self._kern.ensure(t0, t1)

    def piece(self, t: int) -> TrellisPiece:
        model, seq, rids = self.model, self.seq, self.rids
        kern = self._kern
        if kern is not None:
            kern.ensure(0, t + 1)
        c1 = model._user_candidates(seq, rids[0], t, kern)
        c2 = model._user_candidates(seq, rids[1], t, kern)
        i1, i2, scores = model._joint_candidates(seq, t, c1, c2, rids, kern)
        enc = model._encode(c1, c2, i1, i2)
        return TrellisPiece(scores=scores, enc=enc, extra=(c1, c2, i1, i2))

    def initial_alpha(self, piece: TrellisPiece) -> np.ndarray:
        model = self.model
        cm = model.constraint_model
        enc = piece.enc
        return (
            np.log(cm.macro_prior[enc[0]] + _TINY)
            + model._log_subloc_prior[enc[0], enc[1]]
            + np.log(cm.macro_prior[enc[2]] + _TINY)
            + model._log_subloc_prior[enc[2], enc[3]]
            + piece.scores
        )

    def transition(self, prev: TrellisPiece, cur: TrellisPiece) -> np.ndarray:
        return self.model._transition_block(prev.enc, cur.enc)

    def labels(self, piece: TrellisPiece, gamma: np.ndarray) -> Dict[str, str]:
        cm = self.model.constraint_model
        enc = piece.enc
        out: Dict[str, str] = {}
        for rid, m_enc in ((self.rids[0], enc[0]), (self.rids[1], enc[2])):
            marg = np.zeros(cm.n_macro)
            np.add.at(marg, m_enc, gamma)
            out[rid] = cm.macro_index.label(int(np.argmax(marg)))
        return out


@dataclass
class CoupledHdbn:
    """The loosely-coupled HDBN recogniser for a resident pair.

    Parameters
    ----------
    constraint_model:
        Output of the constraint miner (probabilistic structure).
    rule_set:
        Output of the correlation miner; ``None`` disables correlation
        pruning (the paper's NCS strategy).
    prune_per_user / prune_cross:
        Which rule classes to apply (NCR uses per-user only).
    gmm_components:
        Deterministic-annealing codebook size per macro.
    max_joint_states:
        Safety cap per step; candidates beyond it are dropped by emission
        score (logged in :class:`DecodeStats`).
    """

    constraint_model: ConstraintModel
    rule_set: Optional[CorrelationRuleSet] = None
    prune_per_user: bool = True
    prune_cross: bool = True
    gmm_components: int = 4
    max_states_per_user: int = 36
    max_joint_states: int = 2000
    #: When correlation pruning is active, surviving joint candidates are
    #: further capped to the best-scoring K — the paper's probabilistic
    #: pruning of "very unlikely state sequences" that buys the 16x.
    #: Accuracy is flat down to ~70 on the CACE corpus (the rules really do
    #: isolate the plausible joint states); 100 leaves safety margin.
    max_joint_states_pruned: int = 100
    min_change_prob: float = 1e-4
    use_feature_gmm: bool = True
    pir_miss_penalty: float = _PIR_MISS_PENALTY
    #: Joint explaining-away: log cost of a fired area-motion sensor that
    #: *neither* resident's hypothesis covers (~log of the per-window false
    #: alarm probability).  This is where multiple occupancy becomes an
    #: asset: "partner is in the kitchen" explains the kitchen firing, so I
    #: don't have to be there — and an area nobody claims votes against the
    #: whole joint assignment, not against either resident alone.
    unexplained_subloc_penalty: float = -4.5
    #: Same idea at room granularity for PIR fleets (milder: rooms keep
    #: firing briefly after the occupant walks out of a 15 s window).
    unexplained_room_penalty: float = -2.5
    #: Log penalty per violated *soft* exclusion.  Defaults to 0: the
    #: coupled transition CPTs already carry behavioural negative
    #: correlation, and an extra per-step penalty double-counts it (it cost
    #: 1-5 accuracy points in ablations).  Exposed for experimentation.
    soft_exclusion_penalty: float = 0.0
    #: Decode through the per-sequence batched evidence tables
    #: (:class:`repro.core.kernels.SequenceKernel`).  Bit-identical to the
    #: per-step path; disabled by the reference models.
    use_sequence_kernels: bool = True
    seed: RandomState = None
    builder: StateSpaceBuilder = field(default=None, init=False, repr=False)
    gmms_: Dict[int, _MacroGmm] = field(default_factory=dict, init=False, repr=False)
    last_stats: DecodeStats = field(default_factory=DecodeStats, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)
        # The builder over-generates; emission evidence picks the survivors.
        self.builder = StateSpaceBuilder(
            constraint_model=self.constraint_model,
            max_states_per_user=4 * self.max_states_per_user,
        )
        self._single_rules = self.rule_set.single_user() if self.rule_set else None
        self._cross_rules = self.rule_set.cross_user() if self.rule_set else None
        cm = self.constraint_model
        # Rules are compiled once per model into per-(rule, candidate-list)
        # boolean matrices with per-step scalar gates (repro.core.rule_kernel).
        self._single_pruner = (
            SingleRulePruner(CompiledRules(self._single_rules), cm, self.builder.room_of_l)
            if self._single_rules is not None
            else None
        )
        self._compiled_cross = (
            CompiledRules(self._cross_rules) if self._cross_rules is not None else None
        )
        self._cross_pruner = (
            CrossRulePruner(self._compiled_cross, cm, self.builder.room_of_l)
            if self._compiled_cross is not None
            else None
        )
        # macro_end_prob is counted per step, so it already reflects the
        # blocking constraint (macro segments end only at micro boundaries);
        # multiplying in micro_end_prob again would double-count.
        self._p_change = np.clip(cm.macro_end_prob, self.min_change_prob, 0.5)
        # Off-diagonal renormalised coupled transition: given a change
        # happens, where does the macro go (conditioned on the partner)?
        coupled = cm.macro_trans_coupled.copy()
        n_m = cm.n_macro
        coupled[np.arange(n_m), :, np.arange(n_m)] = 0.0
        row = coupled.sum(axis=2, keepdims=True)
        self._change_trans = coupled / np.maximum(row, _TINY)
        # Evidence terms use the per-step *occupancy* tables: segment-start
        # priors see one count per segment and smooth to near-uniform,
        # which silently removes the posture/gesture/location channels.
        self._log_posture = np.log(cm.posture_occupancy + _TINY)
        self._log_gesture = (
            np.log(cm.gesture_occupancy + _TINY)
            if cm.gesture_occupancy is not None
            else None
        )
        self._log_subloc_prior = np.log(cm.subloc_prior + _TINY)
        self._log_subloc_occ = np.log(cm.subloc_occupancy + _TINY)
        self._subloc_trans = cm.subloc_trans
        self._micro_end = cm.micro_end_prob
        self._macro_block_table, self._loc_block_table = build_transition_tables(
            self._p_change, self._change_trans, self._micro_end, self._subloc_trans
        )

    # -- training -----------------------------------------------------------------

    def fit(self, train: Dataset) -> "CoupledHdbn":
        """Fit emissions: DA Gaussian mixtures + object-evidence CPT."""
        fit_emission_tables(self, train)
        return self

    # -- per-step machinery ----------------------------------------------------------

    def _make_kernel(
        self, seq: LabeledSequence, rids: Tuple[str, ...]
    ) -> Optional[SequenceKernel]:
        """Per-sequence batched evidence tables (None when disabled)."""
        if not self.use_sequence_kernels:
            return None
        return SequenceKernel(self, seq, rids)

    def _user_candidates(
        self,
        seq: LabeledSequence,
        rid: str,
        t: int,
        kern: Optional[SequenceKernel] = None,
    ) -> CandidateSet:
        """Candidate states with encodings and emissions, evidence-truncated."""
        return build_candidate_set(self, seq, rid, t, self.prune_per_user, kern)

    def _joint_candidates(
        self,
        seq: LabeledSequence,
        t: int,
        c1: CandidateSet,
        c2: CandidateSet,
        rids: Tuple[str, str],
        kern: Optional[SequenceKernel] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index pairs (i1, i2) into c1 x c2 after cross-user pruning."""
        step = seq.steps[t]
        n1, n2 = len(c1), len(c2)
        pairs = np.indices((n1, n2)).reshape(2, -1).T  # (n1*n2, 2)
        prune_active = self._cross_pruner is not None and self.prune_cross
        if prune_active:
            gates = (
                kern.cross_gates(rids[0], rids[1], t) if kern is not None else None
            )
            keep = self._cross_prune_mask(step, c1, c2, gates)
            mask = keep[pairs[:, 0], pairs[:, 1]]
            if mask.any():
                # Count only pairs actually removed: when every pair fails
                # the rules the pruner keeps them all, and reporting the
                # would-be removals would inflate the Fig 11 overhead
                # metric.
                self.last_stats.pruned_joint_states += int((~mask).sum())
                pairs = pairs[mask]
        scores = c1.emissions[pairs[:, 0]] + c2.emissions[pairs[:, 1]]
        scores = scores + self._coverage_penalty(step, c1, c2, pairs)
        if prune_active:
            penalty = soft_exclusion_matrix(
                self._compiled_cross,
                self.constraint_model,
                self.builder.room_of_l,
                c1,
                c2,
                self.soft_exclusion_penalty,
            )
            if penalty is not None:
                scores = scores + penalty[pairs[:, 0], pairs[:, 1]]
        cap = self.max_joint_states
        if self.rule_set is not None and self.prune_cross:
            cap = min(cap, self.max_joint_states_pruned)
        if pairs.shape[0] > cap:
            self.last_stats.capped_joint_states += pairs.shape[0] - cap
            top = np.argsort(scores)[::-1][:cap]
            pairs = pairs[top]
            scores = scores[top]
        return pairs[:, 0], pairs[:, 1], scores

    def _cross_prune_mask(
        self, step, c1: CandidateSet, c2: CandidateSet, gates=None
    ) -> np.ndarray:
        """(|c1|, |c2|) boolean mask of joint states consistent with the
        cross-user rules (precomputed rule matrices + per-step gates; see
        repro.core.rule_kernel).  ``gates`` short-circuits the per-step
        gate evaluation with a precomputed vector."""
        return self._cross_pruner.keep(StepItems(step), c1, c2, gates)

    def _coverage_penalty(
        self,
        step,
        c1: CandidateSet,
        c2: CandidateSet,
        pairs: np.ndarray,
    ) -> np.ndarray:
        """Per-pair log penalty for fired areas no hypothesis explains."""
        cm = self.constraint_model
        l1 = c1.l[pairs[:, 0]]
        l2 = c2.l[pairs[:, 1]]
        out = np.zeros(pairs.shape[0])
        for fired in step.sublocs_fired:
            if fired in cm.subloc_index:
                f = cm.subloc_index.index(fired)
                covered = (l1 == f) | (l2 == f)
                out += np.where(covered, 0.0, self.unexplained_subloc_penalty)
            else:
                out += self.unexplained_subloc_penalty
        if not step.sublocs_fired and step.rooms_fired:
            room_of_l = self.builder.room_of_l
            room1 = room_of_l[l1]
            room2 = room_of_l[l2]
            for fired in step.rooms_fired:
                covered = (room1 == fired) | (room2 == fired)
                out += np.where(covered, 0.0, self.unexplained_room_penalty)
        return out

    def _transition_block(
        self,
        prev: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        cur: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """(P, C) joint log transition between candidate sets."""
        m1p, l1p, m2p, l2p = prev
        m1c, l1c, m2c, l2c = cur
        log_t = self._chain_block(m1p, l1p, m2p, m1c, l1c)
        log_t += self._chain_block(m2p, l2p, m1p, m2c, l2c)
        return log_t

    def _chain_block(
        self,
        m_prev: np.ndarray,
        l_prev: np.ndarray,
        partner_prev: np.ndarray,
        m_cur: np.ndarray,
        l_cur: np.ndarray,
    ) -> np.ndarray:
        return chain_block(
            self._macro_block_table, self._loc_block_table, self._log_subloc_prior,
            m_prev, l_prev, partner_prev, m_cur, l_cur,
        )

    def _encode(
        self, c1: CandidateSet, c2: CandidateSet, i1: np.ndarray, i2: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Joint-candidate index tuples, by fancy-indexing the candidate
        sets' precomputed dense encodings (no per-pair label lookups)."""
        return c1.m[i1], c1.l[i1], c2.m[i2], c2.l[i2]

    # -- Recognizer surface --------------------------------------------------------

    def trellis_sessions(self, seq: LabeledSequence) -> List[_PairTrellis]:
        """One joint session over the resident pair."""
        rids = tuple(seq.resident_ids[:2])
        if len(rids) < 2:
            raise ValueError("CoupledHdbn expects two residents (use SingleUserHdbn)")
        return [_PairTrellis(self, seq, rids)]

    def step_filter(self, lag: int = 0):
        """Fixed-lag smoother bound to this model."""
        return make_step_filter(self, lag)

    def describe(self) -> str:
        """One-line summary for logs and CLIs."""
        pruning = "rule-pruned" if self.rule_set is not None else "unpruned"
        return (
            f"coupled 2-chain HDBN ({pruning}, "
            f"<= {self.max_states_per_user} states/user)"
        )

    # -- decoding -----------------------------------------------------------------------

    def _prepare(self, seq: LabeledSequence):
        rids = tuple(seq.resident_ids[:2])
        if len(rids) < 2:
            raise ValueError("CoupledHdbn expects two residents (use SingleUserHdbn)")
        self.last_stats = DecodeStats()
        stats = self.last_stats
        kern = self._make_kernel(seq, rids)
        if kern is not None:
            kern.ensure(0, len(seq))
        per_step = []
        for t in range(len(seq)):
            c1 = self._user_candidates(seq, rids[0], t, kern)
            c2 = self._user_candidates(seq, rids[1], t, kern)
            i1, i2, scores = self._joint_candidates(seq, t, c1, c2, rids, kern)
            enc = self._encode(c1, c2, i1, i2)
            per_step.append((c1, c2, i1, i2, scores, enc))
            stats.steps += 1
            stats.joint_states += len(i1)
        return rids, per_step

    def decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Joint Viterbi macro labels per resident."""
        with obs.timed_span(
            "decode",
            metric="decode.coupled.seconds",
            counts={"decode.coupled.steps": len(seq)},
            family="coupled",
        ):
            return self._decode(seq)

    def _decode(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model

        c1, c2, i1, i2, scores, enc = per_step[0]
        log_prior = (
            np.log(cm.macro_prior[enc[0]] + _TINY)
            + self._log_subloc_prior[enc[0], enc[1]]
            + np.log(cm.macro_prior[enc[2]] + _TINY)
            + self._log_subloc_prior[enc[2], enc[3]]
        )
        per_scores = [p[4] for p in per_step]

        def transition(t: int) -> np.ndarray:
            return self._transition_block(per_step[t - 1][5], per_step[t][5])

        with obs.timed_span(
            "trellis_sweep", metric="decode.coupled.sweep_seconds", family="coupled"
        ):
            path = viterbi_path(
                log_prior + scores, per_scores, transition, self.last_stats
            )

        out1: List[str] = []
        out2: List[str] = []
        for t, j in enumerate(path):
            c1, c2, i1, i2, _, _ = per_step[t]
            out1.append(c1.states[i1[j]].macro)
            out2.append(c2.states[i2[j]].macro)
        return {rids[0]: out1, rids[1]: out2}

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Per-resident posterior macro marginals ``(T, M)``."""
        rids, per_step = self._prepare(seq)
        cm = self.constraint_model
        n_m = cm.n_macro

        c1, c2, i1, i2, scores, enc = per_step[0]
        initial = (
            np.log(cm.macro_prior[enc[0]] + _TINY)
            + self._log_subloc_prior[enc[0], enc[1]]
            + np.log(cm.macro_prior[enc[2]] + _TINY)
            + self._log_subloc_prior[enc[2], enc[3]]
            + scores
        )
        per_scores = [p[4] for p in per_step]

        def transition(t: int) -> np.ndarray:
            return self._transition_block(per_step[t - 1][5], per_step[t][5])

        alphas = forward_alphas(initial, per_scores, transition)
        betas = backward_betas(per_scores, transition)

        out = {rids[0]: np.zeros((len(per_step), n_m)), rids[1]: np.zeros((len(per_step), n_m))}
        for t in range(len(per_step)):
            log_gamma = alphas[t] + betas[t]
            log_gamma -= _lse(log_gamma, axis=0)
            gamma = np.exp(log_gamma)
            enc = per_step[t][5]
            np.add.at(out[rids[0]][t], enc[0], gamma)
            np.add.at(out[rids[1]][t], enc[2], gamma)
        return out
