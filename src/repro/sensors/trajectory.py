"""Sensor-fusion trajectory generation (paper §VI-D).

The paper computes "3-axis absolute acceleration trajectories" by fusing the
9-axis IMU into an orientation quaternion, high-pass filtering, and rotating
body-frame acceleration into the world frame; pocket-phone motion is further
expressed *relative* to the neck-mounted tag via Eqn 16.  This module
implements that pipeline: a complementary orientation filter (gyro
integration corrected by accel/mag gravity-north references), a first-order
high-pass filter, gravity removal, and the Eqn 16 relative-position
computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.sensors.imu import GRAVITY, ImuSample, MAG_FIELD_WORLD
from repro.sensors.quaternion import Quaternion
from repro.util.validation import check_in_range, check_positive


def high_pass(signal: np.ndarray, sample_rate_hz: float, cutoff_hz: float = 0.3) -> np.ndarray:
    """First-order high-pass filter applied column-wise.

    Used to strip gravity/bias drift from acceleration channels before
    feature extraction, per the paper's "high-band pass filter" step.
    """
    check_positive("sample_rate_hz", sample_rate_hz)
    check_positive("cutoff_hz", cutoff_hz)
    signal = np.atleast_2d(np.asarray(signal, dtype=float))
    transpose = False
    if signal.shape[0] == 1 and signal.ndim == 2:
        # A single row means the caller passed a 1-D signal.
        signal = signal.T
        transpose = True
    dt = 1.0 / sample_rate_hz
    rc = 1.0 / (2 * np.pi * cutoff_hz)
    alpha = rc / (rc + dt)
    out = np.zeros_like(signal)
    out[0] = signal[0] - signal.mean(axis=0)
    for i in range(1, signal.shape[0]):
        out[i] = alpha * (out[i - 1] + signal[i] - signal[i - 1])
    return out.ravel() if transpose else out


@dataclass
class OrientationFilter:
    """Complementary filter estimating orientation from 9-axis samples.

    Gyro rates are integrated for responsiveness; the result is nudged toward
    the accelerometer's gravity direction and the magnetometer's north
    heading with weight ``correction_gain`` for drift-free long-run output.
    """

    sample_rate_hz: float = 50.0
    correction_gain: float = 0.05
    _q: Quaternion = field(default_factory=Quaternion.identity)

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_in_range("correction_gain", self.correction_gain, 0.0, 1.0)

    @property
    def orientation(self) -> Quaternion:
        """Current orientation estimate (body -> world)."""
        return self._q

    def update(self, sample: ImuSample) -> Quaternion:
        """Advance the filter by one sample; returns the new orientation."""
        dt = 1.0 / self.sample_rate_hz
        # Integrate gyro: q' = q * exp(omega * dt / 2).
        omega = np.asarray(sample.gyro, dtype=float)
        angle = float(np.linalg.norm(omega) * dt)
        if angle > 1e-12:
            dq = Quaternion.from_axis_angle(omega, angle)
            self._q = (self._q * dq).normalized()

        # Accel correction: rotate measured "up" toward world up.
        accel = np.asarray(sample.accel, dtype=float)
        a_norm = np.linalg.norm(accel)
        if a_norm > 1e-6:
            up_body = accel / a_norm  # specific force points opposite gravity
            up_world_est = self._q.rotate(up_body)
            target = np.array([0.0, 0.0, 1.0])
            correction_axis = np.cross(up_world_est, target)
            sin_err = np.linalg.norm(correction_axis)
            if sin_err > 1e-9:
                err_angle = float(np.arcsin(np.clip(sin_err, -1, 1)))
                corr = Quaternion.from_axis_angle(
                    correction_axis, self.correction_gain * err_angle
                )
                self._q = (corr * self._q).normalized()

        # Magnetometer correction: align horizontal heading with north.
        mag = np.asarray(sample.mag, dtype=float)
        m_norm = np.linalg.norm(mag)
        if m_norm > 1e-6:
            mag_world = self._q.rotate(mag / m_norm)
            heading = np.array([mag_world[0], mag_world[1], 0.0])
            h_norm = np.linalg.norm(heading)
            north = MAG_FIELD_WORLD[:2]
            north = np.array([north[0], north[1], 0.0])
            n_norm = np.linalg.norm(north)
            if h_norm > 1e-9 and n_norm > 1e-9:
                heading /= h_norm
                north_u = north / n_norm
                axis = np.cross(heading, north_u)
                sin_err = float(np.clip(axis[2], -1, 1))
                if abs(sin_err) > 1e-9:
                    corr = Quaternion.from_axis_angle(
                        np.array([0.0, 0.0, 1.0]),
                        self.correction_gain * np.arcsin(sin_err),
                    )
                    self._q = (corr * self._q).normalized()
        return self._q


def absolute_acceleration(
    samples: Sequence[ImuSample],
    sample_rate_hz: float = 50.0,
    cutoff_hz: float = 0.3,
) -> np.ndarray:
    """World-frame, gravity-free acceleration trajectory ``(n, 3)``.

    This is the "3-axis absolute acceleration trajectory" the paper computes
    from the neck-mounted SensorTag before extracting the 32 features.
    """
    filt = OrientationFilter(sample_rate_hz=sample_rate_hz)
    world = np.zeros((len(samples), 3))
    for i, sample in enumerate(samples):
        q = filt.update(sample)
        world[i] = q.rotate(sample.accel) - np.array([0.0, 0.0, GRAVITY])
    return high_pass(world, sample_rate_hz, cutoff_hz)


def relative_trajectory(
    orientations: Sequence[Quaternion],
    w0: Sequence[float] = (0.0, 1.0, 0.0),
) -> np.ndarray:
    """Eqn 16: position of the phone in the neck tag's frame over time.

    ``w = q_t . w0 . q_t^{-1}`` with ``w0 = 0i + 1j + 0k`` — the phone is
    assumed at unit distance from the neck tag, so its relative position is
    the unit offset rotated by the tag's orientation at each instant.
    """
    w0 = np.asarray(list(w0), dtype=float)
    out = np.zeros((len(orientations), 3))
    for i, q in enumerate(orientations):
        out[i] = q.rotate(w0)
    return out


def trajectory_orientations(
    samples: Sequence[ImuSample], sample_rate_hz: float = 50.0
) -> List[Quaternion]:
    """Run the orientation filter over *samples*, returning all estimates."""
    filt = OrientationFilter(sample_rate_hz=sample_rate_hz)
    return [filt.update(s) for s in samples]
