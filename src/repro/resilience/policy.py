"""Retry/timeout policy and structured failure reporting.

The batch and streaming decode paths share one failure vocabulary: an
attempt either succeeds, times out, crashes its worker, or raises.  A
:class:`RetryPolicy` decides how many times a failed session is retried
and how long to back off between attempts (exponential with bounded,
*deterministic* jitter — the chaos suite asserts exact retry schedules,
so the jitter is a stable hash of ``(seed, session key, attempt)``, not
a live RNG draw).  A :class:`FailureReport` is the structured outcome of
a ``partial=True`` batch: which sessions failed, how, after how many
attempts, plus the retry/timeout/pool-replacement totals — JSON-able so
the CI chaos job can archive it as an artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Failure taxonomy shared by the engine, the router, and the reports.
FAILURE_KINDS = ("timeout", "crash", "error", "bad_step")


def stable_unit(*parts: object) -> float:
    """Deterministic hash of *parts* mapped into ``[0, 1)``.

    Used for retry jitter and seeded fault placement: the same inputs
    give the same value in every process, which is what lets the chaos
    suite predict schedules exactly.
    """
    digest = hashlib.sha256(":".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_retries=0`` disables retrying (one attempt per session).  The
    delay before retry attempt ``a`` (attempts are 1-based, so the first
    retry is attempt 2) is::

        min(backoff_base_s * backoff_factor**(a - 2), backoff_max_s)
        * (1 + jitter * stable_unit(seed, key, a))
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        """Total attempts per session (first try + retries)."""
        return self.max_retries + 1

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Seconds to back off before (1-based) retry *attempt*."""
        if attempt < 2:
            return 0.0
        base = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 2),
            self.backoff_max_s,
        )
        if self.jitter <= 0 or base <= 0:
            return base
        return base * (1.0 + self.jitter * stable_unit(self.seed, key, attempt))


#: The engine's default when no policy is passed: a couple of fast
#: retries, so transient worker crashes heal without configuration.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class SessionFailure:
    """One session that exhausted its attempts."""

    key: str
    kind: str  # one of FAILURE_KINDS
    attempts: int
    message: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SessionFailure":
        return cls(
            key=str(d["key"]),
            kind=str(d["kind"]),
            attempts=int(d["attempts"]),
            message=str(d.get("message", "")),
        )


@dataclass
class FailureReport:
    """Structured outcome of a fault-tolerant batch decode.

    ``failures`` holds only sessions that *exhausted* their attempts;
    recovered sessions show up in ``retries``/``timeouts`` totals but
    deliver normal results.  ``retries`` counts every re-submission,
    including sessions re-shipped wholesale after a worker-pool crash.
    """

    failures: List[SessionFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_replacements: int = 0
    sessions_ok: int = 0

    def ok(self) -> bool:
        """True when every session ultimately delivered a result."""
        return not self.failures

    @property
    def sessions_failed(self) -> int:
        return len(self.failures)

    def failed_keys(self) -> List[str]:
        """Session keys that delivered no result, in failure order."""
        return [f.key for f in self.failures]

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok(),
            "sessions_ok": self.sessions_ok,
            "sessions_failed": self.sessions_failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "pool_replacements": self.pool_replacements,
            "failures": [f.to_dict() for f in self.failures],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: Union[str, Path]) -> None:
        """Write the report as JSON (the chaos CI job's artifact)."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def describe(self) -> str:
        """One-line summary for logs and CLIs."""
        return (
            f"FailureReport({self.sessions_ok} ok, {self.sessions_failed} failed, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.pool_replacements} pool replacements)"
        )


class DecodeFailure(RuntimeError):
    """Raised by ``predict_dataset(..., partial=False)`` when sessions
    exhaust their retries; carries the full :class:`FailureReport`."""

    def __init__(self, report: FailureReport) -> None:
        super().__init__(report.describe())
        self.report = report


class SessionTimeout(RuntimeError):
    """A session attempt exceeded the configured per-session timeout."""
