"""Sequence-kernel equivalence: batched decode == scalar path == seed.

The sequence-level kernels (``repro.core.kernels``) must be a pure
speedup: every batched row, gate, and trellis recursion reproduces the
per-step scalar path bit-for-bit, and the optimised decoders reproduce
the seed reference decoders' labels and DecodeStats at fixed seeds.
"""

import numpy as np
import pytest

from repro.core.chdbn import CoupledHdbn
from repro.core.emissions import user_state_emissions
from repro.core.hdbn import SingleUserHdbn
from repro.core.kernels import SequenceKernel, viterbi_path
from repro.core.loosely_coupled import NChainHdbn
from repro.core.reference import ReferenceCoupledHdbn, ReferenceNChainHdbn
from repro.datasets import generate_cace_dataset, train_test_split
from repro.mining import ConstraintMiner, CorrelationMiner
from repro.models.distributions import GaussianEmission
from repro.models.hmm import MacroHmm
from repro.models.inputs import step_features
from repro.models.viterbi import viterbi_decode


@pytest.fixture(scope="module")
def pair_models(cace_split, constraint_model, rule_set):
    """(kernels on, kernels off) model pairs per two-resident strategy."""
    train, _ = cace_split

    def build(cls, **kw):
        return cls(constraint_model=constraint_model, seed=5, **kw).fit(train)

    return {
        "ncr": (
            build(SingleUserHdbn, rule_set=rule_set, temporal=False),
            build(
                SingleUserHdbn,
                rule_set=rule_set,
                temporal=False,
                use_sequence_kernels=False,
            ),
        ),
        "ncr_temporal": (
            build(SingleUserHdbn, rule_set=rule_set, temporal=True),
            build(
                SingleUserHdbn,
                rule_set=rule_set,
                temporal=True,
                use_sequence_kernels=False,
            ),
        ),
        "ncs": (
            build(CoupledHdbn, rule_set=None),
            build(CoupledHdbn, rule_set=None, use_sequence_kernels=False),
        ),
        "c2": (
            build(CoupledHdbn, rule_set=rule_set),
            build(CoupledHdbn, rule_set=rule_set, use_sequence_kernels=False),
        ),
    }


@pytest.fixture(scope="module")
def nchain_setup():
    """(kernels on, kernels off, seed reference, test) for 3 residents."""
    dataset = generate_cace_dataset(
        n_homes=1,
        sessions_per_home=3,
        duration_s=1200.0,
        residents_per_home=3,
        seed=77,
    )
    train, test = train_test_split(dataset, 0.67, seed=9)
    rules = CorrelationMiner(min_support=0.03).mine(train.sequences)
    cm = ConstraintMiner().fit(
        train.sequences,
        train.macro_vocab,
        train.postural_vocab,
        train.gestural_vocab,
        train.subloc_vocab,
    )
    fast = NChainHdbn(constraint_model=cm, rule_set=rules, seed=5).fit(train)
    nokern = NChainHdbn(
        constraint_model=cm, rule_set=rules, use_sequence_kernels=False, seed=5
    ).fit(train)
    reference = ReferenceNChainHdbn(
        constraint_model=cm, rule_set=rules, seed=5
    ).fit(train)
    return fast, nokern, reference, test


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------


def test_gaussian_log_pdf_rows_matches_scalar():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(40, 6))
    states = rng.integers(0, 4, size=40)
    em = GaussianEmission(dim=6).fit(features, states)
    rows = em.log_pdf_rows(range(4), features)
    for t in range(features.shape[0]):
        assert np.array_equal(rows[t], em.log_pdf_many(range(4), features[t]))


def test_viterbi_path_matches_dense_decode():
    rng = np.random.default_rng(1)
    t_len, n_states = 25, 7
    log_prior = np.log(rng.dirichlet(np.ones(n_states)))
    log_trans = np.log(rng.dirichlet(np.ones(n_states), size=n_states))
    log_e = rng.normal(size=(t_len, n_states))
    path, _ = viterbi_decode(log_prior, log_trans, log_e)
    kernel_path = viterbi_path(
        log_prior + log_e[0], list(log_e), lambda t: log_trans
    )
    assert list(path) == kernel_path


def test_gmm_bank_rows_match_per_step(pair_models, cace_split):
    _, test = cace_split
    fast, _ = pair_models["c2"]
    bank = fast._gmm_bank
    seq = test.sequences[0]
    rid = seq.resident_ids[0]
    x_rows = np.stack(
        [
            np.asarray(step.observations[rid].features, dtype=float)
            for step in seq.steps[:30]
        ]
    )
    n_macro = fast.constraint_model.n_macro
    rows = bank.log_pdf_rows(x_rows, n_macro)
    for t in range(x_rows.shape[0]):
        per_step = bank.log_pdfs(x_rows[t])
        for m in range(n_macro):
            assert rows[t, m] == per_step.get(m, 0.0)


def test_sequence_kernel_emissions_match_scalar(pair_models, cace_split):
    _, test = cace_split
    fast, _ = pair_models["c2"]
    seq = test.sequences[0]
    kern = SequenceKernel(fast, seq, seq.resident_ids)
    kern.ensure(0, len(seq))
    cm = fast.constraint_model
    rng = np.random.default_rng(3)
    for t in range(0, len(seq), 7):
        for rid in seq.resident_ids:
            m = rng.integers(0, cm.n_macro, size=12)
            l_idx = rng.integers(0, len(cm.subloc_index), size=12)
            got = kern.emissions(rid, t, m, l_idx)
            want = user_state_emissions(fast, seq, rid, t, [], m=m, l=l_idx)
            assert np.array_equal(got, want)


def test_sequence_kernel_batch_size_invariant(pair_models, cace_split):
    """Growing the tables one step at a time (the streaming regime) gives
    the same rows as one full-sequence build."""
    _, test = cace_split
    fast, _ = pair_models["c2"]
    seq = test.sequences[0]
    rid = seq.resident_ids[0]
    bulk = SequenceKernel(fast, seq, seq.resident_ids)
    bulk.ensure(0, len(seq))
    incremental = SequenceKernel(fast, seq, seq.resident_ids)
    for t in range(len(seq)):
        incremental.ensure(t, t + 1)
        assert np.array_equal(
            bulk._macro_rows[rid][t], incremental._macro_rows[rid][t]
        )
        assert np.array_equal(
            bulk._loc_rows[rid][t], incremental._loc_rows[rid][t]
        )


# ---------------------------------------------------------------------------
# strategy equivalence: kernels on == kernels off == seed reference
# ---------------------------------------------------------------------------


def _decode_all(model, sequences):
    out = []
    for seq in sequences:
        labels = model.decode(seq)
        out.append((labels, model.last_stats))
    return out


@pytest.mark.parametrize("name", ["ncr", "ncr_temporal", "ncs", "c2"])
def test_kernels_match_scalar_path(name, pair_models, cace_split):
    _, test = cace_split
    fast, nokern = pair_models[name]
    assert _decode_all(fast, test.sequences) == _decode_all(nokern, test.sequences)
    for seq in test.sequences:
        fast_marg = fast.posterior_marginals(seq)
        slow_marg = nokern.posterior_marginals(seq)
        assert set(fast_marg) == set(slow_marg)
        for rid in fast_marg:
            assert np.array_equal(fast_marg[rid], slow_marg[rid])


def test_nchain_kernels_match_scalar_path(nchain_setup):
    fast, nokern, _, test = nchain_setup
    assert _decode_all(fast, test.sequences) == _decode_all(nokern, test.sequences)
    for seq in test.sequences:
        fast_marg = fast.posterior_marginals(seq)
        slow_marg = nokern.posterior_marginals(seq)
        for rid in fast_marg:
            assert np.array_equal(fast_marg[rid], slow_marg[rid])


def test_coupled_matches_seed_reference(
    pair_models, cace_split, constraint_model, rule_set
):
    train, test = cace_split
    fast, _ = pair_models["c2"]
    reference = ReferenceCoupledHdbn(
        constraint_model=constraint_model, rule_set=rule_set, seed=5
    ).fit(train)
    assert _decode_all(fast, test.sequences) == _decode_all(
        reference, test.sequences
    )


def test_nchain_matches_seed_reference(nchain_setup):
    fast, _, reference, test = nchain_setup
    assert _decode_all(fast, test.sequences) == _decode_all(
        reference, test.sequences
    )


def test_macro_hmm_matches_seed_viterbi(cace_split):
    """NH: batched emission rows + shared viterbi kernel reproduce the
    dense seed decode (per-step log_pdf_many + viterbi_decode) exactly."""
    train, test = cace_split
    model = MacroHmm().fit(train)
    n_m = len(model.macro_index)
    for seq in test.sequences:
        pred = model.decode(seq)
        for rid in seq.resident_ids:
            feats = step_features(seq, rid)
            log_e = np.array(
                [model.emission_.log_pdf_many(range(n_m), x) for x in feats]
            )
            path, _ = viterbi_decode(
                np.log(model.prior_), np.log(model.trans_), log_e
            )
            assert pred[rid] == [model.macro_index.label(i) for i in path]
