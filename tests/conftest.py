"""Shared fixtures: small cached corpora so the suite stays fast."""

from __future__ import annotations

import pytest

from repro.datasets import generate_cace_dataset, generate_casas_dataset, train_test_split
from repro.mining import ConstraintMiner, CorrelationMiner


@pytest.fixture(scope="session")
def cace_dataset():
    """A small two-home CACE-style corpus (shared across the session)."""
    return generate_cace_dataset(
        n_homes=2, sessions_per_home=3, duration_s=1500.0, seed=1234
    )


@pytest.fixture(scope="session")
def cace_split(cace_dataset):
    """(train, test) split of the small corpus."""
    return train_test_split(cace_dataset, 0.67, seed=99)


@pytest.fixture(scope="session")
def casas_dataset():
    """A small CASAS-style corpus (no gestural channel)."""
    return generate_casas_dataset(
        n_pairs=2, sessions_per_pair=2, duration_scale=0.25, seed=321
    )


@pytest.fixture(scope="session")
def constraint_model(cace_split):
    """Constraint model mined from the small training split."""
    train, _ = cace_split
    return ConstraintMiner().fit(
        train.sequences,
        train.macro_vocab,
        train.postural_vocab,
        train.gestural_vocab,
        train.subloc_vocab,
    )


@pytest.fixture(scope="session")
def rule_set(cace_split):
    """Correlation rules mined from the small training split."""
    train, _ = cace_split
    return CorrelationMiner(min_support=0.03).mine(train.sequences)
