"""Confusion matrices over string-labelled predictions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class ConfusionMatrix:
    """Accumulating confusion matrix keyed by label strings."""

    labels: Tuple[str, ...]
    counts: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        self.labels = tuple(self.labels)
        self._index = {label: i for i, label in enumerate(self.labels)}
        if self.counts is None:
            self.counts = np.zeros((len(self.labels), len(self.labels)), dtype=float)

    def update(self, truth: Sequence[str], predicted: Sequence[str]) -> None:
        """Add aligned truth/prediction pairs."""
        if len(truth) != len(predicted):
            raise ValueError("truth and predictions must align")
        for g, p in zip(truth, predicted):
            self.counts[self._index[g], self._index[p]] += 1

    @property
    def total(self) -> float:
        """Total scored instances."""
        return float(self.counts.sum())

    def accuracy(self) -> float:
        """Micro accuracy: trace / total."""
        total = self.total
        return float(np.trace(self.counts) / total) if total else 0.0

    def per_class(self) -> Dict[str, Dict[str, float]]:
        """tp/fp/fn/tn counts per class."""
        out: Dict[str, Dict[str, float]] = {}
        total = self.total
        for i, label in enumerate(self.labels):
            tp = self.counts[i, i]
            fn = self.counts[i].sum() - tp
            fp = self.counts[:, i].sum() - tp
            tn = total - tp - fn - fp
            out[label] = {"tp": tp, "fp": fp, "fn": fn, "tn": tn}
        return out

    def row_normalised(self) -> np.ndarray:
        """Rows as recall distributions."""
        rows = self.counts.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(rows > 0, self.counts / rows, 0.0)

    def most_confused(self, k: int = 5) -> List[Tuple[str, str, float]]:
        """Top-k off-diagonal (truth, predicted, count) cells."""
        cells = []
        for i in range(len(self.labels)):
            for j in range(len(self.labels)):
                if i != j and self.counts[i, j] > 0:
                    cells.append((self.labels[i], self.labels[j], float(self.counts[i, j])))
        cells.sort(key=lambda c: -c[2])
        return cells[:k]
