"""Constraint mining: probabilistic spatiotemporal statistics (§V-C).

Where the correlation miner extracts *deterministic* must/must-not rules,
the constraint miner estimates the *probabilistic* structure the coupled
HDBN's conditional probability tables need:

* factorised micro transition / prior tables per macro activity
  (posture, gesture, sub-location treated as independent factors given the
  macro state — the standard DBN factorisation);
* end-of-sequence statistics ``p_end(micro | macro)`` and
  ``p_end(macro)`` implementing the E-marker semantics of Eqns 3-6 (a
  macro state is *blocked* from changing until its micro sequence
  terminates; a micro sequence cannot outlive its macro);
* coupled macro transitions ``P(m_t | m_{t-1}, partner_m_{t-1})``
  (Augmentation 3) alongside the uncoupled table for single-user models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.trace import LabeledSequence
from repro.models.distributions import Cpt, LabelIndex, shrink_coupled_transitions


@dataclass
class ConstraintModel:
    """Mined probabilistic constraints, ready for CHDBN assembly."""

    macro_index: LabelIndex
    posture_index: LabelIndex
    gesture_index: Optional[LabelIndex]
    subloc_index: LabelIndex

    #: (M,) prior over macro activities at sequence start.
    macro_prior: np.ndarray = field(default=None)
    #: (M,) fraction of steps spent in each macro (class occupancy).
    macro_occupancy: np.ndarray = field(default=None)
    #: (M, M) uncoupled macro transition (used when a partner is absent).
    macro_trans: np.ndarray = field(default=None)
    #: (M, M, M) coupled transition P(m' | m, partner_m).
    macro_trans_coupled: np.ndarray = field(default=None)
    #: (M,) per-step probability that a macro segment terminates.
    macro_end_prob: np.ndarray = field(default=None)
    #: (M,) per-step probability that a micro slice terminates, given macro.
    micro_end_prob: np.ndarray = field(default=None)
    #: per-macro factorised micro priors, (M, P) / (M, G) / (M, L).
    #: These are *segment-start* distributions (Augmentation 2/3's pi):
    #: counted once per macro segment, they parameterise the micro-chain
    #: reset on a macro transition.
    posture_prior: np.ndarray = field(default=None)
    gesture_prior: Optional[np.ndarray] = field(default=None)
    subloc_prior: np.ndarray = field(default=None)
    #: per-macro *occupancy* distributions, (M, P) / (M, G) / (M, L):
    #: counted at every step, these answer "given the macro, what micro
    #: context do we see at a random instant?" and drive the per-step
    #: evidence terms.  Segment-start priors are far flatter (one count per
    #: segment drowns in smoothing) and must not be used for evidence.
    posture_occupancy: np.ndarray = field(default=None)
    gesture_occupancy: Optional[np.ndarray] = field(default=None)
    subloc_occupancy: np.ndarray = field(default=None)
    #: per-macro factorised micro transitions, (M, P, P) / (M, G, G) / (M, L, L).
    posture_trans: np.ndarray = field(default=None)
    gesture_trans: Optional[np.ndarray] = field(default=None)
    subloc_trans: np.ndarray = field(default=None)

    @property
    def n_macro(self) -> int:
        """Number of macro states."""
        return len(self.macro_index)

    def micro_states_for(self, macro: str, min_prob: float = 1e-3) -> List[Tuple[str, Optional[str], str]]:
        """Micro tuples with non-negligible prior under *macro*.

        Used to build candidate state spaces: combinations whose factorised
        prior mass falls below *min_prob* are treated as constrained out
        (the probabilistic analogue of pruning unlikely state sequences).
        """
        m = self.macro_index.index(macro)
        postures = [
            (p, self.posture_prior[m, i])
            for i, p in enumerate(self.posture_index.labels)
            if self.posture_prior[m, i] >= min_prob
        ]
        sublocs = [
            (s, self.subloc_prior[m, i])
            for i, s in enumerate(self.subloc_index.labels)
            if self.subloc_prior[m, i] >= min_prob
        ]
        if self.gesture_index is not None and self.gesture_prior is not None:
            gestures = [
                (g, self.gesture_prior[m, i])
                for i, g in enumerate(self.gesture_index.labels)
                if self.gesture_prior[m, i] >= min_prob
            ]
        else:
            gestures = [(None, 1.0)]
        out = []
        for p, pp in postures:
            for g, gp in gestures:
                for s, sp in sublocs:
                    if pp * gp * sp >= min_prob**2:
                        out.append((p, g, s))
        return out


@dataclass
class ConstraintMiner:
    """Counts constraint statistics from labelled training sequences."""

    alpha: float = 0.5
    end_alpha: float = 1.0

    def fit(
        self,
        sequences: Sequence[LabeledSequence],
        macro_vocab: Tuple[str, ...],
        posture_vocab: Tuple[str, ...],
        gesture_vocab: Tuple[str, ...],
        subloc_vocab: Tuple[str, ...],
    ) -> ConstraintModel:
        """Mine the constraint model from ground-truth labels."""
        macro_idx = LabelIndex(macro_vocab)
        posture_idx = LabelIndex(posture_vocab)
        gesture_idx = LabelIndex(gesture_vocab) if gesture_vocab else None
        subloc_idx = LabelIndex(subloc_vocab)
        n_m, n_p, n_l = len(macro_idx), len(posture_idx), len(subloc_idx)
        n_g = len(gesture_idx) if gesture_idx else 0

        prior_c = Cpt((n_m,), alpha=self.alpha)
        trans_c = Cpt((n_m, n_m), alpha=self.alpha)
        coupled_c = Cpt((n_m, n_m, n_m), alpha=self.alpha)
        post_prior_c = Cpt((n_m, n_p), alpha=self.alpha)
        post_trans_c = Cpt((n_m, n_p, n_p), alpha=self.alpha)
        loc_prior_c = Cpt((n_m, n_l), alpha=self.alpha)
        loc_trans_c = Cpt((n_m, n_l, n_l), alpha=self.alpha)
        gest_prior_c = Cpt((n_m, n_g), alpha=self.alpha) if n_g else None
        gest_trans_c = Cpt((n_m, n_g, n_g), alpha=self.alpha) if n_g else None
        post_occ_c = Cpt((n_m, n_p), alpha=self.alpha)
        loc_occ_c = Cpt((n_m, n_l), alpha=self.alpha)
        gest_occ_c = Cpt((n_m, n_g), alpha=self.alpha) if n_g else None
        macro_occ_c = Cpt((n_m,), alpha=self.alpha)

        # End-of-sequence counters: [continuations, terminations] per macro.
        macro_end = np.full((n_m, 2), self.end_alpha)
        micro_end = np.full((n_m, 2), self.end_alpha)

        for seq in sequences:
            for rid in seq.resident_ids:
                others = [o for o in seq.resident_ids if o != rid]
                partner = others[0] if others else None
                prev = None
                for t, truth in enumerate(seq.truths):
                    mine = truth[rid]
                    m = macro_idx.index(mine.macro)
                    p = posture_idx.index(mine.posture)
                    l = subloc_idx.index(mine.subloc)
                    g = gesture_idx.index(mine.gesture) if gesture_idx else None

                    post_occ_c.observe(m, p)
                    loc_occ_c.observe(m, l)
                    macro_occ_c.observe(m)
                    if gest_occ_c is not None and g is not None:
                        gest_occ_c.observe(m, g)

                    if prev is None:
                        prior_c.observe(m)
                        post_prior_c.observe(m, p)
                        loc_prior_c.observe(m, l)
                        if gest_prior_c is not None and g is not None:
                            gest_prior_c.observe(m, g)
                    else:
                        pm = macro_idx.index(prev.macro)
                        trans_c.observe(pm, m)
                        if partner is not None:
                            ppm = macro_idx.index(seq.truths[t - 1][partner].macro)
                            coupled_c.observe(pm, ppm, m)
                        # Macro end marker: did the segment terminate here?
                        macro_end[pm, 1 if mine.macro != prev.macro else 0] += 1
                        if mine.macro == prev.macro:
                            # Within-macro micro dynamics.
                            pp = posture_idx.index(prev.posture)
                            pl = subloc_idx.index(prev.subloc)
                            post_trans_c.observe(m, pp, p)
                            loc_trans_c.observe(m, pl, l)
                            if gest_trans_c is not None and g is not None:
                                pg = gesture_idx.index(prev.gesture)
                                gest_trans_c.observe(m, pg, g)
                            micro_changed = (
                                mine.posture != prev.posture
                                or mine.subloc != prev.subloc
                                or mine.gesture != prev.gesture
                            )
                            micro_end[pm, 1 if micro_changed else 0] += 1
                        else:
                            # New macro: micro chain restarts from its prior
                            # (Augmentation 3's pi-vs-a distinction), and by
                            # the termination constraint the old micro slice
                            # must have ended.
                            post_prior_c.observe(m, p)
                            loc_prior_c.observe(m, l)
                            if gest_prior_c is not None and g is not None:
                                gest_prior_c.observe(m, g)
                            micro_end[pm, 1] += 1
                    prev = mine

        model = ConstraintModel(
            macro_index=macro_idx,
            posture_index=posture_idx,
            gesture_index=gesture_idx,
            subloc_index=subloc_idx,
        )
        model.macro_prior = prior_c.probabilities()
        model.macro_trans = trans_c.probabilities()
        model.macro_trans_coupled = shrink_coupled_transitions(
            coupled_c.counts, alpha=self.alpha
        )
        model.macro_end_prob = macro_end[:, 1] / macro_end.sum(axis=1)
        model.micro_end_prob = micro_end[:, 1] / micro_end.sum(axis=1)
        model.posture_prior = post_prior_c.probabilities()
        model.posture_trans = post_trans_c.probabilities()
        model.subloc_prior = loc_prior_c.probabilities()
        model.subloc_trans = loc_trans_c.probabilities()
        model.posture_occupancy = post_occ_c.probabilities()
        model.subloc_occupancy = loc_occ_c.probabilities()
        model.macro_occupancy = macro_occ_c.probabilities()
        if gest_prior_c is not None:
            model.gesture_prior = gest_prior_c.probabilities()
            model.gesture_trans = gest_trans_c.probabilities()
            model.gesture_occupancy = gest_occ_c.probabilities()
        return model
