"""Reader/writer for the WSU CASAS ADLMR interchange format.

The real multi-resident CASAS corpus (Singla et al. [9], dataset *adlmr*)
ships as whitespace-separated text, one sensor event per line::

    2009-02-02 12:28:06.843806  M13  ON  1  2

with columns date, time, sensor id, sensor value, resident id, task id.
Motion sensors are ``M..``, item sensors ``I..``, door sensors ``D..``.

This environment has no network access, so the experiments run on the
synthetic CASAS-style corpus — but the substitution is only honest if the
real data can be dropped in later.  This module provides both directions:

* :func:`write_events` exports a simulated session in the ADLMR shape, so
  external CASAS tooling can consume our traces;
* :func:`read_events` + :func:`events_to_sequence` ingest real (or
  exported) ADLMR text into a :class:`~repro.datasets.trace.
  LabeledSequence`, given a sensor -> sub-location mapping, after which
  every recogniser in this package runs on it unchanged.

The annotation conventions follow the public corpus: resident and task ids
are 1-based integers, timestamps are ISO dates with microseconds, and a
resident's task id labels every event *they* triggered.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

from repro.datasets.observation import MicroObservationModel
from repro.datasets.trace import (
    ContextStep,
    LabeledSequence,
    ResidentObservation,
    ResidentTruth,
)
from repro.home.layout import CASAS_OBJECT_PLACEMENT, ApartmentLayout, casas_layout
from repro.util.rng import RandomState, ensure_rng

_EPOCH = datetime(2009, 2, 2, 12, 0, 0)


@dataclass(frozen=True)
class CasasEvent:
    """One line of an ADLMR file."""

    timestamp: datetime
    sensor_id: str
    value: str
    resident: int
    task: int

    def render(self) -> str:
        """The event in the corpus's whitespace-separated line format."""
        stamp = self.timestamp.strftime("%Y-%m-%d %H:%M:%S.%f")
        return f"{stamp}\t{self.sensor_id}\t{self.value}\t{self.resident}\t{self.task}"


def parse_line(line: str) -> Optional[CasasEvent]:
    """Parse one ADLMR line; returns None for blank/comment lines."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    if len(parts) < 6:
        raise ValueError(f"malformed ADLMR line (need 6 columns): {line!r}")
    date, time, sensor, value, resident, task = parts[:6]
    try:
        timestamp = datetime.strptime(f"{date} {time}", "%Y-%m-%d %H:%M:%S.%f")
    except ValueError:
        timestamp = datetime.strptime(f"{date} {time}", "%Y-%m-%d %H:%M:%S")
    return CasasEvent(
        timestamp=timestamp,
        sensor_id=sensor,
        value=value,
        resident=int(resident),
        task=int(task),
    )


def read_events(source: Union[str, Path, TextIO]) -> List[CasasEvent]:
    """Read an ADLMR file (path or open handle) into events."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_events(handle)
    events = []
    for line in source:
        event = parse_line(line)
        if event is not None:
            events.append(event)
    return events


def write_events(
    events: Iterable[CasasEvent], target: Union[str, Path, TextIO]
) -> None:
    """Write events in the corpus's line format."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_events(events, handle)
            return
    for event in events:
        target.write(event.render() + "\n")


# ---------------------------------------------------------------------------
# export: simulated LabeledSequence -> ADLMR events
# ---------------------------------------------------------------------------


def sequence_to_events(
    seq: LabeledSequence,
    task_index: Dict[str, int],
    start: datetime = _EPOCH,
) -> List[CasasEvent]:
    """Export one labelled sequence as ADLMR motion/item events.

    Each step emits an ``ON`` event per fired sub-location motion sensor
    and per fired object sensor.  Events are attributed to the resident
    whose ground-truth context matches the sensor (the corpus annotators
    did the same from video); unattributable firings go to resident 1.
    """
    events: List[CasasEvent] = []
    rids = list(seq.resident_ids)
    for step, truth in zip(seq.steps, seq.truths):
        stamp = start + timedelta(seconds=step.t)
        for subloc in sorted(step.sublocs_fired):
            owner = next(
                (i + 1 for i, rid in enumerate(rids) if truth[rid].subloc == subloc),
                1,
            )
            rid = rids[owner - 1]
            events.append(
                CasasEvent(
                    timestamp=stamp,
                    sensor_id=f"M{subloc[2:]:0>2s}",
                    value="ON",
                    resident=owner,
                    task=task_index.get(truth[rid].macro, 0),
                )
            )
        for obj in sorted(step.objects_fired):
            # Attribute the item event to the resident standing at the
            # object's host sub-region, if any (proximity attribution, as
            # the corpus annotators did from video).
            host = CASAS_OBJECT_PLACEMENT.get(obj)
            owner = next(
                (i + 1 for i, rid in enumerate(rids) if truth[rid].subloc == host),
                1,
            )
            rid = rids[owner - 1]
            events.append(
                CasasEvent(
                    timestamp=stamp,
                    sensor_id=f"I_{obj}",
                    value="ON",
                    resident=owner,
                    task=task_index.get(truth[rid].macro, 0),
                )
            )
    return events


# ---------------------------------------------------------------------------
# import: ADLMR events -> LabeledSequence
# ---------------------------------------------------------------------------


def default_sensor_map(layout: Optional[ApartmentLayout] = None) -> Dict[str, str]:
    """Sensor-id -> sub-location map matching :func:`sequence_to_events`."""
    layout = layout or casas_layout()
    return {f"M{sr[2:]:0>2s}": sr for sr in layout.sub_region_ids}


def events_to_sequence(
    events: Sequence[CasasEvent],
    sensor_to_subloc: Dict[str, str],
    task_names: Dict[int, str],
    step_s: float = 15.0,
    home_id: str = "adlmr",
    layout: Optional[ApartmentLayout] = None,
    observation_model: Optional[MicroObservationModel] = None,
    seed: RandomState = None,
) -> LabeledSequence:
    """Discretise ADLMR events into a labelled sequence.

    The real corpus has no wearable channel; postural context is
    synthesised from each resident's motion density (walking while their
    sensors fire frequently, standing/sitting otherwise), mirroring how
    the paper's CASAS experiments run "no oral-gestural" with postural
    context from the smartphone.

    Parameters
    ----------
    sensor_to_subloc:
        Mapping from motion-sensor ids to SR ids (see
        :func:`default_sensor_map`); unmapped sensors are treated as item
        sensors and feed the object channel.
    task_names:
        task id -> macro label (the corpus's 15 scripted tasks).
    """
    if not events:
        raise ValueError("cannot build a sequence from zero events")
    layout = layout or casas_layout()
    rng = ensure_rng(seed)
    obs_model = observation_model or MicroObservationModel(seed=rng.integers(0, 2**31))

    t0 = min(e.timestamp for e in events)
    horizon = (max(e.timestamp for e in events) - t0).total_seconds()
    n_steps = max(int(horizon // step_s) + 1, 1)
    residents = sorted({e.resident for e in events})
    rids = [f"R{r}" for r in residents]

    # Bucket events by step.
    by_step: List[List[CasasEvent]] = [[] for _ in range(n_steps)]
    for event in events:
        idx = int((event.timestamp - t0).total_seconds() // step_s)
        by_step[min(idx, n_steps - 1)].append(event)

    # Track each resident's last known sub-location / task for label
    # carry-forward through silent windows.
    last_subloc = {rid: layout.sub_region_ids[0] for rid in rids}
    last_task = {rid: 0 for rid in rids}

    steps: List[ContextStep] = []
    truths: List[Dict[str, ResidentTruth]] = []
    for i, bucket in enumerate(by_step):
        sublocs_fired = set()
        objects_fired = set()
        per_resident_events: Dict[str, List[CasasEvent]] = {rid: [] for rid in rids}
        for event in bucket:
            rid = f"R{event.resident}"
            if rid in per_resident_events:
                per_resident_events[rid].append(event)
            subloc = sensor_to_subloc.get(event.sensor_id)
            if subloc is not None:
                sublocs_fired.add(subloc)
            else:
                objects_fired.add(event.sensor_id.removeprefix("I_"))

        observations: Dict[str, ResidentObservation] = {}
        step_truth: Dict[str, ResidentTruth] = {}
        for rid in rids:
            mine = per_resident_events[rid]
            motion_count = 0
            for event in mine:
                subloc = sensor_to_subloc.get(event.sensor_id)
                if subloc is not None:
                    last_subloc[rid] = subloc
                    motion_count += 1
                if event.task:
                    last_task[rid] = event.task
            macro = task_names.get(last_task[rid], "random")
            subloc = last_subloc[rid]
            # Postural context synthesised from motion density.
            posture = "walking" if motion_count >= 3 else ("standing" if motion_count else "sitting")
            room = layout.room_of(subloc)
            step_truth[rid] = ResidentTruth(macro, posture, "silent", subloc, room)
            observations[rid] = ResidentObservation(
                posture=obs_model.observe_posture(posture),
                gesture=None,
                features=obs_model.sample_features(posture, None, drift_key=f"{home_id}:{rid}"),
                subloc_candidates=tuple(sorted(sublocs_fired))
                or tuple(layout.sub_region_ids),
                position_estimate=None,
            )
        rooms_fired = frozenset(layout.room_of(s) for s in sublocs_fired)
        steps.append(
            ContextStep(
                t=i * step_s + step_s / 2,
                observations=observations,
                rooms_fired=rooms_fired,
                objects_fired=frozenset(objects_fired),
                sublocs_fired=frozenset(sublocs_fired),
            )
        )
        truths.append(step_truth)

    return LabeledSequence(
        home_id=home_id,
        resident_ids=tuple(rids),
        step_s=step_s,
        steps=steps,
        truths=truths,
    )
