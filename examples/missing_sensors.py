"""Graceful degradation when wearable sensors drop out.

The paper motivates handling "missing sensor values" (Related Works): a
phone left on the charger, a neck tag with a flat battery.  The engine's
factorised emission model marginalises absent channels exactly, so
recognition degrades smoothly instead of collapsing.  This example
corrupts a test session at increasing dropout rates and reports accuracy.

Run:  python examples/missing_sensors.py
"""

import numpy as np

from repro.core.engine import CaceEngine
from repro.datasets.cace import generate_cace_dataset
from repro.datasets.trace import (
    ContextStep,
    LabeledSequence,
    ResidentObservation,
    train_test_split,
)


def drop_wearables(seq: LabeledSequence, fraction: float, rng) -> LabeledSequence:
    """Null the postural + feature channels on a fraction of steps."""
    steps = []
    for step in seq.steps:
        observations = {}
        for rid, obs in step.observations.items():
            if rng.random() < fraction:
                obs = ResidentObservation(
                    posture=None,
                    gesture=None,
                    features=tuple(float("nan") for _ in obs.features),
                    subloc_candidates=obs.subloc_candidates,
                    position_estimate=obs.position_estimate,
                )
            observations[rid] = obs
        steps.append(
            ContextStep(
                step.t, observations, step.rooms_fired, step.objects_fired, step.sublocs_fired
            )
        )
    return LabeledSequence(seq.home_id, seq.resident_ids, seq.step_s, steps, seq.truths)


def main() -> None:
    dataset = generate_cace_dataset(
        n_homes=2, sessions_per_home=4, duration_s=3000.0, seed=29
    )
    train, test = train_test_split(dataset, 0.7, seed=2)
    engine = CaceEngine(strategy="c2", seed=5)
    engine.fit(train)

    rng = np.random.default_rng(1)
    print(f"{'dropout':>8s} {'accuracy':>9s}")
    for fraction in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        correct = n = 0
        for seq in test.sequences:
            corrupted = drop_wearables(seq, fraction, rng)
            pred = engine.predict(corrupted)
            for rid in seq.resident_ids:
                truth = seq.macro_labels(rid)
                correct += sum(a == b for a, b in zip(truth, pred[rid]))
                n += len(truth)
        print(f"{fraction:7.0%} {correct / n:8.1%}")

    print(
        "\neven at 100% wearable dropout the ambient channels (PIR, objects,"
        " beacons) and the coupled structure keep recognition well above chance."
    )


if __name__ == "__main__":
    main()
