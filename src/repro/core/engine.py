"""End-to-end CACE engine (the Fig 2 pipeline).

``CaceEngine.fit`` runs the context miners appropriate to the selected
pruning strategy and assembles the recogniser; ``predict`` decodes macro
activities for a session.  Build and decode wall-clock times are recorded
in a :class:`~repro.util.timer.Stopwatch` — the paper's computational-
overhead metric (Fig 11b, "total time required to build entire model").

Batched decoding: ``predict_dataset(dataset, workers=N)`` fans whole
sessions across worker processes (sessions are independent given a fitted
model, so this is embarrassingly parallel) and merges each session's
:class:`~repro.core.chdbn.DecodeStats` into ``batch_stats_`` — the
aggregate the throughput benchmarks and capacity planning read.
``posterior_marginals`` is available for every strategy, including NCR's
frame-wise posteriors, so ROC/PRC sweeps cover all four.

Fault tolerance: every batched decode runs under a
:class:`~repro.resilience.RetryPolicy` (bounded retries, exponential
backoff, deterministic jitter), per-session timeouts (``timeout_s``), and
automatic pool replacement after a worker crash (``BrokenProcessPool`` —
the pool is respawned once per call, re-shipping the model through the
zero-copy initializer, and every unfinished session is re-submitted).
With ``partial=True`` a batch never raises: completed sessions are
returned and the structured :class:`~repro.resilience.FailureReport`
lands in ``failure_report_``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.api import DecodeStats, Recognizer, StepFilter
from repro.core.chdbn import CoupledHdbn
from repro.core.hdbn import SingleUserHdbn
from repro.core.loosely_coupled import NChainHdbn
from repro.core.pruning import PruningStrategy
from repro.datasets.trace import Dataset, LabeledSequence
from repro.mining.constraint_miner import ConstraintMiner
from repro.mining.correlation_miner import CorrelationMiner, CorrelationRuleSet
from repro.models.hmm import MacroHmm
from repro.obs import runtime as obs
from repro.resilience import faultinject
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    DecodeFailure,
    FailureReport,
    RetryPolicy,
    SessionFailure,
    SessionTimeout,
)
from repro.util.rng import RandomState, ensure_rng
from repro.util.timer import Stopwatch


#: Per-worker-process model installed by :func:`_init_worker` — loaded once
#: per pool lifetime instead of being pickled into every task submission.
_WORKER_MODEL: Optional[Recognizer] = None


def _init_worker(payload: bytes, codec: str) -> None:
    """Pool initializer: deserialise the fitted model once per worker.

    ``codec`` is ``"artifact"`` for the JSON model-payload codec (the four
    first-class families — inspectable, no pickle) or ``"pickle"`` for
    anything else (e.g. reference subclasses used by the benchmarks).
    """
    global _WORKER_MODEL
    faultinject.mark_worker()  # arms real os._exit crash injection
    if codec == "artifact":
        from repro.util.artifacts import model_from_payload  # lazy: cycle

        _WORKER_MODEL = model_from_payload(payload)
    else:
        import pickle

        _WORKER_MODEL = pickle.loads(payload)


def _decode_session(item: Tuple[str, LabeledSequence, int]):
    """Worker body for batched decoding: one session against the
    worker-resident model.  Returns a ``(key, predictions, DecodeStats,
    decode_seconds)`` tuple — the in-worker wall-clock lets the parent
    split a future's turnaround into decode time vs queue wait, and is
    what per-session timeouts are checked against.  Submitting sessions
    one at a time gives dynamic scheduling (fast workers pick up the
    next session instead of idling behind a pre-assigned chunk).

    ``attempt`` is the 1-based retry ordinal; the fault-injection hook
    uses it to stop firing once a planned fault is spent."""
    key, seq, attempt = item
    t0 = time.perf_counter()
    faultinject.maybe_inject(key, attempt)
    pred = _WORKER_MODEL.decode(seq)
    return key, pred, _WORKER_MODEL.last_stats, time.perf_counter() - t0


class _BatchInstruments:
    """Cached obs handles for one predict_dataset call (None when off)."""

    __slots__ = (
        "decode",
        "wait",
        "sessions",
        "retries",
        "timeouts",
        "failures",
        "pool_replacements",
    )

    def __init__(self, reg) -> None:
        self.decode = reg.histogram("engine.decode_seconds")
        self.wait = reg.histogram("engine.queue_wait_seconds")
        self.sessions = reg.counter("engine.sessions_decoded")
        self.retries = reg.counter("engine.retries")
        self.timeouts = reg.counter("engine.timeouts")
        self.failures = reg.counter("engine.session_failures")
        self.pool_replacements = reg.counter("engine.pool_replacements")


def _failure_kind(exc: BaseException) -> str:
    """Map an attempt's exception onto the shared failure taxonomy."""
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(exc, (SessionTimeout, FuturesTimeout)):
        return "timeout"
    if isinstance(exc, BrokenProcessPool) or getattr(exc, "kind", None) == "crash":
        return "crash"
    return "error"


@dataclass
class CaceEngine:
    """High-level recogniser with pluggable pruning strategy.

    Parameters
    ----------
    strategy:
        ``"nh"`` / ``"ncr"`` / ``"ncs"`` / ``"c2"`` (the CACE default).
    min_support / min_confidence:
        Apriori thresholds for the correlation miner (paper: 4% / 99%).
    initial_rules:
        Optional user-seeded rules (Base application, Fig 12); merged with
        mined rules for correlation-using strategies.
    """

    strategy: str = "c2"
    min_support: float = 0.04
    min_confidence: float = 0.99
    initial_rules: Optional[CorrelationRuleSet] = None
    gmm_components: int = 4
    max_states_per_user: int = 36
    seed: RandomState = None
    stopwatch: Stopwatch = field(default_factory=Stopwatch, init=False)
    rule_set_: Optional[CorrelationRuleSet] = field(default=None, init=False)
    model_: Optional[Recognizer] = field(default=None, init=False)
    #: Aggregate DecodeStats of the last predict_dataset call.
    batch_stats_: Optional[DecodeStats] = field(default=None, init=False)
    #: Structured failure outcome of the last predict_dataset call
    #: (empty report when every session succeeded).
    failure_report_: Optional[FailureReport] = field(default=None, init=False)
    #: Worker pools replaced after a crash, over the engine's lifetime.
    pool_replacements_: int = field(default=0, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)
    #: Times the fitted model was serialised for worker shipping (once per
    #: pool lifetime — observability for the zero-copy contract).
    model_ship_count_: int = field(default=0, init=False)
    #: Lazily created worker pool, reused across predict_dataset calls so
    #: steady-state batched decoding doesn't pay process spawn per batch.
    _pool: object = field(default=None, init=False, repr=False)
    _pool_workers: int = field(default=0, init=False, repr=False)
    #: Strong reference to the model the live pool was initialised with; a
    #: refit swaps ``model_`` and forces a pool rebuild.  (Identity of a
    #: held reference, not ``id()`` of a dead one — ids get reused.)
    _pool_model_ref: object = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._strategy = PruningStrategy(self.strategy)
        self._rng = ensure_rng(self.seed)

    # -- training ------------------------------------------------------------------

    def fit(self, train: Dataset) -> "CaceEngine":
        """Mine rules/constraints per the strategy and build the model."""
        self.stopwatch = Stopwatch()
        strategy = self._strategy

        if strategy.name == "nh":
            with self.stopwatch.phase("train"):
                self.model_ = MacroHmm().fit(train)
            return self

        rule_set: Optional[CorrelationRuleSet] = None
        if strategy.uses_correlations:
            with self.stopwatch.phase("correlation_mining"):
                miner = CorrelationMiner(
                    min_support=self.min_support, min_confidence=self.min_confidence
                )
                rule_set = miner.mine(train.sequences)
                if self.initial_rules is not None:
                    rule_set = rule_set.merge(self.initial_rules)
        elif self.initial_rules is not None:
            rule_set = self.initial_rules
        self.rule_set_ = rule_set

        with self.stopwatch.phase("constraint_mining"):
            constraint_model = ConstraintMiner().fit(
                train.sequences,
                train.macro_vocab,
                train.postural_vocab,
                train.gestural_vocab if train.has_gestural else (),
                train.subloc_vocab,
            )

        n_residents = max(
            (len(seq.resident_ids) for seq in train.sequences), default=2
        )
        with self.stopwatch.phase("train"):
            if strategy.name == "ncr":
                model = SingleUserHdbn(
                    constraint_model=constraint_model,
                    rule_set=rule_set,
                    gmm_components=self.gmm_components,
                    max_states_per_user=self.max_states_per_user,
                    temporal=False,
                    seed=self._rng.integers(0, 2**31),
                )
            elif n_residents > 2:
                # The paper's 3-4 occupant conjecture: the N-chain model.
                model = NChainHdbn(
                    constraint_model=constraint_model,
                    rule_set=rule_set if strategy.name == "c2" else None,
                    gmm_components=self.gmm_components,
                    seed=self._rng.integers(0, 2**31),
                )
            else:  # ncs / c2 on a resident pair
                model = CoupledHdbn(
                    constraint_model=constraint_model,
                    rule_set=rule_set if strategy.name == "c2" else None,
                    gmm_components=self.gmm_components,
                    max_states_per_user=self.max_states_per_user,
                    seed=self._rng.integers(0, 2**31),
                )
            model.fit(train)
            self.model_ = model
        return self

    # -- inference ------------------------------------------------------------------

    def predict(self, seq: LabeledSequence) -> Dict[str, List[str]]:
        """Per-resident macro labels for one session."""
        if self.model_ is None:
            raise RuntimeError("engine is not fitted")
        with self.stopwatch.phase("decode"):
            return self.model_.decode(seq)

    def predict_dataset(
        self,
        dataset: Dataset,
        workers: int = 1,
        *,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        partial: bool = False,
    ) -> Dict[str, Dict[str, List[str]]]:
        """Predictions keyed by a per-sequence identifier.

        With ``workers > 1`` sessions are fanned across that many worker
        processes (the fitted model is shipped to each worker once).
        Per-session :class:`DecodeStats` are merged into ``batch_stats_``
        in both modes; the serial path additionally keeps per-decode
        wall-clock in the stopwatch as before.

        Fault tolerance
        ---------------
        Each session is attempted up to ``retry.max_attempts`` times
        (default :data:`~repro.resilience.DEFAULT_RETRY_POLICY`) with
        exponential backoff and deterministic jitter between attempts.
        ``timeout_s`` bounds one attempt's decode wall-clock: with a pool
        it is enforced while waiting on the future (a hung worker is
        abandoned and the session re-submitted), serially it is checked
        against the attempt's measured duration.  A worker crash breaks
        the whole pool (``BrokenProcessPool``); the pool is respawned
        once per call — re-shipping the model through the zero-copy
        initializer — and every unfinished session re-submitted.

        The structured outcome lands in ``failure_report_`` (always set,
        empty on a clean run).  Sessions that exhaust their attempts
        raise :class:`~repro.resilience.DecodeFailure` — unless
        ``partial=True``, which returns the completed sessions and
        leaves the failures in the report instead.
        """
        if self.model_ is None:
            raise RuntimeError("engine is not fitted")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        policy = retry if retry is not None else DEFAULT_RETRY_POLICY
        items = [
            (f"{seq.home_id}:{i}", seq) for i, seq in enumerate(dataset.sequences)
        ]
        self.batch_stats_ = DecodeStats()
        report = FailureReport()
        self.failure_report_ = report
        out: Dict[str, Dict[str, List[str]]] = {}
        # Resolved per call (cheap: once per dataset, not per step) so an
        # engine built before obs.enable() still reports.
        reg = obs.registry_if_enabled()
        ins = _BatchInstruments(reg) if reg is not None else None
        if workers <= 1 or len(items) <= 1:
            # Serial path: no worker pool is created (or touched) at all.
            with obs.span(
                "engine.predict_dataset", sessions=len(items), workers=1
            ), self.stopwatch.phase("decode"):
                self._predict_serial(items, out, policy, timeout_s, report, ins)
        else:
            workers = min(workers, len(items))
            with obs.span(
                "engine.predict_dataset", sessions=len(items), workers=workers
            ), self.stopwatch.phase("decode"):
                self._predict_pooled(
                    items, workers, out, policy, timeout_s, report, ins
                )
        report.sessions_ok = len(out)
        if report.failures and not partial:
            raise DecodeFailure(report)
        return out

    # -- fault-tolerant decode internals -------------------------------------------

    def _account_failure(
        self,
        key: str,
        attempt: int,
        exc: BaseException,
        policy: RetryPolicy,
        report: FailureReport,
        ins: Optional[_BatchInstruments],
    ) -> bool:
        """Book one failed attempt; True when the session is exhausted
        (a :class:`SessionFailure` was recorded), False to retry."""
        kind = _failure_kind(exc)
        if kind == "timeout":
            report.timeouts += 1
            if ins is not None:
                ins.timeouts.inc()
        elif kind == "crash":
            report.crashes += 1
        if attempt >= policy.max_attempts:
            report.failures.append(SessionFailure(key, kind, attempt, str(exc)))
            if ins is not None:
                ins.failures.inc()
            return True
        report.retries += 1
        if ins is not None:
            ins.retries.inc()
        return False

    def _record_success(
        self,
        out: Dict[str, Dict[str, List[str]]],
        key: str,
        pred: Dict[str, List[str]],
        stats: Optional[DecodeStats],
        decode_s: float,
        ins: Optional[_BatchInstruments],
    ) -> None:
        out[key] = pred
        if stats is not None:
            self.batch_stats_.merge(stats)
        if ins is not None:
            ins.decode.observe(decode_s)
            ins.sessions.inc()

    def _predict_serial(
        self, items, out, policy, timeout_s, report, ins
    ) -> None:
        for key, seq in items:
            attempt = 1
            while True:
                t0 = time.perf_counter()
                try:
                    faultinject.maybe_inject(key, attempt)
                    pred = self.model_.decode(seq)
                    decode_s = time.perf_counter() - t0
                    if timeout_s is not None and decode_s > timeout_s:
                        raise SessionTimeout(
                            f"session {key!r} decoded in {decode_s:.3f}s "
                            f"(timeout {timeout_s}s)"
                        )
                except Exception as exc:
                    if self._account_failure(key, attempt, exc, policy, report, ins):
                        break
                    attempt += 1
                    time.sleep(policy.delay_s(attempt, key))
                    continue
                self._record_success(out, key, pred, self.model_.last_stats,
                                     decode_s, ins)
                break

    def _predict_pooled(
        self, items, workers, out, policy, timeout_s, report, ins
    ) -> None:
        """Wave-based fan-out: submit every pending session, drain in
        submission order, collect retries into the next wave.  With no
        failures there is exactly one wave, so the happy path is the old
        dynamic-scheduling fan-out unchanged."""
        from concurrent.futures.process import BrokenProcessPool

        pool = self._worker_pool(workers)
        wave: List[Tuple[str, LabeledSequence, int]] = [
            (key, seq, 1) for key, seq in items
        ]
        failed: set = set()
        while wave:
            futures = []
            done_at: Dict[object, float] = {}
            broken: Optional[BaseException] = None
            try:
                for key, seq, attempt in wave:
                    future = pool.submit(_decode_session, (key, seq, attempt))
                    if ins is not None:
                        # Completion wall-clock captured the moment the
                        # result lands, not when we drain it below.
                        future.add_done_callback(
                            lambda f: done_at.__setitem__(f, time.perf_counter())
                        )
                    futures.append((future, time.perf_counter()))
            except BrokenProcessPool as exc:
                broken = exc  # pool died mid-submission: crash-handle the rest
            next_wave: List[Tuple[str, LabeledSequence, int]] = []
            max_delay = 0.0
            for i, (key, seq, attempt) in enumerate(wave):
                if broken is not None and i >= len(futures):
                    exc: BaseException = broken  # never submitted this wave
                else:
                    future, submit_t = futures[i]
                    try:
                        _, pred, stats, decode_s = future.result(timeout=timeout_s)
                        if timeout_s is not None and decode_s > timeout_s:
                            raise SessionTimeout(
                                f"session {key!r} decoded in {decode_s:.3f}s "
                                f"(timeout {timeout_s}s)"
                            )
                        self._record_success(out, key, pred, stats, decode_s, ins)
                        if ins is not None:
                            turnaround = (
                                done_at.get(future, time.perf_counter()) - submit_t
                            )
                            ins.wait.observe(max(turnaround - decode_s, 0.0))
                        continue
                    except BrokenProcessPool as exc_:
                        broken = exc_
                        exc = exc_
                    except Exception as exc_:
                        exc = exc_
                if self._account_failure(key, attempt, exc, policy, report, ins):
                    failed.add(key)
                else:
                    next_wave.append((key, seq, attempt + 1))
                    max_delay = max(max_delay, policy.delay_s(attempt + 1, key))
            if broken is not None and not next_wave:
                # Nothing left to retry, but never leave a broken pool
                # cached for the next batch call.
                self.close()
            elif broken is not None:
                pool = self._replace_pool(workers, report, ins)
                if pool is None:
                    # Second crash in one call: stop retrying, fail the rest.
                    for key, _seq, attempt in next_wave:
                        failed.add(key)
                        report.failures.append(
                            SessionFailure(key, "crash", attempt, str(broken))
                        )
                        if ins is not None:
                            ins.failures.inc()
                    return
            if max_delay > 0.0:
                time.sleep(max_delay)
            wave = next_wave

    def _replace_pool(self, workers, report, ins):
        """Tear down a broken pool and respawn it once per batch call
        (re-shipping the model through the initializer); None when this
        call's replacement budget is spent."""
        if report.pool_replacements >= 1:
            self.close()
            return None
        self.close()
        report.pool_replacements += 1
        self.pool_replacements_ += 1
        if ins is not None:
            ins.pool_replacements.inc()
        return self._worker_pool(workers)

    def _worker_pool(self, workers: int):
        """The persistent process pool, (re)built when the size or the
        fitted model changes.  The model ships to the workers exactly once
        per pool lifetime, through the pool initializer — task submissions
        carry only ``(key, sequence)`` items."""
        from concurrent.futures import ProcessPoolExecutor

        if (
            self._pool is None
            or self._pool_workers != workers
            or self._pool_model_ref is not self.model_
        ):
            self.close()
            payload, codec = self._model_payload()
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(payload, codec),
            )
            self._pool_workers = workers
            self._pool_model_ref = self.model_
            reg = obs.registry_if_enabled()
            if reg is not None:
                reg.gauge("engine.pool_workers").set(workers)
        return self._pool

    def _model_payload(self) -> Tuple[bytes, str]:
        """Serialise ``model_`` once for worker shipping."""
        from repro.util.artifacts import (  # lazy: avoid an import cycle
            model_to_payload,
            payload_supported,
        )

        self.model_ship_count_ += 1
        reg = obs.registry_if_enabled()
        if reg is not None:
            reg.counter("engine.model_ships").inc()
        if payload_supported(self.model_):
            return model_to_payload(self.model_), "artifact"
        import pickle

        return pickle.dumps(self.model_), "pickle"

    def close(self) -> None:
        """Shut down the batched-decoding worker pool, if any.

        Idempotent, and safe on a partially-initialised engine (e.g. when
        ``__post_init__`` raised before the pool field existed, or when
        ``fit`` was never called).  Every teardown path — including one
        triggered by a ``BrokenProcessPool`` — zeroes the
        ``engine.pool_workers`` gauge so it never reports dead workers.
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)
            reg = obs.registry_if_enabled()
            if reg is not None:
                reg.gauge("engine.pool_workers").set(0)
        self._pool = None
        self._pool_workers = 0
        self._pool_model_ref = None

    def __enter__(self) -> "CaceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        # Best-effort: don't strand worker processes when the engine is
        # garbage-collected without close().
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self):
        # The worker pool is process-local state; everything else ships.
        state = dict(self.__dict__)
        state["_pool"] = None
        state["_pool_workers"] = 0
        state["_pool_model_ref"] = None
        return state

    def posterior_marginals(self, seq: LabeledSequence) -> Dict[str, np.ndarray]:
        """Posterior macro marginals per resident (scores for ROC/PRC).

        Every strategy is covered through the shared
        :class:`~repro.core.api.Recognizer` surface: NH via the flat HMM's
        forward-backward, NCR via the single-user model's frame-wise (or
        chain) posteriors, NCS/C2 via the coupled trellis sum-product.
        """
        if self.model_ is None:
            raise RuntimeError("engine is not fitted")
        return self.model_.posterior_marginals(seq)

    def step_filter(self, lag: int = 0) -> StepFilter:
        """A fixed-lag smoother bound to the fitted model."""
        if self.model_ is None:
            raise RuntimeError("engine is not fitted")
        return self.model_.step_filter(lag)

    def describe(self) -> str:
        """One-line summary of the engine and its fitted model."""
        model = self.model_.describe() if self.model_ is not None else "unfitted"
        return f"CaceEngine(strategy={self.strategy!r}): {model}"

    # -- persistence ----------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the fitted engine as a versioned JSON model artifact."""
        from repro.util.artifacts import save_engine  # lazy: avoid a cycle

        save_engine(self, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CaceEngine":
        """Reconstruct a fitted engine from :meth:`save`'s artifact."""
        from repro.util.artifacts import load_engine  # lazy: avoid a cycle

        return load_engine(path)

    @property
    def build_seconds(self) -> float:
        """Mining + training wall-clock (the paper's overhead metric)."""
        return sum(
            secs for name, secs in self.stopwatch.phases.items() if name != "decode"
        )

    @property
    def decode_seconds(self) -> float:
        """Accumulated decoding wall-clock."""
        return self.stopwatch.phases.get("decode", 0.0)
