"""Seed (pre-optimisation) implementation of the coupled decode hot path.

The optimised hot path in :mod:`repro.core.chdbn`, :mod:`repro.core.
rule_kernel`, :mod:`repro.core.emissions` and :mod:`repro.core.kernels`
replaces per-pair label lookups, per-state ``frozenset`` algebra, the
per-object Python loop and per-step evidence dispatch with precomputed
encodings, boolean/float vectors and per-sequence batched tables.  This
module keeps the original straight-line implementation as the
*executable specification*: :class:`ReferenceCoupledHdbn` and
:class:`ReferenceNChainHdbn` override exactly the per-step machinery
that was rewritten, so

* ``tests/test_decode_stats.py`` / ``tests/test_kernels.py`` assert the
  optimised ``decode`` labels are identical and ``posterior_marginals``
  agree to 1e-10, and
* ``benchmarks/bench_decode_hotpath.py`` measures the steps/sec gain.

Do not "optimise" this file — its value is being slow and obviously
faithful to the seed.

One caveat on "bit-for-bit": the optimised object channel sums the
per-object Bernoulli logs in a different order (precomputed all-off
baseline plus fired-object corrections), so emission *scores* can differ
from this reference in the last ulp.  Label identity therefore holds
empirically at the seeds the tests and benchmarks pin, not as an IEEE
guarantee under exact score ties.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.chdbn import CoupledHdbn
from repro.core.emissions import object_log_evidence
from repro.core.loosely_coupled import NChainHdbn
from repro.core.state_space import CandidateSet, UserState, _ROOM_OF
from repro.datasets.trace import LabeledSequence
from repro.models.chmm import soft_location_log_evidence

_TINY = 1e-12


def reference_user_state_emissions(
    model, seq: LabeledSequence, rid: str, t: int, states: List[UserState]
) -> np.ndarray:
    """Seed per-state emission loop (per-macro cache, per-object loop)."""
    cm = model.constraint_model
    step = seq.steps[t]
    obs = step.observations[rid]
    x = np.asarray(obs.features, dtype=float)
    features_ok = model.use_feature_gmm and x.size > 0 and not np.isnan(x).any()
    p_idx = (
        cm.posture_index.index(obs.posture)
        if (obs.posture is not None and obs.posture in cm.posture_index)
        else None
    )
    g_idx = (
        cm.gesture_index.index(obs.gesture)
        if (
            cm.gesture_index is not None
            and obs.gesture is not None
            and obs.gesture in cm.gesture_index
        )
        else None
    )
    loc_weight = soft_location_log_evidence(
        cm.subloc_index, obs.position_estimate, obs.subloc_candidates
    )

    macro_cache: Dict[int, float] = {}
    out = np.empty(len(states))
    for i, state in enumerate(states):
        m = cm.macro_index.index(state.macro)
        l = cm.subloc_index.index(state.subloc)
        if m not in macro_cache:
            score = 0.0
            if p_idx is not None:
                score += model._log_posture[m, p_idx]
            if g_idx is not None and model._log_gesture is not None:
                score += model._log_gesture[m, g_idx]
            if features_ok:
                gmm = model.gmms_.get(m)
                if gmm is not None:
                    score += gmm.log_pdf(x)
            score += object_log_evidence(
                getattr(model, "_object_index", {}),
                getattr(model, "_log_obj", np.zeros((0, 0, 2))),
                m,
                step.objects_fired,
            )
            macro_cache[m] = score
        score = macro_cache[m] + loc_weight[l] + model._log_subloc_occ[m, l]
        room = _ROOM_OF.get(state.subloc)
        if step.rooms_fired and room not in step.rooms_fired:
            score += model.pir_miss_penalty
        out[i] = score
    return out


def reference_chain_block(
    model,
    m_prev: np.ndarray,
    l_prev: np.ndarray,
    partner_prev: np.ndarray,
    m_cur: np.ndarray,
    l_cur: np.ndarray,
) -> np.ndarray:
    """Seed per-step coupled chain block (transcendentals on every call)."""
    same = m_prev[:, None] == m_cur[None, :]
    log_stay = np.log1p(-model._p_change[m_prev])[:, None]
    log_change = (
        np.log(model._p_change[m_prev])[:, None]
        + np.log(
            model._change_trans[m_prev[:, None], partner_prev[:, None], m_cur[None, :]]
            + _TINY
        )
    )
    macro_term = np.where(same, log_stay, log_change)

    micro_end = model._micro_end[m_cur][None, :]
    same_loc = l_prev[:, None] == l_cur[None, :]
    cont = np.log(
        (1.0 - micro_end) * same_loc
        + micro_end * model._subloc_trans[m_cur[None, :], l_prev[:, None], l_cur[None, :]]
        + _TINY
    )
    reset = model._log_subloc_prior[m_cur, l_cur][None, :]
    loc_term = np.where(same, cont, reset)
    return macro_term + loc_term


def reference_user_candidates(
    model, seq: LabeledSequence, rid: str, t: int
) -> CandidateSet:
    """Seed per-user candidate builder: frozenset item-set rule pruning,
    per-state emission loop, label-based encodings resolved at the end."""
    obs = seq.steps[t].observations[rid]
    states = model.builder.candidate_states(obs)
    if model._single_rules is not None and getattr(model, "prune_per_user", True):
        amb = model.builder.ambient_item_set(seq.steps[t])
        kept = [
            s
            for s in states
            if model._single_rules.is_consistent(
                model.builder.state_item_set("u1", s, obs) | amb
            )
        ]
        if kept:
            states = kept
    emissions = reference_user_state_emissions(model, seq, rid, t, states)
    if len(states) > model.max_states_per_user:
        top = np.argsort(emissions)[::-1][: model.max_states_per_user]
        states = [states[i] for i in top]
        emissions = emissions[top]
    cm = model.constraint_model
    m = np.array([cm.macro_index.index(s.macro) for s in states], dtype=int)
    l = np.array([cm.subloc_index.index(s.subloc) for s in states], dtype=int)
    return CandidateSet(states=states, m=m, l=l, emissions=emissions, obs=obs)


def reference_cross_prune_mask(
    model,
    step,
    s1: List[UserState],
    obs1,
    s2: List[UserState],
    obs2,
) -> np.ndarray:
    """Seed cross-user pruning via frozenset item-set algebra (one ordered
    pair of chains; slot labels are always ``u1``/``u2`` because the rules
    are mined on symmetrised two-user slots)."""
    amb = model.builder.ambient_item_set(step)
    items1 = [model.builder.state_item_set("u1", s, obs1) for s in s1]
    items2 = [model.builder.state_item_set("u2", s, obs2) for s in s2]
    keep = np.ones((len(s1), len(s2)), dtype=bool)

    for excl in model._cross_rules.hard_exclusions:
        a, b = excl.a, excl.b
        has_a = np.array([a in it for it in items1]) if a.slot == "u1" else None
        has_b = np.array([b in it for it in items2]) if b.slot == "u2" else None
        if has_a is None or has_b is None:
            continue
        keep &= ~np.outer(has_a, has_b)

    for rule in model._cross_rules.forcing_rules:
        ant1 = frozenset(i for i in rule.antecedent if i.slot == "u1")
        ant2 = frozenset(i for i in rule.antecedent if i.slot == "u2")
        ant_amb = frozenset(i for i in rule.antecedent if i.slot == "amb")
        if not ant_amb <= amb:
            continue
        sat1 = np.array([ant1 <= it for it in items1])
        sat2 = np.array([ant2 <= it for it in items2])
        cons = rule.consequent
        key = (cons.time, cons.attr)
        if cons.slot == "u1":
            viol = np.array(
                [
                    any((i.time, i.attr) == key and i.value != cons.value for i in it)
                    and cons not in it
                    for it in items1
                ]
            )
            keep &= ~np.outer(sat1 & viol, sat2)
        elif cons.slot == "u2":
            viol = np.array(
                [
                    any((i.time, i.attr) == key and i.value != cons.value for i in it)
                    and cons not in it
                    for it in items2
                ]
            )
            keep &= ~np.outer(sat1, sat2 & viol)
    return keep


def reference_soft_exclusion_penalty(
    model, s1: List[UserState], obs1, s2: List[UserState], obs2
) -> np.ndarray:
    """(n1, n2) seed soft-exclusion penalty matrix for one chain pair."""
    soft = model._cross_rules.soft_exclusions
    if not soft:
        return np.zeros((len(s1), len(s2)))
    items1 = [model.builder.state_item_set("u1", s, obs1) for s in s1]
    items2 = [model.builder.state_item_set("u2", s, obs2) for s in s2]
    penalty = np.zeros((len(s1), len(s2)))
    for excl in soft:
        a, b = excl.a, excl.b
        if a.slot != "u1" or b.slot != "u2":
            continue
        has_a = np.array([a in it for it in items1])
        has_b = np.array([b in it for it in items2])
        penalty += np.outer(has_a, has_b) * model.soft_exclusion_penalty
    return penalty


class ReferenceCoupledHdbn(CoupledHdbn):
    """`CoupledHdbn` with the seed's per-step hot path.

    The Viterbi / sum-product recursions are inherited unchanged; the
    candidate / pruning / emission machinery and the per-step transition
    blocks are the original implementations.  ``kern`` parameters are
    accepted and ignored (the reference always scores per step).
    """

    _TINY = _TINY

    def __post_init__(self) -> None:
        super().__post_init__()
        # The reference path scores per step by construction.
        self.use_sequence_kernels = False

    def _chain_block(
        self,
        m_prev: np.ndarray,
        l_prev: np.ndarray,
        partner_prev: np.ndarray,
        m_cur: np.ndarray,
        l_cur: np.ndarray,
    ) -> np.ndarray:
        return reference_chain_block(self, m_prev, l_prev, partner_prev, m_cur, l_cur)

    def _user_candidates(
        self, seq: LabeledSequence, rid: str, t: int, kern=None
    ) -> CandidateSet:
        return reference_user_candidates(self, seq, rid, t)

    def _joint_candidates(
        self,
        seq: LabeledSequence,
        t: int,
        c1: CandidateSet,
        c2: CandidateSet,
        rids: Tuple[str, str],
        kern=None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        s1, s2 = c1.states, c2.states
        e1, e2 = c1.emissions, c2.emissions
        n1, n2 = len(s1), len(s2)
        pairs = np.indices((n1, n2)).reshape(2, -1).T  # (n1*n2, 2)
        if self._cross_rules is not None and self.prune_cross:
            keep = self._reference_cross_prune_mask(seq, t, s1, s2, rids)
            mask = keep[pairs[:, 0], pairs[:, 1]]
            if mask.any():
                self.last_stats.pruned_joint_states += int((~mask).sum())
                pairs = pairs[mask]
        scores = e1[pairs[:, 0]] + e2[pairs[:, 1]]
        scores = scores + self._reference_coverage_penalty(seq.steps[t], s1, s2, pairs)
        if self._cross_rules is not None and self.prune_cross:
            step = seq.steps[t]
            penalty = reference_soft_exclusion_penalty(
                self, s1, step.observations[rids[0]], s2, step.observations[rids[1]]
            )
            scores = scores + penalty[pairs[:, 0], pairs[:, 1]]
        cap = self.max_joint_states
        if self.rule_set is not None and self.prune_cross:
            cap = min(cap, self.max_joint_states_pruned)
        if pairs.shape[0] > cap:
            self.last_stats.capped_joint_states += pairs.shape[0] - cap
            top = np.argsort(scores)[::-1][:cap]
            pairs = pairs[top]
            scores = scores[top]
        return pairs[:, 0], pairs[:, 1], scores

    def _reference_coverage_penalty(
        self,
        step,
        s1: List[UserState],
        s2: List[UserState],
        pairs: np.ndarray,
    ) -> np.ndarray:
        loc1 = np.array([s.subloc for s in s1], dtype=object)
        loc2 = np.array([s.subloc for s in s2], dtype=object)
        out = np.zeros(pairs.shape[0])
        for fired in step.sublocs_fired:
            covered = (loc1[pairs[:, 0]] == fired) | (loc2[pairs[:, 1]] == fired)
            out += np.where(covered, 0.0, self.unexplained_subloc_penalty)
        if not step.sublocs_fired and step.rooms_fired:
            room1 = np.array([_ROOM_OF.get(s.subloc) for s in s1], dtype=object)
            room2 = np.array([_ROOM_OF.get(s.subloc) for s in s2], dtype=object)
            for fired in step.rooms_fired:
                covered = (room1[pairs[:, 0]] == fired) | (room2[pairs[:, 1]] == fired)
                out += np.where(covered, 0.0, self.unexplained_room_penalty)
        return out

    def _reference_cross_prune_mask(
        self,
        seq: LabeledSequence,
        t: int,
        s1: List[UserState],
        s2: List[UserState],
        rids: Tuple[str, str],
    ) -> np.ndarray:
        step = seq.steps[t]
        return reference_cross_prune_mask(
            self, step, s1, step.observations[rids[0]], s2, step.observations[rids[1]]
        )


class ReferenceNChainHdbn(NChainHdbn):
    """`NChainHdbn` with the seed-style per-step hot path.

    Mirrors the fast N-chain model's operation order exactly (pairwise
    prune, emissions, soft exclusions, joint coverage, cap) while
    computing every term the seed way: frozenset item-set algebra,
    per-state emission loops, label-string comparisons, and per-step
    transcendental chain blocks.
    """

    _TINY = _TINY

    def __post_init__(self) -> None:
        super().__post_init__()
        self.use_sequence_kernels = False

    def _chain_block(
        self,
        m_prev: np.ndarray,
        l_prev: np.ndarray,
        partner_prev: np.ndarray,
        m_cur: np.ndarray,
        l_cur: np.ndarray,
    ) -> np.ndarray:
        return reference_chain_block(self, m_prev, l_prev, partner_prev, m_cur, l_cur)

    def _user_candidates(
        self, seq: LabeledSequence, rid: str, t: int, kern=None
    ) -> CandidateSet:
        return reference_user_candidates(self, seq, rid, t)

    def _joint_candidates(
        self,
        seq: LabeledSequence,
        t: int,
        per_user: List[CandidateSet],
        rids: Sequence[str],
        kern=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        step = seq.steps[t]
        n = len(per_user)
        sizes = [len(c) for c in per_user]
        grids = np.indices(sizes).reshape(n, -1).T  # (prod, N)

        prune_active = self._cross_rules is not None and self.prune_cross
        if prune_active:
            mask = np.ones(grids.shape[0], dtype=bool)
            for a in range(n):
                for b in range(a + 1, n):
                    pair_keep = reference_cross_prune_mask(
                        self,
                        step,
                        per_user[a].states,
                        step.observations[rids[a]],
                        per_user[b].states,
                        step.observations[rids[b]],
                    )
                    mask &= pair_keep[grids[:, a], grids[:, b]]
            if mask.any():
                self.last_stats.pruned_joint_states += int((~mask).sum())
                grids = grids[mask]

        scores = np.zeros(grids.shape[0])
        for u, c in enumerate(per_user):
            scores += c.emissions[grids[:, u]]

        if prune_active:
            for a in range(n):
                for b in range(a + 1, n):
                    pen = reference_soft_exclusion_penalty(
                        self,
                        per_user[a].states,
                        step.observations[rids[a]],
                        per_user[b].states,
                        step.observations[rids[b]],
                    )
                    scores += pen[grids[:, a], grids[:, b]]

        # Joint explaining-away over all chains (seed-style label compares).
        locs = [np.array([s.subloc for s in c.states], dtype=object) for c in per_user]
        for fired in step.sublocs_fired:
            covered = np.zeros(grids.shape[0], dtype=bool)
            for u in range(n):
                covered |= locs[u][grids[:, u]] == fired
            scores += np.where(covered, 0.0, self.unexplained_subloc_penalty)
        if not step.sublocs_fired and step.rooms_fired:
            rooms = [
                np.array([_ROOM_OF.get(s.subloc) for s in c.states], dtype=object)
                for c in per_user
            ]
            for fired in step.rooms_fired:
                covered = np.zeros(grids.shape[0], dtype=bool)
                for u in range(n):
                    covered |= rooms[u][grids[:, u]] == fired
                scores += np.where(covered, 0.0, self.unexplained_room_penalty)

        cap = self.max_joint_states
        if self.rule_set is not None and self.prune_cross:
            cap = min(cap, self.max_joint_states_pruned)
        if grids.shape[0] > cap:
            self.last_stats.capped_joint_states += grids.shape[0] - cap
            top = np.argsort(scores)[::-1][:cap]
            grids = grids[top]
            scores = scores[top]
        return grids, scores
