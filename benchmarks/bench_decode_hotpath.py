"""Bench: decode hot-path throughput — seed implementation vs overhaul.

The sequence-level decode kernels stack each session's feature rows into
a ``(T, d)`` matrix scored against the stacked GMM bank with one einsum,
batch object-evidence deltas and soft-location rows into per-sequence
tables, and evaluate correlation-rule scalar gates once per step — the
per-step trellis only indexes precomputed rows.  This bench measures
steps/sec before (the ``Reference*`` seed hot paths) vs after on the same
fitted models, asserting the contract: >= 5x serial c2 speedup, >= 3x on
the 3-resident N-chain and fixed-lag smoother paths, all with bit-for-bit
identical decoded labels.  Results are also written machine-readable to
``BENCH_decode.json`` at the repo root.
"""

import json
from pathlib import Path

from benchmarks.conftest import record
from repro.eval.experiments import decode_hotpath_benchmark
from repro.obs import provenance


def test_decode_hotpath(benchmark):
    result = benchmark.pedantic(
        decode_hotpath_benchmark,
        kwargs={
            "n_homes": 2,
            "sessions_per_home": 4,
            "duration_s": 2400.0,
            "seed": 7,
            "workers": 2,
            "fanout_workers": (2, 4),
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record("decode_hotpath", result.render())
    out = Path(__file__).parents[1] / "BENCH_decode.json"
    payload = result.to_dict()
    payload["provenance"] = provenance()  # wall-clock numbers need context
    out.write_text(json.dumps(payload, indent=2) + "\n")
    # The kernels must not change any decoded label at the same seed...
    assert result.labels_identical
    assert result.nchain is not None and result.nchain.labels_identical
    assert result.smoother is not None and result.smoother.labels_identical
    # ...and must buy at least 5x serial steps/sec on the c2 hot path,
    # 3x on the N-chain and fixed-lag smoother paths.
    assert result.speedup >= 5.0
    assert result.nchain.speedup >= 3.0
    assert result.smoother.speedup >= 3.0
    # The worker fan-out must at least have run at every requested width.
    assert set(result.fanout) >= {2, 4}
