"""CLI behaviour: generate / mine / fit / recognize / experiment plumbing."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.json"
    code = main(
        [
            "generate",
            "cace",
            str(path),
            "--homes",
            "2",
            "--sessions",
            "2",
            "--duration",
            "1200",
            "--seed",
            "11",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, corpus_path):
        data = json.loads(corpus_path.read_text())
        assert data["schema"] == "repro.dataset/1"
        assert len(data["sequences"]) == 4

    def test_casas_corpus(self, tmp_path):
        path = tmp_path / "casas.json"
        code = main(
            ["generate", "casas", str(path), "--homes", "1", "--sessions", "1", "--seed", "3"]
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["has_gestural"] is False

    def test_three_resident_corpus(self, tmp_path):
        path = tmp_path / "trio.json"
        code = main(
            [
                "generate", "cace", str(path),
                "--homes", "1", "--sessions", "1", "--duration", "900",
                "--residents", "3", "--seed", "3",
            ]
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data["sequences"][0]["resident_ids"]) == 3


class TestMine:
    def test_prints_rules(self, corpus_path, capsys):
        code = main(["mine", str(corpus_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "rules total" in out

    def test_writes_rules_json(self, corpus_path, tmp_path):
        out_path = tmp_path / "rules.json"
        code = main(["mine", str(corpus_path), "--output", str(out_path)])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.rules/1"


class TestFitAndServe:
    @pytest.fixture(scope="class")
    def artifact_path(self, corpus_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.json"
        code = main(
            ["fit", str(corpus_path), str(path), "--strategy", "c2", "--seed", "5"]
        )
        assert code == 0
        return path

    def test_fit_writes_versioned_artifact(self, artifact_path):
        data = json.loads(artifact_path.read_text())
        assert data["schema"] == "repro.model/1"
        assert data["engine"]["strategy"] == "c2"

    def test_recognize_serves_saved_artifact(self, corpus_path, artifact_path, capsys):
        code = main(
            ["recognize", str(corpus_path), "--model", str(artifact_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Overall" in out
        assert "offline" in out

    def test_recognize_streams_saved_artifact(self, corpus_path, artifact_path, capsys):
        code = main(
            [
                "recognize", str(corpus_path),
                "--model", str(artifact_path),
                "--stream", "--lag", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Overall" in out
        assert "streamed (lag=3)" in out

    def test_stream_without_model_rejected(self, corpus_path, capsys):
        code = main(["recognize", str(corpus_path), "--stream"])
        assert code == 2
        assert "--stream requires --model" in capsys.readouterr().err


class TestRecognize:
    def test_reports_metrics(self, corpus_path, capsys):
        code = main(
            ["recognize", str(corpus_path), "--strategy", "c2", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Overall" in out
        assert "decode" in out


class TestExperimentDispatch:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_micro_experiment_runs(self, capsys):
        code = main(["experiment", "micro", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "postural" in out and "gestural" in out
