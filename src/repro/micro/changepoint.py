"""Change-point detection for activity segmentation.

The paper "employ[s] a change-point detection-based classification method
towards feature extraction" — frames are grouped into runs of homogeneous
motion before classification, which suppresses label flicker at activity
boundaries.  We implement a sliding two-window mean-shift detector (a CUSUM
variant): a change point is declared where the normalised distance between
the feature means of adjacent windows peaks above a threshold.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.util.validation import check_positive


def detect_change_points(
    features: np.ndarray,
    window: int = 6,
    threshold: float = 2.5,
    min_gap: int = 4,
) -> List[int]:
    """Indices where the feature stream's local mean shifts.

    Parameters
    ----------
    features:
        ``(n, d)`` frame-feature matrix (time-ordered).
    window:
        Half-window length (frames) on each side of a candidate point.
    threshold:
        Mean-shift score (in pooled-std units) required to declare a change.
    min_gap:
        Minimum frames between consecutive change points.
    """
    check_positive("window", window)
    check_positive("threshold", threshold)
    check_positive("min_gap", min_gap)
    data = np.atleast_2d(np.asarray(features, dtype=float))
    n = data.shape[0]
    if n < 2 * window + 1:
        return []

    scores = np.zeros(n)
    for i in range(window, n - window):
        left = data[i - window : i]
        right = data[i : i + window]
        pooled_std = np.sqrt(0.5 * (left.var(axis=0) + right.var(axis=0))) + 1e-9
        z = np.abs(left.mean(axis=0) - right.mean(axis=0)) / pooled_std
        scores[i] = float(np.mean(z))

    # Local maxima above threshold, spaced at least min_gap apart.
    points: List[int] = []
    order = np.argsort(scores)[::-1]
    for idx in order:
        if scores[idx] < threshold:
            break
        if all(abs(idx - p) >= min_gap for p in points):
            points.append(int(idx))
    return sorted(points)


def segment_stream(
    features: np.ndarray,
    window: int = 6,
    threshold: float = 2.5,
    min_gap: int = 4,
) -> List[Tuple[int, int]]:
    """Partition frame indices into homogeneous ``[start, end)`` segments."""
    n = np.atleast_2d(np.asarray(features)).shape[0]
    cuts = detect_change_points(features, window, threshold, min_gap)
    bounds = [0] + cuts + [n]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1) if bounds[i] < bounds[i + 1]]


def majority_smooth(labels: List[str], segments: List[Tuple[int, int]]) -> List[str]:
    """Replace each frame label by its segment's majority label."""
    out = list(labels)
    for start, end in segments:
        seg = labels[start:end]
        if not seg:
            continue
        values, counts = np.unique(np.array(seg, dtype=object), return_counts=True)
        winner = values[int(np.argmax(counts))]
        out[start:end] = [winner] * (end - start)
    return out
