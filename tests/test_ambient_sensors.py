"""Unit + property tests for PIR, object sensors, and the event stream."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors import EventStream, ObjectSensor, PirSensor, SensorEvent, TagManager


class TestPir:
    def test_detects_moving_occupant(self):
        pir = PirSensor("pir:x", "kitchen", detect_prob=1.0, seed=1)
        assert pir.poll(0.0, occupants_moving=1) is True

    def test_refractory_window_silences(self):
        pir = PirSensor("pir:x", "kitchen", detect_prob=1.0, refractory_s=5.0, seed=1)
        assert pir.poll(0.0, occupants_moving=1) is True
        assert pir.poll(1.0, occupants_moving=1) is False
        assert pir.poll(6.0, occupants_moving=1) is True

    def test_empty_room_rarely_fires(self):
        pir = PirSensor("pir:x", "kitchen", false_alarm_prob=0.0, refractory_s=0.0, seed=2)
        fires = sum(bool(pir.poll(float(t), 0, 0)) for t in range(200))
        assert fires == 0

    def test_reset_clears_refractory(self):
        pir = PirSensor("pir:x", "kitchen", detect_prob=1.0, refractory_s=100.0, seed=3)
        pir.poll(0.0, occupants_moving=1)
        pir.reset()
        assert pir.poll(1.0, occupants_moving=1) is True

    def test_multiple_movers_increase_detection(self):
        hits_single = hits_multi = 0
        for seed in range(50):
            one = PirSensor("a", "x", detect_prob=0.4, refractory_s=0.0, seed=seed)
            many = PirSensor("b", "x", detect_prob=0.4, refractory_s=0.0, seed=seed + 1000)
            hits_single += bool(one.poll(0.0, 1))
            hits_multi += bool(many.poll(0.0, 4))
        assert hits_multi > hits_single


class TestObjectSensor:
    def test_threshold_semantics(self):
        sensor = ObjectSensor("obj:x", "stove", "SR10", sensitivity=0.55,
                              false_alarm_prob=0.0, miss_prob=0.0, seed=1)
        assert sensor.threshold == pytest.approx(0.45)
        assert sensor.poll(0.0, interaction_intensity=0.5) is True
        assert sensor.poll(1.0, interaction_intensity=0.3) is False

    def test_negative_intensity_rejected(self):
        sensor = ObjectSensor("obj:x", "stove", "SR10", seed=1)
        with pytest.raises(ValueError):
            sensor.poll(0.0, interaction_intensity=-0.1)


class TestEventStream:
    def test_window_query(self):
        stream = EventStream(
            SensorEvent(float(t), "pir", "p", "kitchen") for t in range(10)
        )
        window = stream.window(2.0, 5.0)
        assert [e.t for e in window] == [2.0, 3.0, 4.0]

    def test_values_in_window(self):
        stream = EventStream()
        stream.append(SensorEvent(1.0, "pir", "p1", "kitchen"))
        stream.append(SensorEvent(1.5, "pir", "p2", "bedroom"))
        stream.append(SensorEvent(1.6, "object", "o1", "stove"))
        assert stream.values_in_window("pir", 0.0, 2.0) == {"kitchen", "bedroom"}
        assert stream.values_in_window("object", 0.0, 2.0) == {"stove"}

    def test_counts_by_kind(self):
        stream = EventStream()
        for t in range(3):
            stream.append(SensorEvent(float(t), "pir", "p", "kitchen"))
        stream.append(SensorEvent(0.5, "object", "o", "stove"))
        assert stream.counts_by_kind() == {"pir": 3, "object": 1}

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_insertion_keeps_time_order(self, times):
        stream = EventStream()
        for t in times:
            stream.append(SensorEvent(t, "pir", "p", "room"))
        observed = [e.t for e in stream]
        assert observed == sorted(observed)

    def test_span_and_filter(self):
        stream = EventStream(
            [SensorEvent(1.0, "pir", "a", "x"), SensorEvent(3.0, "object", "b", "y")]
        )
        assert stream.span == (1.0, 3.0)
        assert len(stream.filter(lambda e: e.kind == "pir")) == 1


class TestTagManager:
    def test_lossless_delivery(self):
        manager = TagManager(loss_prob=0.0, latency_std_s=0.0, seed=1)
        assert manager.deliver(SensorEvent(1.0, "pir", "p", "kitchen")) is True
        assert len(manager.stream) == 1

    def test_total_loss(self):
        manager = TagManager(loss_prob=1.0, seed=1)
        assert manager.deliver(SensorEvent(1.0, "pir", "p", "kitchen")) is False
        assert manager.dropped == 1
        assert len(manager.stream) == 0

    def test_latency_is_non_negative(self):
        manager = TagManager(loss_prob=0.0, latency_std_s=0.5, seed=2)
        manager.deliver(SensorEvent(10.0, "pir", "p", "kitchen"))
        delivered = list(manager.stream)[0]
        assert delivered.t >= 10.0
