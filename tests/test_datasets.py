"""Unit tests for dataset generation, containers, and discretisation."""

import numpy as np
import pytest

from repro.datasets import (
    CASAS_TASKS,
    Dataset,
    MicroObservationModel,
    train_test_split,
)
from repro.datasets.casas import SHARED_TASKS
from repro.datasets.observation import FEATURE_NAMES


class TestCaceDataset:
    def test_shapes(self, cace_dataset):
        assert len(cace_dataset) == 6  # 2 homes x 3 sessions
        assert cace_dataset.total_steps == 6 * 100
        assert cace_dataset.has_gestural
        assert len(cace_dataset.macro_vocab) == 11
        assert len(cace_dataset.subloc_vocab) == 14

    def test_observations_complete(self, cace_dataset):
        seq = cace_dataset.sequences[0]
        for step, truth in zip(seq.steps, seq.truths):
            for rid in seq.resident_ids:
                obs = step.observations[rid]
                assert obs.posture in cace_dataset.postural_vocab
                assert obs.gesture in cace_dataset.gestural_vocab
                assert len(obs.features) == len(FEATURE_NAMES)
                assert len(obs.subloc_candidates) >= 1
                assert truth[rid].macro in cace_dataset.macro_vocab

    def test_candidate_recall_is_high(self, cace_dataset):
        hits = total = 0
        for seq in cace_dataset.sequences:
            for step, truth in zip(seq.steps, seq.truths):
                for rid in seq.resident_ids:
                    total += 1
                    hits += truth[rid].subloc in step.observations[rid].subloc_candidates
        assert hits / total > 0.95

    def test_macro_labels_align(self, cace_dataset):
        seq = cace_dataset.sequences[0]
        rid = seq.resident_ids[0]
        labels = seq.macro_labels(rid)
        assert len(labels) == len(seq)
        assert labels[0] == seq.truths[0][rid].macro

    def test_sequence_slice(self, cace_dataset):
        seq = cace_dataset.sequences[0]
        sub = seq.slice(10, 20)
        assert len(sub) == 10
        assert sub.steps[0].t == seq.steps[10].t


class TestCasasDataset:
    def test_no_gestural_channel(self, casas_dataset):
        assert not casas_dataset.has_gestural
        seq = casas_dataset.sequences[0]
        for step in seq.steps:
            for obs in step.observations.values():
                assert obs.gesture is None
                assert obs.position_estimate is None

    def test_fifteen_tasks(self, casas_dataset):
        assert len(CASAS_TASKS) == 15
        assert set(SHARED_TASKS) <= set(CASAS_TASKS)
        assert casas_dataset.macro_vocab == CASAS_TASKS

    def test_all_tasks_performed(self, casas_dataset):
        seq = casas_dataset.sequences[0]
        for rid in seq.resident_ids:
            performed = set(seq.macro_labels(rid))
            assert performed == set(CASAS_TASKS)

    def test_shared_tasks_are_simultaneous(self, casas_dataset):
        seq = casas_dataset.sequences[0]
        r1, r2 = seq.resident_ids
        l1, l2 = seq.macro_labels(r1), seq.macro_labels(r2)
        for shared in SHARED_TASKS:
            steps1 = {i for i, lb in enumerate(l1) if lb == shared}
            steps2 = {i for i, lb in enumerate(l2) if lb == shared}
            if steps1 and steps2:
                overlap = len(steps1 & steps2) / max(len(steps1 | steps2), 1)
                assert overlap > 0.6, shared


class TestSplit:
    def test_split_partitions_sequences(self, cace_dataset):
        train, test = train_test_split(cace_dataset, 0.67, seed=5)
        assert len(train) + len(test) == len(cace_dataset)
        train_ids = {id(s) for s in train.sequences}
        test_ids = {id(s) for s in test.sequences}
        assert not train_ids & test_ids

    def test_each_home_in_both_sides(self, cace_dataset):
        train, test = train_test_split(cace_dataset, 0.67, seed=5)
        assert set(train.by_home()) == set(test.by_home())

    def test_invalid_fraction(self, cace_dataset):
        with pytest.raises(ValueError):
            train_test_split(cace_dataset, 1.0)

    def test_split_reproducible(self, cace_dataset):
        a = train_test_split(cace_dataset, 0.67, seed=5)
        b = train_test_split(cace_dataset, 0.67, seed=5)
        assert [s.home_id for s in a[0].sequences] == [s.home_id for s in b[0].sequences]


class TestObservationModel:
    def test_posture_accuracy_calibration(self):
        model = MicroObservationModel(seed=1)
        n = 4000
        hits = sum(model.observe_posture("sitting") == "sitting" for _ in range(n))
        assert hits / n == pytest.approx(0.986, abs=0.02)

    def test_gesture_accuracy_calibration(self):
        model = MicroObservationModel(seed=2)
        n = 4000
        hits = sum(model.observe_gesture("talking") == "talking" for _ in range(n))
        assert hits / n == pytest.approx(0.953, abs=0.02)

    def test_confusions_are_plausible(self):
        model = MicroObservationModel(posture_accuracy=0.0, seed=3)
        observed = {model.observe_posture("sitting") for _ in range(100)}
        assert observed <= {"standing", "lying"}

    def test_feature_means_differ_by_class(self):
        model = MicroObservationModel(seed=4)
        walking = model.emission_mean("walking", "silent")
        lying = model.emission_mean("lying", "silent")
        assert np.linalg.norm(walking - lying) > 0.5

    def test_features_drift_is_bounded(self):
        model = MicroObservationModel(seed=5)
        samples = np.array(
            [model.sample_features("sitting", "silent", drift_key="r") for _ in range(300)]
        )
        mean = model.emission_mean("sitting", "silent")
        # Drift + noise wander but stay anchored to the class mean.
        assert np.linalg.norm(samples.mean(axis=0) - mean) < 3.0
