"""Wall-clock provenance for benchmark and metrics artifacts.

Throughput and latency numbers are only comparable across runs when the
machine that produced them is recorded next to them; ``BENCH_decode.json``
and ``--metrics-out`` snapshots embed this stamp so trajectory
comparisons across machines stay interpretable.
"""

from __future__ import annotations

import os
import platform
import sys
from datetime import datetime, timezone
from typing import Dict


def provenance() -> Dict[str, object]:
    """Interpreter, library, and machine facts for result artifacts."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep everywhere else
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv and sys.argv[0] else None,
    }
