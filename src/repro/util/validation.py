"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with descriptive messages so configuration
mistakes surface at construction time rather than as NaNs mid-inference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_prob_vector(name: str, vec: np.ndarray, atol: float = 1e-6) -> np.ndarray:
    """Require *vec* to be a valid probability vector (non-negative, sums to 1)."""
    arr = np.asarray(vec, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries: {arr}")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return arr


def check_shape(name: str, arr: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Require *arr* to have exactly *shape* (use -1 for "any size")."""
    arr = np.asarray(arr)
    if len(arr.shape) != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dims, got shape {arr.shape}")
    for actual, expected in zip(arr.shape, shape):
        if expected != -1 and actual != expected:
            raise ValueError(f"{name} must have shape {tuple(shape)}, got {arr.shape}")
    return arr
