"""Classification metrics matching the paper's reporting.

The paper reports, per class and overall: FP rate, precision, recall,
F-measure, and weighted ROC / PRC areas (computed one-vs-rest from
posterior scores).  ``evaluate_predictions`` produces all of them from
aligned label sequences (+ optional score matrices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.confusion import ConfusionMatrix


@dataclass
class ClassMetrics:
    """One class's one-vs-rest metrics."""

    label: str
    fp_rate: float
    precision: float
    recall: float
    f_measure: float
    support: int

    def row(self) -> str:
        """Paper-style table row."""
        return (
            f"{self.label:>24s}  FP {self.fp_rate * 100:5.2f}  "
            f"P {self.precision * 100:5.1f}  R {self.recall * 100:5.1f}  "
            f"F {self.f_measure * 100:5.1f}  (n={self.support})"
        )


@dataclass
class EvaluationReport:
    """Overall + per-class metrics for a prediction run."""

    accuracy: float
    fp_rate: float
    precision: float
    recall: float
    f_measure: float
    per_class: Dict[str, ClassMetrics]
    weighted_roc_auc: Optional[float] = None
    weighted_prc_auc: Optional[float] = None
    confusion: Optional[ConfusionMatrix] = None

    def render(self) -> str:
        """Paper-style table: per-class rows then the overall row."""
        lines = [m.row() for m in self.per_class.values()]
        overall = (
            f"{'Overall':>24s}  FP {self.fp_rate * 100:5.2f}  "
            f"P {self.precision * 100:5.1f}  R {self.recall * 100:5.1f}  "
            f"F {self.f_measure * 100:5.1f}  acc {self.accuracy * 100:5.1f}"
        )
        if self.weighted_roc_auc is not None:
            overall += f"  ROC {self.weighted_roc_auc * 100:5.1f}"
        if self.weighted_prc_auc is not None:
            overall += f"  PRC {self.weighted_prc_auc * 100:5.1f}"
        lines.append(overall)
        return "\n".join(lines)


def accuracy(truth: Sequence[str], predicted: Sequence[str]) -> float:
    """Fraction of exact label matches."""
    if len(truth) != len(predicted):
        raise ValueError("sequences must align")
    if not truth:
        return 0.0
    return float(np.mean(np.asarray(truth, dtype=object) == np.asarray(predicted, dtype=object)))


def _safe_div(a: float, b: float) -> float:
    return a / b if b > 0 else 0.0


def macro_metrics(confusion: ConfusionMatrix) -> Dict[str, ClassMetrics]:
    """Per-class one-vs-rest metrics from a confusion matrix."""
    out: Dict[str, ClassMetrics] = {}
    for label, cell in confusion.per_class().items():
        tp, fp, fn, tn = cell["tp"], cell["fp"], cell["fn"], cell["tn"]
        precision = _safe_div(tp, tp + fp)
        recall = _safe_div(tp, tp + fn)
        out[label] = ClassMetrics(
            label=label,
            fp_rate=_safe_div(fp, fp + tn),
            precision=precision,
            recall=recall,
            f_measure=_safe_div(2 * precision * recall, precision + recall),
            support=int(tp + fn),
        )
    return out


def roc_auc(scores: np.ndarray, positives: np.ndarray) -> float:
    """Binary ROC AUC via the rank statistic (ties averaged)."""
    scores = np.asarray(scores, dtype=float)
    positives = np.asarray(positives, dtype=bool)
    n_pos = int(positives.sum())
    n_neg = int((~positives).sum())
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores))
    # Average ranks over score ties.
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = float(ranks[positives].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def prc_auc(scores: np.ndarray, positives: np.ndarray) -> float:
    """Area under the precision-recall curve (step interpolation)."""
    scores = np.asarray(scores, dtype=float)
    positives = np.asarray(positives, dtype=bool)
    n_pos = int(positives.sum())
    if n_pos == 0:
        return float("nan")
    order = np.argsort(scores)[::-1]
    labels = positives[order]
    tp = np.cumsum(labels)
    fp = np.cumsum(~labels)
    precision = tp / np.maximum(tp + fp, 1)
    recall = tp / n_pos
    # Integrate precision over recall steps.
    auc = 0.0
    prev_recall = 0.0
    for p, r in zip(precision, recall):
        auc += p * (r - prev_recall)
        prev_recall = r
    return float(auc)


def evaluate_predictions(
    truth: Sequence[str],
    predicted: Sequence[str],
    labels: Sequence[str],
    scores: Optional[np.ndarray] = None,
) -> EvaluationReport:
    """Full evaluation over aligned label sequences.

    *scores* is an optional ``(n, len(labels))`` posterior matrix used for
    the weighted one-vs-rest ROC / PRC areas.
    """
    confusion = ConfusionMatrix(tuple(labels))
    confusion.update(list(truth), list(predicted))
    per_class = macro_metrics(confusion)

    supports = np.array([per_class[lb].support for lb in labels], dtype=float)
    weights = supports / supports.sum() if supports.sum() else supports

    def weighted(attr: str) -> float:
        return float(
            sum(w * getattr(per_class[lb], attr) for w, lb in zip(weights, labels))
        )

    roc = prc = None
    if scores is not None:
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (len(truth), len(labels)):
            raise ValueError(
                f"scores must be (n, {len(labels)}), got {scores.shape}"
            )
        truth_arr = np.asarray(truth, dtype=object)
        rocs: List[float] = []
        prcs: List[float] = []
        for j, label in enumerate(labels):
            pos = truth_arr == label
            if pos.any() and (~pos).any():
                rocs.append(roc_auc(scores[:, j], pos))
                prcs.append(prc_auc(scores[:, j], pos))
            else:
                rocs.append(float("nan"))
                prcs.append(float("nan"))
        valid = ~np.isnan(rocs)
        if valid.any():
            w = weights[valid] / weights[valid].sum()
            roc = float(np.sum(w * np.asarray(rocs)[valid]))
            prc = float(np.sum(w * np.asarray(prcs)[valid]))

    return EvaluationReport(
        accuracy=confusion.accuracy(),
        fp_rate=weighted("fp_rate"),
        precision=weighted("precision"),
        recall=weighted("recall"),
        f_measure=weighted("f_measure"),
        per_class=per_class,
        weighted_roc_auc=roc,
        weighted_prc_auc=prc,
        confusion=confusion,
    )
