"""Unit tests for repro.util."""

import time

import numpy as np
import pytest

from repro.util import (
    Stopwatch,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_prob_vector,
    check_shape,
    derive_rng,
    ensure_rng,
    timed,
)


class TestRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_derive_rng_streams_differ(self):
        root_a = ensure_rng(1)
        root_b = ensure_rng(1)
        child_x = derive_rng(root_a, "x")
        child_y = derive_rng(root_b, "y")
        assert not np.array_equal(
            child_x.integers(0, 10**9, 8), child_y.integers(0, 10**9, 8)
        )

    def test_derive_rng_reproducible(self):
        a = derive_rng(ensure_rng(5), "stream").integers(0, 10**9, 4)
        b = derive_rng(ensure_rng(5), "stream").integers(0, 10**9, 4)
        assert np.array_equal(a, b)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        for bad in (-0.01, 1.01):
            with pytest.raises(ValueError):
                check_probability("p", bad)

    def test_check_in_range(self):
        assert check_in_range("v", 3, 1, 5) == 3
        with pytest.raises(ValueError):
            check_in_range("v", 9, 1, 5)

    def test_check_prob_vector(self):
        vec = check_prob_vector("v", np.array([0.25, 0.75]))
        assert vec.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            check_prob_vector("v", np.array([0.5, 0.4]))
        with pytest.raises(ValueError):
            check_prob_vector("v", np.array([[0.5, 0.5]]))

    def test_check_shape(self):
        arr = check_shape("a", np.zeros((3, 2)), (3, 2))
        assert arr.shape == (3, 2)
        check_shape("a", np.zeros((7, 2)), (-1, 2))
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((3, 3)), (3, 2))


class TestTimer:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.phase("a"):
            time.sleep(0.01)
        with watch.phase("a"):
            time.sleep(0.01)
        with watch.phase("b"):
            pass
        assert watch.phases["a"] >= 0.02
        assert watch.total >= watch.phases["a"]
        assert "a:" in watch.report() and "total:" in watch.report()

    def test_timed_context(self):
        with timed() as elapsed:
            time.sleep(0.005)
        assert elapsed[0] >= 0.005
