"""Dataset generation and containers.

Two generators mirror the paper's two evaluation corpora:

* :func:`~repro.datasets.cace.generate_cace_dataset` — the CACE dataset:
  five simulated homes, each with a resident pair living a naturalistic
  morning routine, full sensing (postural + gestural wearables, PIR, object
  sensors, iBeacon sub-locations).
* :func:`~repro.datasets.casas.generate_casas_dataset` — a CASAS-style
  corpus: resident pairs performing 15 scripted ADL tasks (two of them
  joint), ambient motion sensors + postural data only, **no gestural
  channel** (the public CASAS data has none).

Raw simulation output is discretised into fixed-period
:class:`~repro.datasets.trace.ContextStep` sequences by
:class:`~repro.datasets.discretize.Discretizer`.
"""

from repro.datasets.cace import generate_cace_dataset
from repro.datasets.casas import CASAS_TASKS, generate_casas_dataset
from repro.datasets.discretize import Discretizer
from repro.datasets.observation import MicroObservationModel
from repro.datasets.trace import (
    ContextStep,
    Dataset,
    LabeledSequence,
    ResidentObservation,
    ResidentTruth,
    train_test_split,
)

__all__ = [
    "generate_cace_dataset",
    "generate_casas_dataset",
    "CASAS_TASKS",
    "Discretizer",
    "MicroObservationModel",
    "ContextStep",
    "Dataset",
    "LabeledSequence",
    "ResidentObservation",
    "ResidentTruth",
    "train_test_split",
]
