"""Exchanging data with the real WSU CASAS ADLMR corpus.

The offline environment runs on a synthetic CASAS-style corpus, but the
substitution only holds water if the *real* multi-resident data can be
dropped in.  This example demonstrates both directions of the ADLMR
interchange format:

1. export a simulated session to the corpus's text format (one sensor
   event per line, annotated with resident and task ids);
2. read that text back, rebuild a labelled sequence with
   :func:`~repro.datasets.casas_format.events_to_sequence`, and run the
   recogniser on it — the exact path a user with the real download takes.

Run:  python examples/adlmr_interchange.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.datasets.casas import CASAS_TASKS, generate_casas_dataset
from repro.datasets.casas_format import (
    default_sensor_map,
    events_to_sequence,
    read_events,
    sequence_to_events,
    write_events,
)


def main() -> None:
    dataset = generate_casas_dataset(
        n_pairs=1, sessions_per_pair=1, duration_scale=0.4, seed=11
    )
    seq = dataset.sequences[0]
    task_index = {name: i + 1 for i, name in enumerate(CASAS_TASKS)}

    events = sequence_to_events(seq, task_index)
    path = Path(tempfile.mkdtemp()) / "adlmr_export.txt"
    write_events(events, path)
    print(f"exported {len(events)} sensor events -> {path}")
    print("first lines of the interchange file:")
    for line in path.read_text().splitlines()[:5]:
        print("  " + line)

    restored_events = read_events(path)
    task_names = {i: name for name, i in task_index.items()}
    restored = events_to_sequence(
        restored_events,
        default_sensor_map(),
        task_names,
        step_s=seq.step_s,
        seed=3,
    )
    print(
        f"\nre-imported: {len(restored)} steps, residents {restored.resident_ids}"
    )

    # Ground-truth macro labels survive the round trip (up to one window of
    # boundary slop and the resident-id relabelling).
    n = min(len(seq), len(restored))
    best = []
    for orig in seq.resident_ids:
        agreements = []
        for rest in restored.resident_ids:
            agreements.append(
                np.mean(
                    [
                        seq.truths[t][orig].macro == restored.truths[t][rest].macro
                        for t in range(n)
                    ]
                )
            )
        best.append(max(agreements))
    print(f"macro-label agreement after round trip: {np.mean(best):.1%}")
    print(
        "\nto use the real corpus: download the WSU 'adlmr' dataset, point"
        " read_events() at it, supply your sensor->sub-location map, and"
        " every recogniser in this package runs on it unchanged."
    )


if __name__ == "__main__":
    main()
