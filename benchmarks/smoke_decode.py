"""CI smoke run of the decode hot-path benchmark at a small workload.

Fails loudly on any label mismatch between the optimised kernels and the
seed reference decoders (the bit-identity contract); the speedup
assertions are relaxed to >= 1x because shared CI runners make timing
ratios unreliable.  The full thresholds (5x c2 serial, 3x N-chain, 3x
smoother) are asserted by ``bench_decode_hotpath.py`` on dedicated
hardware.

Results are written provenance-stamped (python/numpy versions, CPU
count) to ``benchmarks/out/BENCH_decode_smoke.json`` — the smoke
analogue of the root ``BENCH_decode.json`` — so archived CI numbers say
what machine produced them.

Run with ``PYTHONPATH=src python benchmarks/smoke_decode.py``.
"""

import json
import sys
from pathlib import Path

from repro.eval.experiments import decode_hotpath_benchmark
from repro.obs import provenance


def main() -> int:
    result = decode_hotpath_benchmark(
        n_homes=1,
        sessions_per_home=3,
        duration_s=1200.0,
        seed=7,
        workers=2,
        fanout_workers=(2,),
        nchain_duration_s=900.0,
    )
    print(result.render())
    out = Path(__file__).parent / "out" / "BENCH_decode_smoke.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = result.to_dict()
    payload["provenance"] = provenance()
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    failures = []
    if not result.labels_identical:
        failures.append("c2 labels diverge from the seed reference")
    if result.nchain is None or not result.nchain.labels_identical:
        failures.append("nchain labels diverge from the seed reference")
    if result.smoother is None or not result.smoother.labels_identical:
        failures.append("smoother labels diverge from the seed reference")
    if result.speedup < 1.0:
        failures.append(f"c2 kernels slower than the reference ({result.speedup:.2f}x)")
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
