"""Sequence-level decode kernels shared by the HDBN recogniser family.

Two layers live here:

* **Trellis recursions** — :func:`viterbi_path`, :func:`forward_alphas`
  and :func:`backward_betas` are the broadcast max-plus / sum-product
  updates over encoded candidate lists.  All four ``Recognizer`` families
  and the ``TrellisSession`` adapters run the same update ops (the loops
  previously copy-pasted across ``chdbn``/``hdbn``/``loosely_coupled``),
  so Viterbi paths and marginals are bit-identical to the per-family
  implementations they replace.
* **:class:`SequenceKernel`** — per-sequence batched evidence.  A
  session's feature rows are stacked into a ``(T, d)`` matrix and scored
  against the stacked GMM bank with one einsum, posture/gesture CPT
  columns are gathered for all steps at once, object-evidence deltas and
  soft-location rows become ``(T, M)`` / ``(T, L)`` tables, and the
  correlation-rule scalar gates are evaluated once per step per resident.
  The per-step trellis machinery then only *indexes* precomputed rows.

Bit-identity contract: every row is assembled with the same elementary
float operations, in the same association order, as the per-step path in
:func:`repro.core.emissions.user_state_emissions` — batching an
elementwise op over rows does not change any individual result, and the
einsum contractions used here are the batched forms of the exact
contractions the scalar path dispatches.  Equivalence against
:mod:`repro.core.reference` is asserted per strategy in
``tests/test_kernels.py`` and ``benchmarks/bench_decode_hotpath.py``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import DecodeStats
from repro.core.emissions import object_log_evidence
from repro.core.rule_kernel import StepItems
from repro.core.state_space import _ROOM_OF
from repro.datasets.trace import LabeledSequence
from repro.home.layout import SUB_REGIONS
from repro.models.chmm import LOCATION_KERNEL_SIGMA_M
from repro.obs import runtime as _obs

_MEMO_LIMIT = 8192


def _lse(arr: np.ndarray, axis: int) -> np.ndarray:
    """Numerically stable log-sum-exp along *axis* (shared by the HDBN
    family's sum-product recursions and the online smoother)."""
    m = arr.max(axis=axis, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    return np.squeeze(m, axis=axis) + np.log(np.exp(arr - m).sum(axis=axis))


def viterbi_path(
    initial: np.ndarray,
    per_scores: Sequence[np.ndarray],
    transition: Callable[[int], np.ndarray],
    stats: Optional[DecodeStats] = None,
) -> List[int]:
    """Max-plus forward pass + backtrace over a ragged candidate trellis.

    ``initial`` is the step-0 delta (prior + scores, already combined by
    the caller); ``per_scores[t]`` the per-candidate evidence at step t;
    ``transition(t)`` the (P, C) log transition block between steps t-1
    and t.  Returns the argmax index path (one index per step).
    """
    delta = initial
    backs: List[np.ndarray] = [np.zeros(len(delta), dtype=int)]
    for t in range(1, len(per_scores)):
        log_t = transition(t)
        if stats is not None:
            stats.transition_entries += log_t.size
        total = delta[:, None] + log_t
        back = np.argmax(total, axis=0)
        delta = total[back, np.arange(total.shape[1])] + per_scores[t]
        backs.append(back)

    idx = int(np.argmax(delta))
    path: List[int] = [idx]
    for t in range(len(per_scores) - 1, 0, -1):
        path.append(int(backs[t][path[-1]]))
    path.reverse()
    return path


def forward_alphas(
    initial: np.ndarray,
    per_scores: Sequence[np.ndarray],
    transition: Callable[[int], np.ndarray],
) -> List[np.ndarray]:
    """Sum-product forward recursion over a ragged candidate trellis."""
    alphas: List[np.ndarray] = [initial]
    for t in range(1, len(per_scores)):
        log_t = transition(t)
        alphas.append(per_scores[t] + _lse(alphas[-1][:, None] + log_t, axis=0))
    return alphas


def backward_betas(
    per_scores: Sequence[np.ndarray],
    transition: Callable[[int], np.ndarray],
) -> List[np.ndarray]:
    """Sum-product backward recursion (``transition(t)`` is the block
    between steps t-1 and t, matching :func:`forward_alphas`)."""
    n = len(per_scores)
    betas: List[Optional[np.ndarray]] = [None] * n
    betas[-1] = np.zeros(per_scores[-1].shape[0])
    for t in range(n - 2, -1, -1):
        log_t = transition(t + 1)
        betas[t] = _lse(log_t + (per_scores[t + 1] + betas[t + 1])[None, :], axis=1)
    return betas


class SequenceKernel:
    """Batched per-sequence evidence tables for the HDBN hot path.

    Built lazily and incrementally: :meth:`ensure` extends the tables to
    cover a step range, so offline decoding batches the whole sequence in
    one shot while the fixed-lag smoother grows the same tables as steps
    stream in (batch size never changes any value — every step's row is
    independent of its neighbours).
    """

    def __init__(self, model, seq: LabeledSequence, rids: Sequence[str]) -> None:
        self.model = model
        self.seq = seq
        self.rids = tuple(rids)
        cm = model.constraint_model
        self._n_macro = cm.n_macro
        self._n_loc = len(cm.subloc_index)
        # Sub-region centres resolved once per kernel (the per-step path
        # rebuilds this mapping on every call).
        idx: List[int] = []
        cx: List[float] = []
        cy: List[float] = []
        for sr in SUB_REGIONS:
            if sr.sr_id in cm.subloc_index:
                idx.append(cm.subloc_index.index(sr.sr_id))
                cx.append(sr.center[0])
                cy.append(sr.center[1])
        self._center_idx = np.array(idx, dtype=int)
        self._center_x = np.array(cx)
        self._center_y = np.array(cy)
        room_of_l = getattr(getattr(model, "builder", None), "room_of_l", None)
        if room_of_l is None:
            room_of_l = np.array(
                [_ROOM_OF.get(lbl, "unknown") for lbl in cm.subloc_index.labels],
                dtype=object,
            )
        self._room_of_l = room_of_l
        # Observability handles are resolved once per kernel; None when
        # metrics are off, so the hot path pays one pointer check.
        reg = _obs.registry_if_enabled()
        self._h_prepare = reg.histogram("kernel.prepare_seconds") if reg else None
        self._c_built = reg.counter("kernel.steps_built") if reg else None
        self._built = 0
        self._step_items: List[StepItems] = []
        self._pir_masks: List[Optional[np.ndarray]] = []
        self._pir_memo: Dict[frozenset, np.ndarray] = {}
        self._cand_loc_memo: Dict[Tuple[str, ...], np.ndarray] = {}
        self._macro_rows: Dict[str, List[np.ndarray]] = {r: [] for r in self.rids}
        self._loc_rows: Dict[str, List[np.ndarray]] = {r: [] for r in self.rids}
        self._single_gates: Dict[str, List[Optional[np.ndarray]]] = {
            r: [] for r in self.rids
        }
        self._cross_gates: Dict[Tuple[str, str], Dict[int, np.ndarray]] = {}

    # -- construction -------------------------------------------------------------

    def ensure(self, t0: int, t1: int) -> None:
        """Extend the precomputed tables to cover steps ``[0, t1)``.

        Idempotent; already-built steps are never recomputed.  ``t0`` is
        advisory (tables are contiguous from 0).
        """
        t1 = min(t1, len(self.seq.steps))
        start = self._built
        if t1 <= start:
            return
        if self._h_prepare is None and not _obs.tracing_enabled():
            self._build(start, t1)
            return
        with _obs.span("kernel.prepare", t0=start, t1=t1):
            tb = time.perf_counter()
            self._build(start, t1)
        if self._h_prepare is not None:
            self._h_prepare.observe(time.perf_counter() - tb)
            self._c_built.inc(t1 - start)

    def _build(self, start: int, t1: int) -> None:
        """Extend every per-sequence table from ``start`` to ``t1``."""
        steps = self.seq.steps[start:t1]
        single = getattr(self.model, "_single_pruner", None)

        for step in steps:
            self._step_items.append(StepItems(step))
            self._pir_masks.append(self._pir_mask(step.rooms_fired))

        for rid in self.rids:
            obs_list = [step.observations[rid] for step in steps]
            self._loc_rows[rid].extend(self._build_loc_rows(obs_list))
            self._macro_rows[rid].extend(self._build_macro_rows(steps, obs_list))
            gates = self._single_gates[rid]
            if single is None:
                gates.extend([None] * len(steps))
            else:
                for amb, obs in zip(self._step_items[start:t1], obs_list):
                    gates.append(single._gates(amb, obs))
        self._built = t1

    def _pir_mask(self, rooms_fired) -> Optional[np.ndarray]:
        """(L,) bool "sub-location's room fired" — None when no PIRs fired."""
        if not rooms_fired:
            return None
        mask = self._pir_memo.get(rooms_fired)
        if mask is None:
            mask = np.array([r in rooms_fired for r in self._room_of_l], dtype=bool)
            if len(self._pir_memo) >= _MEMO_LIMIT:
                self._pir_memo.clear()
            self._pir_memo[rooms_fired] = mask
        return mask

    def _candidate_loc_row(self, candidates: Tuple[str, ...]) -> np.ndarray:
        """Soft-location row when no position estimate exists (memoised;
        rows are shared read-only across steps with equal candidates)."""
        row = self._cand_loc_memo.get(candidates)
        if row is None:
            subloc_index = self.model.constraint_model.subloc_index
            row = np.full(self._n_loc, -12.0)
            for sr_id in candidates:
                if sr_id in subloc_index:
                    row[subloc_index.index(sr_id)] = 0.0
            if len(self._cand_loc_memo) >= _MEMO_LIMIT:
                self._cand_loc_memo.clear()
            self._cand_loc_memo[candidates] = row
        return row

    def _build_loc_rows(self, obs_list) -> List[np.ndarray]:
        """(L,) soft-location log-evidence row per step, batched over the
        steps that carry a position estimate (the squared-distance kernel
        is elementwise, so batching leaves every entry bit-identical to
        :func:`repro.models.chmm.soft_location_log_evidence`)."""
        rows: List[Optional[np.ndarray]] = [None] * len(obs_list)
        est = [i for i, obs in enumerate(obs_list) if obs.position_estimate is not None]
        if est and self._center_idx.size:
            ex = np.array([obs_list[i].position_estimate[0] for i in est], dtype=float)
            ey = np.array([obs_list[i].position_estimate[1] for i in est], dtype=float)
            block = np.full((len(est), self._n_loc), -12.0)
            block[:, self._center_idx] = -(
                (ex[:, None] - self._center_x[None, :]) ** 2
                + (ey[:, None] - self._center_y[None, :]) ** 2
            ) / (2 * LOCATION_KERNEL_SIGMA_M**2)
            for k, i in enumerate(est):
                rows[i] = block[k]
        elif est:
            shared = np.full(self._n_loc, -12.0)
            for i in est:
                rows[i] = shared
        for i, obs in enumerate(obs_list):
            if rows[i] is None:
                rows[i] = self._candidate_loc_row(obs.subloc_candidates)
        return rows

    def _build_macro_rows(self, steps, obs_list) -> List[np.ndarray]:
        """(M,) per-macro evidence row per step: posture and gesture CPT
        columns gathered for all steps at once, the feature channel scored
        through the stacked GMM bank with one einsum, and the object
        channel from the precomputed baseline+delta table.  Term order
        (posture, gesture, features, objects) matches the scalar path."""
        model = self.model
        cm = model.constraint_model
        rows = np.zeros((len(steps), self._n_macro))

        p_cols = np.array(
            [
                cm.posture_index.index(obs.posture)
                if (obs.posture is not None and obs.posture in cm.posture_index)
                else -1
                for obs in obs_list
            ],
            dtype=int,
        )
        has_p = p_cols >= 0
        if has_p.any():
            rows[has_p] += model._log_posture[:, p_cols[has_p]].T

        if model._log_gesture is not None and cm.gesture_index is not None:
            g_cols = np.array(
                [
                    cm.gesture_index.index(obs.gesture)
                    if (obs.gesture is not None and obs.gesture in cm.gesture_index)
                    else -1
                    for obs in obs_list
                ],
                dtype=int,
            )
            has_g = g_cols >= 0
            if has_g.any():
                rows[has_g] += model._log_gesture[:, g_cols[has_g]].T

        if model.use_feature_gmm:
            feats = [np.asarray(obs.features, dtype=float) for obs in obs_list]
            ok = np.array(
                [x.size > 0 and not np.isnan(x).any() for x in feats], dtype=bool
            )
            if ok.any():
                self._add_gmm_rows(rows, feats, np.flatnonzero(ok))

        obj_table = getattr(model, "_obj_evidence", None)
        if obj_table is not None:
            for i, step in enumerate(steps):
                rows[i] += obj_table.macro_vector(step.objects_fired)
        else:
            object_index = getattr(model, "_object_index", {})
            log_obj = getattr(model, "_log_obj", np.zeros((0, 0, 2)))
            for i, step in enumerate(steps):
                for mi in range(self._n_macro):
                    rows[i, mi] += object_log_evidence(
                        object_index, log_obj, mi, step.objects_fired
                    )
        return list(rows)

    def _add_gmm_rows(self, rows: np.ndarray, feats, idx: np.ndarray) -> None:
        model = self.model
        bank = getattr(model, "_gmm_bank", None)
        if bank is not None:
            if not bank._slices:
                return
            if len({feats[i].shape[0] for i in idx}) == 1:
                x_mat = np.stack([feats[i] for i in idx])
                rows[idx] += bank.log_pdf_rows(x_mat, self._n_macro)
                return
            # Ragged feature dims: fall back to per-step bank evaluation.
            for i in idx:
                for mi, lp in bank.log_pdfs(feats[i]).items():
                    rows[i, mi] += lp
            return
        gmms = getattr(model, "gmms_", None) or {}
        for i in idx:
            for mi, gmm in gmms.items():
                rows[i, int(mi)] += gmm.log_pdf(feats[i])

    # -- lookups ------------------------------------------------------------------

    def emissions(self, rid: str, t: int, m: np.ndarray, l: np.ndarray) -> np.ndarray:
        """Candidate emission scores by indexing the precomputed rows
        (bit-identical to :func:`~repro.core.emissions.user_state_emissions`)."""
        model = self.model
        out = (
            self._macro_rows[rid][t][m]
            + self._loc_rows[rid][t][l]
            + model._log_subloc_occ[m, l]
        )
        mask = self._pir_masks[t]
        if mask is not None:
            out[~mask[l]] += model.pir_miss_penalty
        return out

    def step_items(self, t: int) -> StepItems:
        """The step's precomputed ambient item sets."""
        return self._step_items[t]

    def single_gates(self, rid: str, t: int) -> Optional[np.ndarray]:
        """Single-user rule gate vector for (rid, t), or None if unruled."""
        return self._single_gates[rid][t]

    def cross_gates(self, rid_a: str, rid_b: str, t: int) -> Optional[np.ndarray]:
        """Cross-user rule gate vector for the ordered pair at step t."""
        pruner = getattr(self.model, "_cross_pruner", None)
        if pruner is None:
            return None
        per_pair = self._cross_gates.setdefault((rid_a, rid_b), {})
        gates = per_pair.get(t)
        if gates is None:
            step = self.seq.steps[t]
            gates = pruner._gates(
                self._step_items[t],
                step.observations[rid_a],
                step.observations[rid_b],
            )
            per_pair[t] = gates
        return gates
