"""Vectorised correlation-rule checks over candidate state lists.

The seed implementation materialised one ``frozenset`` of
:class:`~repro.mining.context_rules.Item` per hypothesised state — and
rebuilt those sets up to three times per step (per-user pruning, the
cross-user prune mask, and the soft-exclusion penalty).  This module
replaces per-pair Python set algebra with boolean matrices precomputed
per ``(rule, candidate list)``:

* every rule factorises into a *state part* (macro / sub-location / room
  items — a boolean vector over a candidate list, independent of the
  step) and a *gate* (posture / gesture / ambient items — one bool per
  step, independent of the candidate);
* candidate lists are memoised by the builder per fused sub-location
  candidate tuple, so each rule's state vectors are computed once per
  distinct list (:class:`SingleRulePruner` / :class:`CrossRulePruner`
  cache a ``(rules x candidates)`` matrix per list) and merely *sliced*
  per step;
* gates collapse to a 0/1 vector memoised per observed (posture,
  gesture, fired rooms, fired objects) combination;
* a step's prune mask is then one small mat-vec (per-user rules) or
  matmul (cross-user rules): candidate *i* survives iff no gated rule's
  state part covers it.

The semantics exactly mirror the seed's item-set formulation (kept as the
executable spec in :mod:`repro.core.reference`): a state contributes
macro / posture / sub-location / room items at time ``t`` (posture may be
``None`` when the wearable channel is missing) and a gestural item only
when the observed gesture is truthy; ambient items are the step's fired
rooms and objects; items at ``t-1`` or on foreign slots are never
present.  A forcing rule prunes a candidate when its antecedent is fully
present and the candidate assigns the consequent's attribute a different
value (open world: an absent attribute never violates); a hard exclusion
prunes a pair when it is phrased as ``(u1, u2)`` and both items are
present.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.trace import ContextStep, ResidentObservation
from repro.mining.context_rules import Item
from repro.mining.correlation_miner import CorrelationRuleSet
from repro.mining.rules import AssociationRule

#: Attributes whose presence is a property of the *observation*, not of the
#: hypothesised state — one bool per step instead of one bool per candidate.
_SCALAR_ATTRS = frozenset(("posture", "gesture"))
#: Attributes carried by the hypothesised state itself.
_STATE_ATTRS = frozenset(("macro", "subloc", "room"))


class StepItems:
    """Scalar ambient-item membership for one step."""

    __slots__ = ("rooms", "objects")

    def __init__(self, step: ContextStep) -> None:
        self.rooms = step.rooms_fired
        self.objects = step.objects_fired

    def has(self, item: Item) -> bool:
        """Is this ambient item part of the step's transaction?"""
        if item.slot != "amb" or item.time != "t":
            return False
        if item.attr == "room":
            return item.value in self.rooms
        if item.attr == "object":
            return item.value in self.objects
        return False

    def conflicts(self, item: Item) -> bool:
        """Does the step carry a same-attribute ambient item with a
        different value?"""
        if item.time != "t":
            return False
        if item.attr == "room":
            return any(r != item.value for r in self.rooms)
        if item.attr == "object":
            return any(o != item.value for o in self.objects)
        return False


def scalar_present(obs: ResidentObservation, item: Item) -> bool:
    """Presence of an observation-level item (posture / gesture)."""
    if item.time != "t":
        return False
    if item.attr == "posture":
        return obs.posture == item.value
    return bool(obs.gesture) and obs.gesture == item.value


def scalar_conflict(obs: ResidentObservation, cons: Item) -> bool:
    """Same-attribute-different-value check for observation-level items."""
    if cons.time != "t":
        return False
    if cons.attr == "posture":
        return obs.posture != cons.value
    return bool(obs.gesture) and obs.gesture != cons.value


def state_present(
    item: Item, m: np.ndarray, l: np.ndarray, cm, rooms: np.ndarray
) -> np.ndarray:
    """(n,) mask: candidate states containing a state-level item."""
    n = m.shape[0]
    if item.time != "t":
        return np.zeros(n, dtype=bool)
    if item.attr == "macro":
        if item.value in cm.macro_index:
            return m == cm.macro_index.index(item.value)
        return np.zeros(n, dtype=bool)
    if item.attr == "subloc":
        if item.value in cm.subloc_index:
            return l == cm.subloc_index.index(item.value)
        return np.zeros(n, dtype=bool)
    if item.attr == "room":
        return rooms == item.value
    return np.zeros(n, dtype=bool)


def state_conflict(
    cons: Item, m: np.ndarray, l: np.ndarray, cm, rooms: np.ndarray
) -> np.ndarray:
    """(n,) mask: candidates carrying a same-``(time, attr)`` state item
    with a *different* value."""
    n = m.shape[0]
    if cons.time != "t":
        return np.zeros(n, dtype=bool)
    if cons.attr == "macro":
        if cons.value in cm.macro_index:
            return m != cm.macro_index.index(cons.value)
        return np.ones(n, dtype=bool)
    if cons.attr == "subloc":
        if cons.value in cm.subloc_index:
            return l != cm.subloc_index.index(cons.value)
        return np.ones(n, dtype=bool)
    if cons.attr == "room":
        return rooms != cons.value
    return np.zeros(n, dtype=bool)


class CompiledForcing:
    """One forcing rule with its antecedent pre-split by slot and kind."""

    __slots__ = (
        "ant_u1", "ant_u2", "ant_amb",
        "u1_scalar", "u1_vector", "u2_scalar", "u2_vector",
        "cons", "dead",
    )

    def __init__(self, rule: AssociationRule) -> None:
        self.ant_u1: Tuple[Item, ...] = tuple(i for i in rule.antecedent if i.slot == "u1")
        self.ant_u2: Tuple[Item, ...] = tuple(i for i in rule.antecedent if i.slot == "u2")
        self.ant_amb: Tuple[Item, ...] = tuple(i for i in rule.antecedent if i.slot == "amb")
        self.u1_scalar = tuple(i for i in self.ant_u1 if i.attr in _SCALAR_ATTRS)
        self.u1_vector = tuple(i for i in self.ant_u1 if i.attr not in _SCALAR_ATTRS)
        self.u2_scalar = tuple(i for i in self.ant_u2 if i.attr in _SCALAR_ATTRS)
        self.u2_vector = tuple(i for i in self.ant_u2 if i.attr not in _SCALAR_ATTRS)
        self.cons: Item = rule.consequent
        #: Antecedent items on slots no candidate list ever carries: the
        #: rule can never fire in the single-user path.
        self.dead = any(
            i.slot not in ("u1", "u2", "amb") for i in rule.antecedent
        )


class CompiledRules:
    """A rule set pre-processed for vectorised per-step evaluation."""

    def __init__(self, rule_set: CorrelationRuleSet) -> None:
        self.forcing: List[CompiledForcing] = [
            CompiledForcing(rule) for rule in rule_set.forcing_rules
        ]
        self.hard_exclusions = list(rule_set.hard_exclusions)
        self.soft_exclusions = list(rule_set.soft_exclusions)


class _Gate:
    """The step-dependent activation of one rule row.

    ``amb_items`` must all be fired; ``scalars1`` / ``scalars2`` must all
    be present in the respective observation; when the consequent lives on
    an observation-level attribute (``viol_side``/``viol_cons``) or on the
    ambient slot (``viol_amb``), its violation check is scalar too and
    folds into the gate.
    """

    __slots__ = ("amb_items", "scalars1", "scalars2", "viol_side", "viol_cons", "viol_amb")

    def __init__(self, amb_items=(), scalars1=(), scalars2=(), viol_side=0,
                 viol_cons=None, viol_amb=None) -> None:
        self.amb_items = tuple(amb_items)
        self.scalars1 = tuple(scalars1)
        self.scalars2 = tuple(scalars2)
        self.viol_side = viol_side
        self.viol_cons = viol_cons
        self.viol_amb = viol_amb

    def active(self, amb: StepItems, obs1: ResidentObservation,
               obs2: Optional[ResidentObservation]) -> bool:
        for item in self.amb_items:
            if not amb.has(item):
                return False
        for item in self.scalars1:
            if not scalar_present(obs1, item):
                return False
        for item in self.scalars2:
            if not scalar_present(obs2, item):
                return False
        if self.viol_cons is not None:
            obs = obs1 if self.viol_side == 1 else obs2
            if not (scalar_conflict(obs, self.viol_cons) and not scalar_present(obs, self.viol_cons)):
                return False
        if self.viol_amb is not None:
            if not (amb.conflicts(self.viol_amb) and not amb.has(self.viol_amb)):
                return False
        return True


def _state_row(items: Tuple[Item, ...], viol_cons: Optional[Item],
               m: np.ndarray, l: np.ndarray, cm, rooms: np.ndarray) -> np.ndarray:
    """AND of the state-level item masks, optionally times the consequent's
    state-level violation mask."""
    row = np.ones(m.shape[0], dtype=bool)
    for item in items:
        row &= state_present(item, m, l, cm, rooms)
    if viol_cons is not None:
        row &= state_conflict(viol_cons, m, l, cm, rooms)
        row &= ~state_present(viol_cons, m, l, cm, rooms)
    return row


_CACHE_LIMIT = 8192


class SingleRulePruner:
    """Per-user rule pruning as one gate mat-vec per step.

    Row *r* of the cached per-candidate-list matrix is rule *r*'s
    state-part violation mask; a candidate is kept iff no active rule's
    row covers it — exactly ``rule_set.is_consistent(state_items | amb)``
    for single-user rule sets (which carry no exclusions).
    """

    def __init__(self, compiled: CompiledRules, cm, room_of_l: np.ndarray) -> None:
        self._cm = cm
        self._room_of_l = room_of_l
        self._rows_cache: Dict[tuple, np.ndarray] = {}
        self._gate_cache: Dict[tuple, np.ndarray] = {}
        self._specs: List[Tuple[Tuple[Item, ...], Optional[Item], _Gate]] = []
        for rule in compiled.forcing:
            if rule.dead or rule.ant_u2:
                # Canonicalised single-user rules live on u1 + amb only.
                continue
            cons = rule.cons
            if cons.slot == "u1":
                if cons.attr in _SCALAR_ATTRS:
                    gate = _Gate(rule.ant_amb, rule.u1_scalar, (), 1, cons, None)
                    self._specs.append((rule.u1_vector, None, gate))
                else:
                    gate = _Gate(rule.ant_amb, rule.u1_scalar, ())
                    self._specs.append((rule.u1_vector, cons, gate))
            elif cons.slot == "amb":
                gate = _Gate(rule.ant_amb, rule.u1_scalar, (), 0, None, cons)
                self._specs.append((rule.u1_vector, None, gate))
            # Other consequent slots can never be violated by one user's
            # items (open world) — no row.

    @property
    def n_rules(self) -> int:
        return len(self._specs)

    def _rows(self, key: tuple, m: np.ndarray, l: np.ndarray) -> np.ndarray:
        rows = self._rows_cache.get(key)
        if rows is None:
            rooms = self._room_of_l[l]
            rows = np.zeros((len(self._specs), m.shape[0]))
            for r, (items, viol_cons, _) in enumerate(self._specs):
                rows[r] = _state_row(items, viol_cons, m, l, self._cm, rooms)
            if len(self._rows_cache) >= _CACHE_LIMIT:
                self._rows_cache.clear()
            self._rows_cache[key] = rows
        return rows

    def _gates(self, amb: StepItems, obs: ResidentObservation) -> np.ndarray:
        key = (obs.posture, obs.gesture, amb.rooms, amb.objects)
        gates = self._gate_cache.get(key)
        if gates is None:
            gates = np.array(
                [1.0 if gate.active(amb, obs, None) else 0.0 for _, _, gate in self._specs]
            )
            if len(self._gate_cache) >= _CACHE_LIMIT:
                self._gate_cache.clear()
            self._gate_cache[key] = gates
        return gates

    def keep(
        self,
        key: tuple,
        m: np.ndarray,
        l: np.ndarray,
        obs: ResidentObservation,
        amb: StepItems,
        gates: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(n,) mask of candidates consistent with the single-user rules.

        ``gates`` short-circuits the per-step gate evaluation with a
        precomputed vector (the sequence kernel batches them per step).
        """
        if not self._specs:
            return np.ones(m.shape[0], dtype=bool)
        if gates is None:
            gates = self._gates(amb, obs)
        violations = gates @ self._rows(key, m, l)
        return violations == 0.0


class CrossRulePruner:
    """Cross-user rule pruning as one gated matmul per step.

    Each prunable relation — a ``(u1, u2)`` hard exclusion, or a forcing
    rule whose consequent sits on one of the two slots — contributes a row
    pair ``(row_u1, row_u2)``: the joint state ``(i, j)`` is pruned when
    the rule's gate is open and ``row_u1[i] & row_u2[j]``.  Row pairs are
    cached per candidate-list key and sliced per step, so the mask costs
    one ``(n1, R) @ (R, n2)`` product.

    Matches the seed's ``_cross_prune_mask`` semantics exactly, including
    its asymmetries: hard exclusions apply only when phrased as
    ``(u1, u2)``, and a forcing consequent on any other slot never prunes.
    """

    def __init__(self, compiled: CompiledRules, cm, room_of_l: np.ndarray) -> None:
        self._cm = cm
        self._room_of_l = room_of_l
        self._rows_cache: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._gate_cache: Dict[tuple, np.ndarray] = {}
        #: (items1, viol1, items2, viol2, gate) per row.
        self._specs: List[tuple] = []

        for excl in compiled.hard_exclusions:
            a, b = excl.a, excl.b
            if a.slot != "u1" or b.slot != "u2":
                continue
            items1 = (a,) if a.attr not in _SCALAR_ATTRS else ()
            items2 = (b,) if b.attr not in _SCALAR_ATTRS else ()
            gate = _Gate(
                (),
                (a,) if a.attr in _SCALAR_ATTRS else (),
                (b,) if b.attr in _SCALAR_ATTRS else (),
            )
            self._specs.append((items1, None, items2, None, gate))

        for rule in compiled.forcing:
            cons = rule.cons
            if cons.slot not in ("u1", "u2"):
                continue
            viol1 = viol2 = None
            viol_side, viol_cons = 0, None
            if cons.attr in _SCALAR_ATTRS:
                viol_side = 1 if cons.slot == "u1" else 2
                viol_cons = cons
            elif cons.slot == "u1":
                viol1 = cons
            else:
                viol2 = cons
            gate = _Gate(rule.ant_amb, rule.u1_scalar, rule.u2_scalar, viol_side, viol_cons)
            self._specs.append((rule.u1_vector, viol1, rule.u2_vector, viol2, gate))

    @property
    def n_rules(self) -> int:
        return len(self._specs)

    def _rows(self, key: tuple, m: np.ndarray, l: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(R, n) state-part matrices for a *full* candidate list, for this
        list playing the u1 side and the u2 side respectively."""
        rows = self._rows_cache.get(key)
        if rows is None:
            rooms = self._room_of_l[l]
            r1 = np.zeros((len(self._specs), m.shape[0]))
            r2 = np.zeros_like(r1)
            for r, (items1, viol1, items2, viol2, _) in enumerate(self._specs):
                r1[r] = _state_row(items1, viol1, m, l, self._cm, rooms)
                r2[r] = _state_row(items2, viol2, m, l, self._cm, rooms)
            rows = (r1, r2)
            if len(self._rows_cache) >= _CACHE_LIMIT:
                self._rows_cache.clear()
            self._rows_cache[key] = rows
        return rows

    def _gates(
        self, amb: StepItems, obs1: ResidentObservation, obs2: ResidentObservation
    ) -> np.ndarray:
        key = (obs1.posture, obs1.gesture, obs2.posture, obs2.gesture, amb.rooms, amb.objects)
        gates = self._gate_cache.get(key)
        if gates is None:
            gates = np.array(
                [1.0 if spec[4].active(amb, obs1, obs2) else 0.0 for spec in self._specs]
            )
            if len(self._gate_cache) >= _CACHE_LIMIT:
                self._gate_cache.clear()
            self._gate_cache[key] = gates
        return gates

    def keep(
        self, amb: StepItems, c1, c2, gates: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(|c1|, |c2|) mask of joint states consistent with the rules.

        ``c1`` / ``c2`` are :class:`~repro.core.state_space.CandidateSet`
        instances carrying their source-list key, full arrays and the
        surviving indices.  ``gates`` short-circuits the per-step gate
        evaluation with a precomputed vector.
        """
        n1, n2 = len(c1), len(c2)
        if not self._specs:
            return np.ones((n1, n2), dtype=bool)
        rows1 = self._rows(c1.src_key, c1.src_m, c1.src_l)[0][:, c1.src_idx]
        rows2 = self._rows(c2.src_key, c2.src_m, c2.src_l)[1][:, c2.src_idx]
        if gates is None:
            gates = self._gates(amb, c1.obs, c2.obs)
        hits = (rows1 * gates[:, None]).T @ rows2
        return hits == 0.0


def soft_exclusion_matrix(
    compiled: CompiledRules, cm, room_of_l: np.ndarray, c1, c2, log_penalty: float
) -> Optional[np.ndarray]:
    """(|c1|, |c2|) log penalty from violated soft exclusions, or None when
    there are none (or the penalty weight is zero — an all-zero matrix
    cannot change any score ordering)."""
    if not compiled.soft_exclusions or log_penalty == 0.0:
        return None
    rooms1 = room_of_l[c1.l]
    rooms2 = room_of_l[c2.l]
    penalty = np.zeros((len(c1), len(c2)))
    for excl in compiled.soft_exclusions:
        a, b = excl.a, excl.b
        if a.slot != "u1" or b.slot != "u2":
            continue
        if a.attr in _SCALAR_ATTRS:
            if not scalar_present(c1.obs, a):
                continue
            has_a = np.ones(len(c1), dtype=bool)
        else:
            has_a = state_present(a, c1.m, c1.l, cm, rooms1)
        if b.attr in _SCALAR_ATTRS:
            if not scalar_present(c2.obs, b):
                continue
            has_b = np.ones(len(c2), dtype=bool)
        else:
            has_b = state_present(b, c2.m, c2.l, cm, rooms2)
        penalty += np.outer(has_a, has_b) * log_penalty
    return penalty
